//! The CDCL solver implementation.
//!
//! One `struct Solver` owns the clause arena, the two-watched-literal
//! scheme, the trail, and the VSIDS order heap. The public surface is
//! intentionally small: add clauses, solve (optionally under assumptions
//! and/or with a theory hook), read the model or the failed-assumption core.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use verdict_logic::{Cnf, Lit, Var};

use crate::proof::ProofEvent;
use crate::share::{Endpoint, PrefixChain, SharedClause};

/// Three-valued assignment state of a variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

/// A clause stored in the arena.
#[derive(Debug)]
struct ClauseData {
    lits: Vec<Lit>,
    learnt: bool,
    /// Literal-block distance at learn time; lower is better.
    lbd: u32,
    deleted: bool,
    /// Imported from a peer via clause sharing (counts import hits when
    /// it later participates in a conflict).
    shared: bool,
}

type ClauseId = u32;

/// Watcher entry: the watched clause plus a "blocker" literal whose
/// satisfaction lets propagation skip the clause without touching it.
#[derive(Clone, Copy)]
struct Watcher {
    clause: ClauseId,
    blocker: Lit,
}

/// Reason for an assignment: a clause, a decision, or a theory/assumption.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Reason {
    Decision,
    Clause(ClauseId),
}

/// A satisfying assignment, indexed by [`Var`].
#[derive(Clone, Debug)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// Truth value of `v` in the model.
    ///
    /// # Panics
    /// Panics if `v` was never declared to the solver.
    pub fn value(&self, v: Var) -> bool {
        self.values[v.index()]
    }

    /// Truth value of a literal.
    pub fn lit_value(&self, l: Lit) -> bool {
        self.value(l.var()) == l.is_positive()
    }

    /// The raw assignment vector, indexed by variable.
    pub fn as_slice(&self) -> &[bool] {
        &self.values
    }
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Debug)]
pub enum SolveResult {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Unsatisfiable (under the given assumptions, if any).
    Unsat,
    /// A resource limit was hit before a decision was reached.
    Unknown,
}

impl SolveResult {
    /// True iff the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// True iff the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat)
    }

    /// Extracts the model if satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Verdict returned by a theory's final check in DPLL(T).
pub enum TheoryVerdict {
    /// The Boolean model is theory-consistent; the solver reports SAT.
    Consistent,
    /// The Boolean model is theory-inconsistent. The payload is a *lemma*
    /// clause (valid in the theory) that the current model falsifies; the
    /// solver learns it and continues searching.
    Lemma(Vec<Lit>),
}

/// DPLL(T) final-check hook.
///
/// `verdict-smt` implements this with a simplex-backed linear-arithmetic
/// checker; plain SAT solving uses the default no-op theory.
pub trait TheoryHook {
    /// Called with every total Boolean assignment the SAT core finds.
    fn final_check(&mut self, model: &Model) -> TheoryVerdict;
}

/// The trivial theory: every Boolean model is consistent.
struct NoTheory;

impl TheoryHook for NoTheory {
    fn final_check(&mut self, _model: &Model) -> TheoryVerdict {
        TheoryVerdict::Consistent
    }
}

/// Resource limits for a solve call.
#[derive(Clone, Debug, Default)]
pub struct Limits {
    /// Give up after this many conflicts (`None` = unlimited).
    pub max_conflicts: Option<u64>,
    /// Give up at this wall-clock instant (`None` = unlimited).
    pub deadline: Option<Instant>,
    /// Cooperative cancellation: give up as soon as this shared flag is
    /// observed `true` (`None` = never). Another thread raises the flag;
    /// the solver polls it alongside the deadline, so cancellation lands
    /// within a few hundred conflicts/decisions.
    pub stop: Option<Arc<AtomicBool>>,
    /// Give up once the clause arena holds this many clauses (`None` =
    /// unlimited). A memory-budget backstop: clause explosion degrades to
    /// `Unknown` instead of exhausting the machine.
    pub max_clauses: Option<usize>,
}

impl Limits {
    /// No limits.
    pub const NONE: Limits = Limits {
        max_conflicts: None,
        deadline: None,
        stop: None,
        max_clauses: None,
    };

    /// True once the deadline has passed or the stop flag is raised —
    /// the solver gives up with [`SolveResult::Unknown`].
    pub fn interrupted(&self) -> bool {
        if let Some(stop) = &self.stop {
            if stop.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }
}

/// Solver statistics, cumulative across solve calls.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Decisions made.
    pub decisions: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Total literals across all clauses ever learnt (unit learnts included).
    pub learnt_literals: u64,
    /// Learnt clauses deleted by database reductions.
    pub deleted_clauses: u64,
    /// Theory final-check invocations.
    pub theory_checks: u64,
    /// Theory lemmas learnt.
    pub theory_lemmas: u64,
    /// Learnt clauses exported to peers via clause sharing (counted once
    /// per peer delivery).
    pub clauses_exported: u64,
    /// Peer clauses accepted by the prefix guard and integrated.
    pub clauses_imported: u64,
    /// Peer clauses refused by the prefix guard (foreign CNF prefix) or
    /// the proof-logging rule.
    pub imports_rejected: u64,
    /// Times an imported clause participated in a conflict (as the
    /// conflicting clause or a resolved reason) — the payoff counter.
    pub import_hits: u64,
}

/// A CDCL SAT solver. See the [crate docs](crate) for the feature list.
pub struct Solver {
    clauses: Vec<ClauseData>,
    watches: Vec<Vec<Watcher>>, // indexed by Lit::index()
    assign: Vec<LBool>,         // indexed by Var
    level: Vec<u32>,
    reason: Vec<Reason>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    // VSIDS
    activity: Vec<f64>,
    var_inc: f64,
    heap: IndexedHeap,
    saved_phase: Vec<bool>,

    // Learning scratch
    seen: Vec<bool>,

    // Restarts / DB reduction
    conflicts_since_restart: u64,
    luby_index: u64,
    max_learnts: f64,

    // Assumptions / core
    assumptions: Vec<Lit>,
    conflict_core: Vec<Lit>,

    /// DRUP-style proof log; `Some` once [`Solver::enable_proof`] is called.
    proof: Option<Vec<ProofEvent>>,

    /// Clause-sharing endpoint; `Some` once [`Solver::attach_sharing`]
    /// is called.
    sharing: Option<Endpoint>,
    /// Running fingerprint of every clause handed to
    /// [`Solver::add_clause`] — the sharing import guard (see
    /// [`crate::share`]). Maintained only while sharing is attached.
    prefix: Option<PrefixChain>,
    /// Peer clauses stamped ahead of our prefix: parked until our chain
    /// grows to cover them (bounded by [`MAX_PENDING_IMPORTS`]).
    pending_imports: Vec<SharedClause>,

    ok: bool,
    stats: Stats,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const RESCALE_LIMIT: f64 = 1e100;
const LUBY_UNIT: u64 = 128;
/// Cap on clauses parked while a sharing peer's prefix runs ahead of
/// ours; overflow is rejected (sharing is best-effort, never a leak).
const MAX_PENDING_IMPORTS: usize = 4096;

impl Solver {
    /// An empty solver with no variables or clauses.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: IndexedHeap::new(),
            saved_phase: Vec::new(),
            seen: Vec::new(),
            conflicts_since_restart: 0,
            luby_index: 0,
            max_learnts: 2000.0,
            assumptions: Vec::new(),
            conflict_core: Vec::new(),
            proof: None,
            sharing: None,
            prefix: None,
            pending_imports: Vec::new(),
            ok: true,
            stats: Stats::default(),
        }
    }

    /// Attaches a clause-sharing endpoint (see [`crate::share`]). Must
    /// be called on an empty solver — the prefix fingerprint has to
    /// cover every clause, so attaching after clauses exist returns
    /// `false` and leaves sharing off. Imports are additionally
    /// suppressed while proof logging is enabled (an imported clause has
    /// no DRUP derivation here); exports still flow.
    pub fn attach_sharing(&mut self, endpoint: Endpoint) -> bool {
        if !self.clauses.is_empty() || !self.trail.is_empty() {
            return false;
        }
        self.sharing = Some(endpoint);
        self.prefix = Some(PrefixChain::new());
        true
    }

    /// True iff a sharing endpoint is attached.
    pub fn sharing_attached(&self) -> bool {
        self.sharing.is_some()
    }

    /// Turns on DRUP-style proof logging. Every clause added from now on is
    /// recorded as an input (theory lemmas included — they are axioms to the
    /// propositional proof), every learnt clause as a derivation step, and
    /// every database deletion as a delete. Call before adding clauses so
    /// the log covers the whole database.
    pub fn enable_proof(&mut self) {
        if self.proof.is_none() {
            self.proof = Some(Vec::new());
        }
    }

    /// True iff proof logging is on.
    pub fn proof_enabled(&self) -> bool {
        self.proof.is_some()
    }

    /// Takes the proof log accumulated so far (logging stays enabled, the
    /// internal log restarts empty). After an assumption-free `Unsat`
    /// answer the log ends with the empty clause and
    /// [`crate::proof::check_proof`] can certify it; an `Unsat` under
    /// assumptions has no empty-clause step and is not checkable this way.
    pub fn take_proof(&mut self) -> Vec<ProofEvent> {
        match &mut self.proof {
            Some(p) => std::mem::take(p),
            None => Vec::new(),
        }
    }

    #[inline]
    fn log_proof(&mut self, ev: ProofEvent) {
        if let Some(p) = &mut self.proof {
            p.push(ev);
        }
    }

    /// Number of clauses in the arena (deleted slots included — the arena
    /// never shrinks, so this tracks memory footprint).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Builds a solver pre-loaded with a CNF instance.
    pub fn from_cnf(cnf: &Cnf) -> Solver {
        let mut s = Solver::new();
        s.reserve_vars(cnf.num_vars());
        for c in cnf.clauses() {
            s.add_clause(c.iter().copied());
        }
        s
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> u32 {
        self.assign.len() as u32
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.reserve_vars(v.0 + 1);
        v
    }

    /// Ensures variables `0..n` exist.
    pub fn reserve_vars(&mut self, n: u32) {
        while (self.assign.len() as u32) < n {
            let v = Var(self.assign.len() as u32);
            self.assign.push(LBool::Undef);
            self.level.push(0);
            self.reason.push(Reason::Decision);
            self.activity.push(0.0);
            self.saved_phase.push(false);
            self.seen.push(false);
            self.watches.push(Vec::new());
            self.watches.push(Vec::new());
            self.heap.insert(v, &self.activity);
        }
    }

    /// Adds a clause. May be called between solve calls (the solver must be
    /// at decision level 0, which it always is between calls).
    ///
    /// Returns `false` if the database became unsatisfiable at level 0.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        let mut c: Vec<Lit> = lits.into_iter().collect();
        for l in &c {
            self.reserve_vars(l.var().0 + 1);
        }
        if let Some(prefix) = &mut self.prefix {
            // Fingerprint the clause exactly as handed in: two solvers
            // may exchange learnt clauses only while these chains agree.
            prefix.record(&c);
        }
        if self.proof.is_some() {
            self.log_proof(ProofEvent::Input(c.clone()));
        }
        // Normalize: sort, dedup, drop false lits, detect tautology/sat.
        c.sort_unstable();
        c.dedup();
        let mut out = Vec::with_capacity(c.len());
        let mut prev: Option<Lit> = None;
        for l in c {
            if let Some(p) = prev {
                if p == !l {
                    return true; // tautology
                }
            }
            prev = Some(l);
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => out.push(l),
            }
        }
        match out.len() {
            0 => {
                // All literals false at level 0: the empty clause follows
                // by unit propagation from the recorded database.
                self.log_proof(ProofEvent::Learn(Vec::new()));
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(out[0], Reason::Decision);
                if self.propagate().is_some() {
                    self.log_proof(ProofEvent::Learn(Vec::new()));
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(out, false, 0, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32, shared: bool) -> ClauseId {
        debug_assert!(lits.len() >= 2);
        let id = self.clauses.len() as ClauseId;
        let w0 = Watcher {
            clause: id,
            blocker: lits[1],
        };
        let w1 = Watcher {
            clause: id,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).index()].push(w0);
        self.watches[(!lits[1]).index()].push(w1);
        self.clauses.push(ClauseData {
            lits,
            learnt,
            lbd,
            deleted: false,
            shared,
        });
        if learnt {
            self.stats.learnt_clauses += 1;
            self.stats.learnt_literals += self.clauses[id as usize].lits.len() as u64;
        }
        id
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        match self.assign[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(l.is_positive()),
            LBool::False => LBool::from_bool(!l.is_positive()),
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Reason) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var();
        self.assign[v.index()] = LBool::from_bool(l.is_positive());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.trail.push(l);
    }

    /// Propagates all enqueued assignments. Returns the conflicting clause
    /// if a conflict is found.
    fn propagate(&mut self) -> Option<ClauseId> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut i = 0;
            // Take the watch list; entries are pushed back or moved.
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            while i < ws.len() {
                let w = ws[i];
                // Blocker short-circuit.
                if self.lit_value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cid = w.clause as usize;
                if self.clauses[cid].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                // Make sure false_lit is at position 1.
                {
                    let lits = &mut self.clauses[cid].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                let first = self.clauses[cid].lits[0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[cid].lits.len() {
                    let cand = self.clauses[cid].lits[k];
                    if self.lit_value(cand) != LBool::False {
                        self.clauses[cid].lits.swap(1, k);
                        self.watches[(!cand).index()].push(Watcher {
                            clause: w.clause,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting. Either way an imported
                // clause just did real work: count the hit.
                if self.clauses[cid].shared {
                    self.stats.import_hits += 1;
                }
                if self.lit_value(first) == LBool::False {
                    // Conflict: restore the watch list (no entries were
                    // added to `watches[p]` while we held it) and stop.
                    self.watches[p.index()] = ws;
                    self.qhead = self.trail.len();
                    return Some(w.clause);
                }
                self.enqueue(first, Reason::Clause(w.clause));
                i += 1;
            }
            self.watches[p.index()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.var_inc *= VAR_DECAY;
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backtrack level,
    /// LBD). `learnt[0]` is the asserting literal.
    fn analyze(&mut self, confl: ClauseId) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut index = self.trail.len();
        let current = self.decision_level();

        loop {
            let clause = &self.clauses[confl as usize];
            let start = usize::from(p.is_some());
            // For the initial conflict clause consider all literals; for
            // reason clauses skip position 0 (the propagated literal).
            for k in start..clause.lits.len() {
                let q = clause.lits[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    if self.level[v.index()] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Bump all variables in the clause.
            let vars: Vec<Var> = self.clauses[confl as usize]
                .lits
                .iter()
                .map(|l| l.var())
                .collect();
            for v in vars {
                self.bump_var(v);
            }
            // Find next literal to expand.
            loop {
                index -= 1;
                let l = self.trail[index];
                if self.seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("p set above").var();
            self.seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = match self.reason[pv.index()] {
                Reason::Clause(c) => c,
                Reason::Decision => unreachable!("UIP reached before decision"),
            };
        }
        let uip = !p.expect("analysis found a UIP");

        // Clause minimization: drop literals implied by the rest.
        let mut minimized: Vec<Lit> = Vec::with_capacity(learnt.len() + 1);
        minimized.push(uip);
        'next: for &q in &learnt {
            let v = q.var();
            if let Reason::Clause(c) = self.reason[v.index()] {
                // q is redundant if every other literal of its reason is
                // already seen (i.e. in the learnt clause) or at level 0.
                for &r in &self.clauses[c as usize].lits {
                    if r.var() == v {
                        continue;
                    }
                    if !self.seen[r.var().index()] && self.level[r.var().index()] > 0 {
                        minimized.push(q);
                        continue 'next;
                    }
                }
                // redundant: skip
            } else {
                minimized.push(q);
            }
        }

        // Clear seen flags.
        for &q in &learnt {
            self.seen[q.var().index()] = false;
        }

        // Backtrack level = second-highest level in the clause.
        let mut bt = 0;
        if minimized.len() > 1 {
            // Move the literal with the highest level to position 1.
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            bt = self.level[minimized[1].var().index()];
        }

        // LBD: number of distinct decision levels.
        let mut levels: Vec<u32> = minimized
            .iter()
            .map(|l| self.level[l.var().index()])
            .collect();
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;

        (minimized, bt, lbd)
    }

    /// Undoes all assignments above `target` decision level.
    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let keep = self.trail_lim[target as usize];
        for i in (keep..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.saved_phase[v.index()] = l.is_positive();
            self.assign[v.index()] = LBool::Undef;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(target as usize);
        self.qhead = keep;
    }

    /// Picks the next decision literal, or `None` when all vars assigned.
    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assign[v.index()] == LBool::Undef {
                return Some(v.lit(self.saved_phase[v.index()]));
            }
        }
        None
    }

    /// Reduces the learnt-clause database, keeping low-LBD clauses and any
    /// clause currently acting as a reason.
    fn reduce_db(&mut self) {
        let mut candidates: Vec<(u32, usize, ClauseId)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted && c.lbd > 2)
            .map(|(i, c)| (c.lbd, c.lits.len(), i as ClauseId))
            .collect();
        // Worst first: high LBD, then long.
        candidates.sort_unstable_by(|a, b| b.cmp(a));
        let locked: std::collections::HashSet<ClauseId> = self
            .trail
            .iter()
            .filter_map(|l| match self.reason[l.var().index()] {
                Reason::Clause(c) => Some(c),
                Reason::Decision => None,
            })
            .collect();
        let target = candidates.len() / 2;
        let mut removed = 0;
        for &(_, _, cid) in candidates.iter().take(target) {
            if locked.contains(&cid) {
                continue;
            }
            self.clauses[cid as usize].deleted = true;
            if self.proof.is_some() {
                let lits = self.clauses[cid as usize].lits.clone();
                self.log_proof(ProofEvent::Delete(lits));
            }
            removed += 1;
        }
        self.stats.deleted_clauses += removed;
        self.stats.learnt_clauses -= removed;
    }

    /// The failed-assumption core from the most recent `Unsat` answer to
    /// [`Solver::solve_with_assumptions`]: a subset of the assumptions that
    /// is already jointly inconsistent with the clause database.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// MiniSat-style name for [`Solver::unsat_core`]: the assumption
    /// literals that participated in the last `Unsat` answer. Assumptions
    /// absent from this set played no part in the refutation, so the same
    /// query stays `Unsat` under any polarity of those literals — the
    /// property incremental parameter synthesis exploits to transfer
    /// verdicts across assignments (unsat-core pruning).
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Builds the failed-assumption core by walking the implication graph
    /// backwards from a literal that contradicts an assumption.
    fn analyze_final(&mut self, p: Lit) {
        // `p` is the implied-true literal that contradicts assumption `!p`.
        // The core collects *assumption literals* (as passed by the caller)
        // that jointly cannot hold.
        self.conflict_core.clear();
        self.conflict_core.push(!p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            if !self.seen[v.index()] {
                continue;
            }
            match self.reason[v.index()] {
                Reason::Decision => {
                    // All decisions during the assumption phase are
                    // assumptions, enqueued with their own polarity.
                    if l.var() != p.var() {
                        self.conflict_core.push(l);
                    }
                }
                Reason::Clause(c) => {
                    for &q in &self.clauses[c as usize].lits {
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v.index()] = false;
        }
        self.seen[p.var().index()] = false;
    }

    /// Solves the current database with no assumptions and no theory.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_full(&[], &mut NoTheory, Limits::NONE)
    }

    /// Solves under the given assumption literals.
    ///
    /// On `Unsat`, [`Solver::unsat_core`] holds a subset of the assumptions
    /// sufficient for unsatisfiability (negated: the core lists the
    /// assumption literals that failed).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_full(assumptions, &mut NoTheory, Limits::NONE)
    }

    /// Solves with a DPLL(T) theory hook and optional limits.
    pub fn solve_with_theory(
        &mut self,
        assumptions: &[Lit],
        theory: &mut dyn TheoryHook,
        limits: Limits,
    ) -> SolveResult {
        self.solve_full(assumptions, theory, limits)
    }

    /// Solves with limits only.
    pub fn solve_limited(&mut self, assumptions: &[Lit], limits: Limits) -> SolveResult {
        self.solve_full(assumptions, &mut NoTheory, limits)
    }

    /// Fault-injection probe at site `sat.solve`: `Panic` kills the
    /// solve (exercising caller containment), `Exhaust` makes it return
    /// `Unknown` as if the clause ceiling had been hit. Free when no
    /// fault plan is armed.
    fn fault_check(&mut self) -> Option<SolveResult> {
        use verdict_journal::fault;
        match fault::probe("sat.solve") {
            Some(fault::FaultKind::Panic) => panic!("{} at sat.solve", fault::PANIC_TAG),
            Some(fault::FaultKind::Exhaust) => Some(SolveResult::Unknown),
            _ => None,
        }
    }

    /// Offers a freshly-learnt clause to the sharing peers (no-op unless
    /// an endpoint is attached and the filter wants the clause).
    fn export_shared(&mut self, learnt: &[Lit], lbd: u32) {
        let Some(prefix) = &self.prefix else {
            return;
        };
        let (plen, phash) = (prefix.len(), prefix.head());
        if let Some(ep) = &mut self.sharing {
            if ep.wants(learnt.len(), lbd) {
                self.stats.clauses_exported += ep.export(learnt, lbd, plen, phash);
            }
        }
    }

    /// Drains and integrates peer clauses. Must run at decision level 0
    /// (solve entry / restart boundary). Returns `self.ok` — `false`
    /// means an entailed import exposed level-0 unsatisfiability.
    fn import_shared(&mut self) -> bool {
        if self.sharing.is_none() || !self.ok {
            return self.ok;
        }
        if self.proof.is_some() {
            // Proof-logged solvers never import: the clause would enter
            // resolutions without a DRUP derivation. Drain so the rings
            // don't silt up, and account for the refusals.
            let mut dropped = self.pending_imports.len() as u64;
            self.pending_imports.clear();
            if let Some(ep) = &mut self.sharing {
                ep.drain(|_| dropped += 1);
            }
            self.stats.imports_rejected += dropped;
            return self.ok;
        }
        debug_assert_eq!(self.decision_level(), 0);
        let mut batch: Vec<SharedClause> = std::mem::take(&mut self.pending_imports);
        if let Some(ep) = &mut self.sharing {
            ep.drain(|m| batch.push(m));
        }
        for msg in batch {
            let (our_len, covered) = match &self.prefix {
                Some(p) => (p.len(), p.covers(msg.prefix_len, msg.prefix_hash)),
                None => (0, false),
            };
            if !covered {
                if msg.prefix_len > our_len && self.pending_imports.len() < MAX_PENDING_IMPORTS {
                    // The peer is ahead of us on (what may be) the same
                    // clause stream — common when a finished run seeded
                    // the ring. Park the clause; once our own prefix
                    // grows to cover the stamp it imports normally, and
                    // if the chains turn out to diverge it is rejected
                    // at that point instead.
                    self.pending_imports.push(msg);
                } else {
                    // Foreign CNF prefix: not a consequence of our
                    // database (or the parking lot is full).
                    self.stats.imports_rejected += 1;
                }
                continue;
            }
            self.stats.clauses_imported += 1;
            if !self.integrate_shared(msg) {
                break;
            }
        }
        self.ok
    }

    /// Integrates one guard-approved peer clause: re-normalized against
    /// our level-0 facts (sound — the clause is entailed by our first
    /// `prefix_len` inputs) and attached as a learnt, `shared` clause so
    /// database reduction treats it like any other learnt clause.
    fn integrate_shared(&mut self, msg: SharedClause) -> bool {
        let mut c = msg.lits;
        for l in &c {
            self.reserve_vars(l.var().0 + 1);
        }
        c.sort_unstable();
        c.dedup();
        let mut out = Vec::with_capacity(c.len());
        let mut prev: Option<Lit> = None;
        for l in c {
            if let Some(p) = prev {
                if p == !l {
                    return true; // tautology
                }
            }
            prev = Some(l);
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => out.push(l),
            }
        }
        match out.len() {
            0 => {
                // Every literal false at level 0, yet the clause is a
                // consequence of our database: the database is unsat.
                self.stats.import_hits += 1;
                self.ok = false;
                false
            }
            1 => {
                // A unit import is a level-0 fact put to work right
                // here; its reason is `Decision`, so count the hit now.
                self.stats.import_hits += 1;
                self.enqueue(out[0], Reason::Decision);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(out, true, msg.lbd, true);
                true
            }
        }
    }

    fn solve_full(
        &mut self,
        assumptions: &[Lit],
        theory: &mut dyn TheoryHook,
        limits: Limits,
    ) -> SolveResult {
        if !self.ok {
            self.conflict_core.clear();
            return SolveResult::Unsat;
        }
        for l in assumptions {
            self.reserve_vars(l.var().0 + 1);
        }
        self.assumptions = assumptions.to_vec();
        self.conflict_core.clear();
        if let Some(max) = limits.max_clauses {
            if self.clauses.len() >= max {
                return SolveResult::Unknown;
            }
        }
        // Check the deadline/stop flag before doing any work: the in-loop
        // polls only fire every 256 conflicts/decisions, so a trivially
        // easy query would otherwise return a real verdict after its
        // budget already expired (and a caller looping over such queries
        // could overshoot its deadline by many solve calls).
        if limits.interrupted() {
            return SolveResult::Unknown;
        }
        if let Some(res) = self.fault_check() {
            return res;
        }
        // Solve entry is a quiet point (decision level 0): pick up any
        // clauses peers shared since the last call.
        if !self.import_shared() {
            return SolveResult::Unsat;
        }
        self.conflicts_since_restart = 0;
        self.luby_index = 0;
        let mut restart_budget = LUBY_UNIT * luby(1);
        let mut checked_since = 0u64;

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                self.conflicts_since_restart += 1;
                checked_since += 1;
                if self.decision_level() == 0 {
                    self.log_proof(ProofEvent::Learn(Vec::new()));
                    self.ok = false;
                    self.cancel_until(0);
                    return SolveResult::Unsat;
                }
                if self.decision_level() <= self.assumptions.len() as u32 {
                    // Conflict within the assumption prefix: extract core.
                    // Find the conflicting clause's deepest assumption.
                    self.build_core_from_conflict(confl);
                    self.cancel_until(0);
                    return SolveResult::Unsat;
                }
                let (learnt, bt, lbd) = self.analyze(confl);
                self.export_shared(&learnt, lbd);
                // Backtracking below the assumption prefix is fine: the main
                // loop re-queues assumptions while decision level < prefix.
                self.cancel_until(bt);
                let asserting = learnt[0];
                if self.proof.is_some() {
                    self.log_proof(ProofEvent::Learn(learnt.clone()));
                }
                if learnt.len() == 1 {
                    self.stats.learnt_literals += 1;
                    self.cancel_until(0);
                    if self.lit_value(asserting) == LBool::False {
                        self.log_proof(ProofEvent::Learn(Vec::new()));
                        self.ok = false;
                        return SolveResult::Unsat;
                    }
                    if self.lit_value(asserting) == LBool::Undef {
                        self.enqueue(asserting, Reason::Decision);
                    }
                    // Re-establish assumptions on next iterations.
                } else {
                    let cid = self.attach_clause(learnt, true, lbd, false);
                    self.enqueue(asserting, Reason::Clause(cid));
                }
                self.decay_activities();

                if let Some(max) = limits.max_conflicts {
                    if self.stats.conflicts >= max {
                        self.cancel_until(0);
                        return SolveResult::Unknown;
                    }
                }
                if let Some(max) = limits.max_clauses {
                    if self.clauses.len() >= max {
                        self.cancel_until(0);
                        return SolveResult::Unknown;
                    }
                }
                if checked_since >= 256 {
                    checked_since = 0;
                    if limits.interrupted() {
                        self.cancel_until(0);
                        return SolveResult::Unknown;
                    }
                    if let Some(res) = self.fault_check() {
                        self.cancel_until(0);
                        return res;
                    }
                }
                if self.conflicts_since_restart >= restart_budget {
                    self.stats.restarts += 1;
                    self.conflicts_since_restart = 0;
                    self.luby_index += 1;
                    restart_budget = LUBY_UNIT * luby(self.luby_index + 1);
                    self.cancel_until(0);
                    // Restart boundary: integrate peer clauses while the
                    // trail is empty.
                    if !self.import_shared() {
                        return SolveResult::Unsat;
                    }
                }
                if self.stats.learnt_clauses as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                }
            } else {
                // No conflict: place assumptions, then decide.
                let dl = self.decision_level() as usize;
                if dl < self.assumptions.len() {
                    let a = self.assumptions[dl];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already satisfied; open an empty level so the
                            // prefix invariant (level i = assumption i) holds.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.analyze_final(!a);
                            self.cancel_until(0);
                            return SolveResult::Unsat;
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, Reason::Decision);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    Some(l) => {
                        self.stats.decisions += 1;
                        // Conflict-free stretches also poll the limits, so a
                        // cancelled solve cannot run away on an easy instance.
                        checked_since += 1;
                        if checked_since >= 256 {
                            checked_since = 0;
                            if limits.interrupted() {
                                self.cancel_until(0);
                                return SolveResult::Unknown;
                            }
                        }
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, Reason::Decision);
                    }
                    None => {
                        // Total assignment: run the theory final check.
                        let model = self.extract_model();
                        self.stats.theory_checks += 1;
                        match theory.final_check(&model) {
                            TheoryVerdict::Consistent => {
                                self.cancel_until(0);
                                return SolveResult::Sat(model);
                            }
                            TheoryVerdict::Lemma(lemma) => {
                                self.stats.theory_lemmas += 1;
                                self.cancel_until(0);
                                if !self.add_clause(lemma) {
                                    return SolveResult::Unsat;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Builds an unsat core when a conflict occurs inside the assumption
    /// prefix: walk the implication graph from the conflict clause.
    fn build_core_from_conflict(&mut self, confl: ClauseId) {
        self.conflict_core.clear();
        let mut stack: Vec<Lit> = self.clauses[confl as usize].lits.clone();
        let mut visited = vec![false; self.assign.len()];
        while let Some(l) = stack.pop() {
            let v = l.var();
            if visited[v.index()] || self.level[v.index()] == 0 {
                continue;
            }
            visited[v.index()] = true;
            match self.reason[v.index()] {
                Reason::Decision => {
                    // An assumption.
                    self.conflict_core.push(!l);
                }
                Reason::Clause(c) => {
                    for &q in &self.clauses[c as usize].lits {
                        if q.var() != v {
                            stack.push(q);
                        }
                    }
                }
            }
        }
    }

    fn extract_model(&self) -> Model {
        Model {
            values: self.assign.iter().map(|&a| a == LBool::True).collect(),
        }
    }
}

/// The Luby restart sequence (1-indexed): 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…
fn luby(i: u64) -> u64 {
    debug_assert!(i >= 1);
    let mut x = i - 1; // 0-indexed position
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// Max-heap over variables keyed by activity, with a position index for
/// O(log n) increase-key. Ties break toward the smaller variable index so
/// runs are deterministic.
struct IndexedHeap {
    heap: Vec<Var>,
    pos: Vec<Option<u32>>, // indexed by var
}

impl IndexedHeap {
    fn new() -> IndexedHeap {
        IndexedHeap {
            heap: Vec::new(),
            pos: Vec::new(),
        }
    }

    fn less(a: Var, b: Var, act: &[f64]) -> bool {
        // "less" in heap order means higher priority.
        let (aa, ab) = (act[a.index()], act[b.index()]);
        aa > ab || (aa == ab && a.0 < b.0)
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        while self.pos.len() <= v.index() {
            self.pos.push(None);
        }
        if self.pos[v.index()].is_some() {
            return;
        }
        self.heap.push(v);
        self.pos[v.index()] = Some(self.heap.len() as u32 - 1);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn update(&mut self, v: Var, act: &[f64]) {
        if let Some(i) = self.pos.get(v.index()).copied().flatten() {
            self.sift_up(i as usize, act);
        }
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("nonempty");
        self.pos[top.index()] = None;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = Some(0);
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::less(self.heap[i], self.heap[parent], act) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && Self::less(self.heap[l], self.heap[best], act) {
                best = l;
            }
            if r < self.heap.len() && Self::less(self.heap[r], self.heap[best], act) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].index()] = Some(i as u32);
        self.pos[self.heap[j].index()] = Some(j as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, pos: bool) -> Lit {
        Var(v).lit(pos)
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        s.add_clause([lit(0, true)]);
        let m = s.solve().model().unwrap();
        assert!(m.value(Var(0)));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        s.add_clause([lit(0, true)]);
        s.add_clause([lit(0, false)]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn empty_db_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn chain_propagation() {
        // x0 & (x_i -> x_{i+1}) forces all true.
        let mut s = Solver::new();
        s.add_clause([lit(0, true)]);
        for i in 0..20 {
            s.add_clause([lit(i, false), lit(i + 1, true)]);
        }
        let m = s.solve().model().unwrap();
        for i in 0..21 {
            assert!(m.value(Var(i)), "x{i}");
        }
    }

    #[test]
    fn xor_chain_unsat() {
        // Parity cycle with odd total parity is unsatisfiable:
        // a^b=1, b^c=1 imply a^c=0, so also requiring a^c=1 conflicts.
        let mut s = Solver::new();
        let xor = |s: &mut Solver, a: u32, b: u32, val: bool| {
            if val {
                s.add_clause([lit(a, true), lit(b, true)]);
                s.add_clause([lit(a, false), lit(b, false)]);
            } else {
                s.add_clause([lit(a, true), lit(b, false)]);
                s.add_clause([lit(a, false), lit(b, true)]);
            }
        };
        xor(&mut s, 0, 1, true);
        xor(&mut s, 1, 2, true);
        xor(&mut s, 0, 2, true);
        assert!(s.solve().is_unsat());
    }

    /// Pigeonhole principle PHP(n+1, n) is a classic hard UNSAT family.
    fn pigeonhole(holes: u32) -> Solver {
        let pigeons = holes + 1;
        let var = |p: u32, h: u32| Var(p * holes + h);
        let mut s = Solver::new();
        // Every pigeon in some hole.
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| var(p, h).positive()));
        }
        // No two pigeons share a hole.
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_unsat() {
        for holes in 2..=6 {
            let mut s = pigeonhole(holes);
            assert!(s.solve().is_unsat(), "PHP({}, {holes})", holes + 1);
        }
    }

    #[test]
    fn pigeonhole_exact_fit_sat() {
        // n pigeons, n holes is satisfiable.
        let holes = 5u32;
        let var = |p: u32, h: u32| Var(p * holes + h);
        let mut s = Solver::new();
        for p in 0..holes {
            s.add_clause((0..holes).map(|h| var(p, h).positive()));
        }
        for h in 0..holes {
            for p1 in 0..holes {
                for p2 in (p1 + 1)..holes {
                    s.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
        assert!(s.solve().is_sat());
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = Solver::new();
        s.add_clause([lit(0, true), lit(1, true)]);
        assert!(s.solve_with_assumptions(&[lit(0, false)]).is_sat());
        assert!(s
            .solve_with_assumptions(&[lit(0, false), lit(1, false)])
            .is_unsat());
        // Solver is reusable after assumption UNSAT.
        assert!(s.solve().is_sat());
        assert!(s.solve_with_assumptions(&[lit(0, true)]).is_sat());
    }

    #[test]
    fn unsat_core_is_subset_of_assumptions() {
        let mut s = Solver::new();
        s.add_clause([lit(0, false), lit(1, false)]); // !a | !b
        let assumptions = [lit(2, true), lit(0, true), lit(1, true)];
        assert!(s.solve_with_assumptions(&assumptions).is_unsat());
        let core = s.unsat_core().to_vec();
        assert!(!core.is_empty());
        for l in &core {
            assert!(assumptions.contains(l), "core lit {l} not an assumption");
        }
        // x2 is irrelevant, so a good core excludes it.
        assert!(core.contains(&lit(0, true)) || core.contains(&lit(1, true)));
    }

    #[test]
    fn failed_assumptions_subset_survives_learned_clause_reuse() {
        // A pigeonhole instance plus a relaxation switch r: with r assumed
        // false the PHP clauses bite and the query is UNSAT; the core must
        // name only assumptions that took part.
        let holes = 4u32;
        let pigeons = holes + 1;
        let var = |p: u32, h: u32| Var(1 + p * holes + h);
        let r = lit(0, true); // relaxation: r | php-clause
        let mut s = Solver::new();
        for p in 0..pigeons {
            let mut c: Vec<Lit> = (0..holes).map(|h| var(p, h).positive()).collect();
            c.push(r);
            s.add_clause(c);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause([var(p1, h).negative(), var(p2, h).negative(), r]);
                }
            }
        }
        let spare = Var(1 + pigeons * holes).positive();
        let assumptions = [spare, !r];
        assert!(s.solve_with_assumptions(&assumptions).is_unsat());
        let first_core = s.failed_assumptions().to_vec();
        assert!(!first_core.is_empty());
        for l in &first_core {
            assert!(assumptions.contains(l), "core lit {l} not an assumption");
        }
        assert!(first_core.contains(&!r), "refutation needs !r");
        assert!(!first_core.contains(&spare), "spare lit is irrelevant");

        // Re-running the same query reuses the learnt clauses from the
        // first solve (possibly concluding inside the assumption prefix);
        // the core must still be a subset of the assumptions and still
        // name the relaxation literal.
        assert!(s.solve_with_assumptions(&assumptions).is_unsat());
        let second_core = s.failed_assumptions().to_vec();
        assert!(!second_core.is_empty());
        for l in &second_core {
            assert!(assumptions.contains(l), "core lit {l} not an assumption");
        }
        assert!(second_core.contains(&!r));
        assert!(!second_core.contains(&spare));
        // And flipping the relaxation on is SAT — the solver state is not
        // poisoned by the two UNSAT answers.
        assert!(s.solve_with_assumptions(&[spare, r]).is_sat());
    }

    #[test]
    fn failed_assumptions_empty_after_assumption_free_unsat() {
        let mut s = Solver::new();
        s.add_clause([lit(0, true)]);
        s.add_clause([lit(0, false)]);
        assert!(s.solve().is_unsat());
        assert!(s.failed_assumptions().is_empty());
        // Same for a level-0 refutation reached with assumptions passed
        // but irrelevant: a DB-only UNSAT leaves no failed assumptions.
        let mut s2 = Solver::new();
        s2.add_clause([lit(0, true), lit(1, true)]);
        s2.add_clause([lit(0, true), lit(1, false)]);
        s2.add_clause([lit(0, false), lit(1, true)]);
        s2.add_clause([lit(0, false), lit(1, false)]);
        let r = s2.solve_with_assumptions(&[lit(2, true)]);
        assert!(r.is_unsat());
        for l in s2.failed_assumptions() {
            assert_eq!(*l, lit(2, true), "only passed assumptions may appear");
        }
    }

    #[test]
    fn expired_deadline_checked_at_solve_entry() {
        // A trivially satisfiable query must still return Unknown when its
        // deadline has already passed: the in-loop polls (every 256
        // conflicts) never fire on easy instances, so without the entry
        // check a caller sweeping many easy queries could overshoot its
        // budget arbitrarily.
        let mut s = Solver::new();
        s.add_clause([lit(0, true)]);
        let r = s.solve_limited(
            &[],
            Limits {
                deadline: Some(Instant::now()),
                ..Limits::NONE
            },
        );
        assert!(matches!(r, SolveResult::Unknown));
        // Without the expired deadline the same query is Sat.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // Random-ish structured instance solved and cross-checked.
        let mut cnf = verdict_logic::Cnf::new();
        let n = 12u32;
        for i in 0..n {
            cnf.add_clause([
                Var(i).positive(),
                Var((i + 1) % n).negative(),
                Var((i + 5) % n).positive(),
            ]);
            cnf.add_clause([Var(i).negative(), Var((i + 3) % n).positive()]);
        }
        let mut s = Solver::from_cnf(&cnf);
        let m = s.solve().model().unwrap();
        assert!(cnf.eval(m.as_slice()));
    }

    #[test]
    fn incremental_add_after_solve() {
        let mut s = Solver::new();
        s.add_clause([lit(0, true), lit(1, true)]);
        assert!(s.solve().is_sat());
        s.add_clause([lit(0, false)]);
        let m = s.solve().model().unwrap();
        assert!(m.value(Var(1)));
        s.add_clause([lit(1, false)]);
        assert!(s.solve().is_unsat());
        // Once level-0 UNSAT, stays UNSAT.
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn conflict_limit_returns_unknown() {
        let mut s = pigeonhole(8);
        let r = s.solve_limited(
            &[],
            Limits {
                max_conflicts: Some(5),
                ..Limits::NONE
            },
        );
        assert!(matches!(r, SolveResult::Unknown));
    }

    #[test]
    fn pre_raised_stop_flag_returns_unknown() {
        let mut s = pigeonhole(8);
        let stop = Arc::new(AtomicBool::new(true));
        let r = s.solve_limited(
            &[],
            Limits {
                stop: Some(stop),
                ..Limits::NONE
            },
        );
        assert!(matches!(r, SolveResult::Unknown));
        // The solver stays usable after an interrupted solve.
        let mut easy = Solver::new();
        easy.add_clause([lit(0, true)]);
        assert!(easy.solve().is_sat());
    }

    #[test]
    fn stop_flag_cancels_running_solve() {
        // Raise the flag from another thread mid-solve; the solver must
        // come back Unknown promptly instead of finishing PHP(11,10).
        let mut s = pigeonhole(10);
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let raiser = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            flag.store(true, Ordering::Relaxed);
        });
        let r = s.solve_limited(
            &[],
            Limits {
                stop: Some(stop),
                ..Limits::NONE
            },
        );
        raiser.join().unwrap();
        assert!(matches!(r, SolveResult::Unknown));
    }

    #[test]
    fn theory_hook_drives_lemmas() {
        // Theory: "x0 and x1 cannot both be true" expressed only via hook.
        struct AtMostOne;
        impl TheoryHook for AtMostOne {
            fn final_check(&mut self, model: &Model) -> TheoryVerdict {
                if model.value(Var(0)) && model.value(Var(1)) {
                    TheoryVerdict::Lemma(vec![Var(0).negative(), Var(1).negative()])
                } else {
                    TheoryVerdict::Consistent
                }
            }
        }
        let mut s = Solver::new();
        s.add_clause([lit(0, true)]);
        s.reserve_vars(2);
        let r = s.solve_with_theory(&[], &mut AtMostOne, Limits::NONE);
        let m = r.model().unwrap();
        assert!(m.value(Var(0)) && !m.value(Var(1)));
        assert!(s.stats().theory_lemmas <= 1);
    }

    #[test]
    fn theory_hook_can_force_unsat() {
        struct Never;
        impl TheoryHook for Never {
            fn final_check(&mut self, model: &Model) -> TheoryVerdict {
                // Reject every model by blocking it.
                let lemma = (0..model.as_slice().len() as u32)
                    .map(|i| Var(i).lit(!model.value(Var(i))))
                    .collect();
                TheoryVerdict::Lemma(lemma)
            }
        }
        let mut s = Solver::new();
        s.reserve_vars(3);
        let r = s.solve_with_theory(&[], &mut Never, Limits::NONE);
        assert!(r.is_unsat());
    }

    #[test]
    fn luby_sequence() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), e, "luby({})", i + 1);
        }
    }

    #[test]
    fn clause_limit_returns_unknown() {
        let mut s = pigeonhole(8);
        let n = s.num_clauses();
        let r = s.solve_limited(
            &[],
            Limits {
                max_clauses: Some(n + 3),
                ..Limits::NONE
            },
        );
        assert!(matches!(r, SolveResult::Unknown));
        assert!(s.num_clauses() >= n);
        // Without the ceiling the same instance still resolves.
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn proof_log_certifies_unsat() {
        use crate::proof::check_proof;
        for holes in 2..=5 {
            let pigeons = holes + 1;
            let var = |p: u32, h: u32| Var(p * holes + h);
            let mut s = Solver::new();
            s.enable_proof();
            for p in 0..pigeons {
                s.add_clause((0..holes).map(|h| var(p, h).positive()));
            }
            for h in 0..holes {
                for p1 in 0..pigeons {
                    for p2 in (p1 + 1)..pigeons {
                        s.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
                    }
                }
            }
            assert!(s.solve().is_unsat());
            let proof = s.take_proof();
            assert!(check_proof(&proof).is_ok(), "PHP({}, {holes})", holes + 1);
        }
    }

    #[test]
    fn proof_log_covers_level_zero_unsat() {
        use crate::proof::check_proof;
        let mut s = Solver::new();
        s.enable_proof();
        s.add_clause([lit(0, true), lit(1, true)]);
        s.add_clause([lit(0, false)]);
        s.add_clause([lit(1, false)]);
        assert!(s.solve().is_unsat());
        assert!(check_proof(&s.take_proof()).is_ok());
    }

    #[test]
    fn proof_log_with_db_reduction_still_checks() {
        use crate::proof::check_proof;
        // Big enough to trigger restarts; deletions (if any) must be
        // reflected in the log so the checker sees the same database.
        let holes = 7u32;
        let pigeons = holes + 1;
        let var = |p: u32, h: u32| Var(p * holes + h);
        let mut s = Solver::new();
        s.enable_proof();
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| var(p, h).positive()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
        assert!(s.solve().is_unsat());
        let proof = s.take_proof();
        assert!(check_proof(&proof).is_ok());
    }

    #[test]
    fn stats_accumulate() {
        let mut s = pigeonhole(5);
        let _ = s.solve();
        let st = s.stats();
        assert!(st.conflicts > 0);
        assert!(st.decisions > 0);
        assert!(st.propagations > 0);
    }
}
