//! A CDCL SAT solver.
//!
//! `verdict-sat` is the search core under every finite-domain engine in the
//! workspace: bounded model checking, k-induction, and the Boolean skeleton
//! of the lazy SMT solver in `verdict-smt`.
//!
//! The design follows the MiniSat lineage:
//!
//! * conflict-driven clause learning with first-UIP resolution and
//!   clause minimization,
//! * two-watched-literal propagation,
//! * exponential VSIDS activity with phase saving,
//! * Luby-sequence restarts,
//! * LBD-aware learnt-clause database reduction,
//! * incremental solving under assumptions with unsat-core extraction
//!   (the hook `verdict-smt` uses for theory lemmas), and
//! * a pluggable [`TheoryHook`] final check, so DPLL(T) lives outside this
//!   crate.
//!
//! The solver is deterministic: same input, same decisions, same model.
//!
//! ```
//! use verdict_logic::{Cnf, Var};
//! use verdict_sat::{Solver, SolveResult};
//!
//! let mut cnf = Cnf::new();
//! let (a, b) = (Var(0), Var(1));
//! cnf.add_clause([a.positive(), b.positive()]);
//! cnf.add_clause([a.negative()]);
//! let mut solver = Solver::from_cnf(&cnf);
//! match solver.solve() {
//!     SolveResult::Sat(model) => {
//!         assert!(!model.value(a) && model.value(b));
//!     }
//!     _ => unreachable!(),
//! }
//! ```

pub mod proof;
pub mod share;
pub mod solver;

pub use proof::{check_proof, ProofError, ProofEvent};
pub use share::{ClauseHub, Endpoint, ShareConfig, SharedClause};
pub use solver::{Limits, Model, SolveResult, Solver, Stats, TheoryHook, TheoryVerdict};
