//! End-to-end: author models in the DSL, check them with the engines.

use verdict_dsl::{parse, CompiledProperty};
use verdict_mc::{CheckOptions, Verifier};

fn check(model: &verdict_dsl::CompiledModel, name: &str) -> verdict_mc::CheckResult {
    let verifier = Verifier::new(&model.system).options(CheckOptions::with_depth(24));
    match model.property(name).expect("property exists") {
        CompiledProperty::Invariant(p) => verifier.check_invariant(p).unwrap(),
        CompiledProperty::Ltl(f) => verifier.check_ltl(f).unwrap(),
        CompiledProperty::Ctl(f) => verifier.check_ctl(f).unwrap(),
    }
}

#[test]
fn counter_properties_verified() {
    let m = parse(
        "system counter {
            var n : 0..7;
            init n = 0;
            trans next(n) = if n < 7 then n + 1 else n;

            invariant in_range: n <= 7;
            invariant wrong: n <= 5;
            ltl saturates: F (G (n = 7));
            ctl reach_top: EF (n = 7);
            ctl never_nine: AG (n != 7);
        }",
    )
    .unwrap();
    assert!(check(&m, "in_range").holds());
    let r = check(&m, "wrong");
    assert_eq!(
        r.trace().unwrap().len(),
        7,
        "0..=6 then 6 -> violation at 6"
    );
    assert!(check(&m, "saturates").holds());
    assert!(check(&m, "reach_top").holds());
    assert!(check(&m, "never_nine").violated());
}

#[test]
fn parameterized_dsl_model_synthesis() {
    // The DSL version of the step-counter synthesis example.
    let m = parse(
        "system step {
            var n : 0..10;
            param p : 1..3;
            init n = 0;
            trans next(n) = if n <= 7 then n + p else n;
            invariant miss5: n != 5;
        }",
    )
    .unwrap();
    let p = m.system.var_by_name("p").unwrap();
    let CompiledProperty::Invariant(inv) = m.property("miss5").unwrap() else {
        panic!()
    };
    let verifier = Verifier::new(&m.system);
    let result = verifier
        .synthesize_params(&[p], &verdict_mc::params::Property::Invariant(inv.clone()))
        .unwrap();
    // p = 1 hits 5; p = 2 and p = 3 skip it.
    assert_eq!(result.safe().len(), 2, "{result}");
}

#[test]
fn real_valued_dsl_model_via_smt() {
    let m = parse(
        "system bucket {
            var level : real;
            param inflow : real;
            init level = 0;
            init inflow >= 0 & inflow <= 3;
            trans next(level) = level + inflow - 1;
            invariant bounded: level <= 4;
        }",
    )
    .unwrap();
    assert!(m.system.has_real_vars());
    let r = check(&m, "bounded");
    let t = r.trace().expect("inflow can exceed the leak");
    // Inflow is constant along the trace (frozen) and must exceed 1.
    let v0 = t.value(0, "inflow").unwrap();
    assert_eq!(t.value(t.len() - 1, "inflow").unwrap(), v0);
}

#[test]
fn oscillator_liveness_from_dsl() {
    let m = parse(
        "system flip {
            var x : bool;
            init x;
            trans next(x) = !x;
            ltl fg: F (G x);
            ltl gf: G (F x);
        }",
    )
    .unwrap();
    let r = check(&m, "fg");
    assert!(r.trace().unwrap().loop_back.is_some(), "lasso trace");
    assert!(check(&m, "gf").holds());
}

#[test]
fn enum_state_machine_from_dsl() {
    let m = parse(
        "system lifecycle {
            var pod : {none, pending, running};
            var tainted : bool;
            init pod = none & tainted;
            trans next(tainted) = tainted;
            trans pod = none -> next(pod) = pending;
            trans pod = pending -> next(pod) = running;
            trans pod = running ->
                (if tainted then next(pod) = none else next(pod) = running);
            ltl settles: F (G (pod = running));
        }",
    )
    .unwrap();
    let r = check(&m, "settles");
    assert!(r.violated(), "taint loop livelocks: {r}");
}
