//! Compiler: surface AST → `verdict-ts` IR.
//!
//! Responsibilities beyond structural translation:
//!
//! * name resolution — identifiers are variables or enum variants, with
//!   ambiguity and unknown-name errors at the right source position;
//! * numeric-literal typing — integer literals flow into `real` contexts
//!   as exact rationals; `3/4` and `0.45` fold to rational constants;
//! * linearity enforcement — `*` requires a constant factor and `/` a
//!   constant divisor, mirroring what the engines can decide.

use std::collections::HashMap;
use std::sync::Arc;

use verdict_logic::Rational;
use verdict_ts::{Ctl, EnumSort, Expr, Ltl, Sort, System, Value, VarId, VarKind};

use crate::ast::*;
use crate::lexer::line_col;
use crate::parser::ParseError;

/// A compiled property.
#[derive(Clone, Debug)]
pub enum CompiledProperty {
    /// `invariant name: p` — check `G p`.
    Invariant(Expr),
    /// An LTL property.
    Ltl(Ltl),
    /// A CTL property.
    Ctl(Ctl),
}

/// The result of compiling a source file.
#[derive(Clone, Debug)]
pub struct CompiledModel {
    /// The transition system.
    pub system: System,
    /// Named properties in declaration order.
    pub properties: Vec<(String, CompiledProperty)>,
    /// Name-resolution state, kept so expressions can be compiled against
    /// the model after the fact (e.g. `--event` expressions on the CLI).
    symbols: Symbols,
}

#[derive(Clone, Debug, Default)]
struct Symbols {
    vars: HashMap<String, VarId>,
    variants: HashMap<String, Option<(Arc<EnumSort>, u32)>>,
    defines: HashMap<String, (Expr, Kind)>,
}

impl CompiledModel {
    /// Looks up a property by name.
    pub fn property(&self, name: &str) -> Option<&CompiledProperty> {
        self.properties
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p)
    }

    /// Parses and compiles a standalone boolean expression in this
    /// model's namespace (variables, enum variants, defines).
    pub fn compile_bool_expr(&self, source: &str) -> Result<Expr, ParseError> {
        let ast = crate::parser::parse_expr_str(source)?;
        let ctx = Ctx {
            system: self.system.clone(),
            vars: self.symbols.vars.clone(),
            variants: self.symbols.variants.clone(),
            defines: self.symbols.defines.clone(),
            source,
        };
        ctx.bool_expr(&ast)
    }

    /// Like [`CompiledModel::compile_bool_expr`] but for integer-sorted
    /// expressions (metrics).
    pub fn compile_int_expr(&self, source: &str) -> Result<Expr, ParseError> {
        let ast = crate::parser::parse_expr_str(source)?;
        let ctx = Ctx {
            system: self.system.clone(),
            vars: self.symbols.vars.clone(),
            variants: self.symbols.variants.clone(),
            defines: self.symbols.defines.clone(),
            source,
        };
        let (expr, kind) = ctx.expr(&ast)?;
        match kind {
            Kind::Int | Kind::IntLit(_) => Ok(expr),
            other => Err(ctx.error(
                ast.offset(),
                format!("expected an integer expression, found {other:?}"),
            )),
        }
    }
}

/// Compiles a parsed system.
pub fn compile(ast: &SystemAst, source: &str) -> Result<CompiledModel, ParseError> {
    let mut ctx = Ctx {
        system: System::new(&ast.name),
        vars: HashMap::new(),
        variants: HashMap::new(),
        defines: HashMap::new(),
        source,
    };

    for decl in &ast.decls {
        ctx.declare(decl)?;
    }
    for (name, e, offset) in &ast.defines {
        if ctx.vars.contains_key(name) || ctx.defines.contains_key(name) {
            return Err(ctx.error(*offset, format!("`{name}` is already defined")));
        }
        let compiled = ctx.expr(e)?;
        ctx.defines.insert(name.clone(), compiled);
    }
    for e in &ast.init {
        let compiled = ctx.bool_expr(e)?;
        ctx.system.add_init(compiled);
    }
    for e in &ast.invar {
        let compiled = ctx.bool_expr(e)?;
        ctx.system.add_invar(compiled);
    }
    for e in &ast.trans {
        let compiled = ctx.bool_expr(e)?;
        ctx.system.add_trans(compiled);
    }
    for e in &ast.fairness {
        let compiled = ctx.bool_expr(e)?;
        ctx.system.add_fairness(compiled);
    }

    let mut properties = Vec::new();
    for p in &ast.properties {
        let compiled = match &p.kind {
            PropertyKind::Invariant(e) => CompiledProperty::Invariant(ctx.bool_expr(e)?),
            PropertyKind::Ltl(f) => CompiledProperty::Ltl(ctx.ltl(f)?),
            PropertyKind::Ctl(f) => CompiledProperty::Ctl(ctx.ctl(f)?),
        };
        properties.push((p.name.clone(), compiled));
    }

    // Final semantic pass through the IR type checker.
    if let Err(te) = ctx.system.check() {
        return Err(ctx.error(0, format!("model does not type-check: {te}")));
    }
    Ok(CompiledModel {
        symbols: Symbols {
            vars: ctx.vars,
            variants: ctx.variants,
            defines: ctx.defines,
        },
        system: ctx.system,
        properties,
    })
}

/// Typing classes during compilation.
#[derive(Clone, Debug, PartialEq)]
enum Kind {
    Bool,
    Int,
    /// An integer literal, coercible to `Real` on demand.
    IntLit(i64),
    /// A rational constant.
    RatLit(Rational),
    Real,
    Enum(String),
}

struct Ctx<'a> {
    system: System,
    vars: HashMap<String, VarId>,
    /// `define` bodies, compiled once and shared (Arc DAG) at each use.
    defines: HashMap<String, (Expr, Kind)>,
    /// variant name -> (sort, index); duplicates across sorts are marked
    /// ambiguous with a sentinel.
    variants: HashMap<String, Option<(Arc<EnumSort>, u32)>>,
    source: &'a str,
}

impl Ctx<'_> {
    fn error(&self, offset: usize, message: impl Into<String>) -> ParseError {
        let (line, column) = line_col(self.source, offset);
        ParseError {
            offset,
            line,
            column,
            message: message.into(),
        }
    }

    fn declare(&mut self, decl: &DeclAst) -> Result<(), ParseError> {
        if self.vars.contains_key(&decl.name) {
            return Err(self.error(
                decl.offset,
                format!("duplicate declaration of `{}`", decl.name),
            ));
        }
        let sort = match &decl.ty {
            TypeAst::Bool => Sort::Bool,
            TypeAst::Real => Sort::Real,
            TypeAst::Range(lo, hi) => {
                if lo > hi {
                    return Err(self.error(decl.offset, format!("empty range {lo}..{hi}")));
                }
                Sort::int(*lo, *hi)
            }
            TypeAst::Enum(variants) => {
                // Identical variant lists unify to one structural sort so
                // equality across variables works.
                let sort_name = format!("{{{}}}", variants.join(","));
                let refs: Vec<&str> = variants.iter().map(String::as_str).collect();
                let sort = EnumSort::new(&sort_name, &refs);
                for (i, v) in variants.iter().enumerate() {
                    match self.variants.get_mut(v) {
                        None => {
                            self.variants
                                .insert(v.clone(), Some((sort.clone(), i as u32)));
                        }
                        Some(existing) => {
                            // Same sort (structural) re-registering is fine;
                            // different sorts make the name ambiguous.
                            let same = existing.as_ref().is_some_and(|(s, _)| s.name == sort.name);
                            if !same {
                                *existing = None;
                            }
                        }
                    }
                }
                Sort::Enum(sort)
            }
        };
        let kind = if decl.frozen {
            VarKind::Frozen
        } else {
            VarKind::State
        };
        let id = self.system.add_var(&decl.name, sort, kind);
        self.vars.insert(decl.name.clone(), id);
        Ok(())
    }

    /// Compiles an expression expected to be boolean.
    fn bool_expr(&self, e: &ExprAst) -> Result<Expr, ParseError> {
        let (expr, kind) = self.expr(e)?;
        match kind {
            Kind::Bool => Ok(expr),
            other => Err(self.error(
                e.offset(),
                format!("expected a boolean expression, found {other:?}"),
            )),
        }
    }

    fn expr(&self, e: &ExprAst) -> Result<(Expr, Kind), ParseError> {
        match e {
            ExprAst::Int(n, _) => Ok((Expr::int(*n), Kind::IntLit(*n))),
            ExprAst::Rational(num, den, o) => {
                if *den == 0 {
                    return Err(self.error(*o, "division by zero"));
                }
                let r = Rational::new(*num, *den);
                Ok((Expr::real(r), Kind::RatLit(r)))
            }
            ExprAst::Bool(b, _) => Ok((Expr::bool(*b), Kind::Bool)),
            ExprAst::Ident(name, o) => self.resolve(name, *o, false),
            ExprAst::Next(name, o) => self.resolve(name, *o, true),
            ExprAst::Not(inner) => {
                let (x, k) = self.expr(inner)?;
                if k != Kind::Bool {
                    return Err(self.error(inner.offset(), "`!` expects a boolean operand"));
                }
                Ok((x.not(), Kind::Bool))
            }
            ExprAst::Neg(inner) => {
                let (x, k) = self.expr(inner)?;
                match k {
                    Kind::IntLit(n) => Ok((Expr::int(-n), Kind::IntLit(-n))),
                    Kind::RatLit(r) => Ok((Expr::real(-r), Kind::RatLit(-r))),
                    Kind::Int => Ok((x.neg(), Kind::Int)),
                    Kind::Real => Ok((x.neg(), Kind::Real)),
                    other => Err(self.error(
                        inner.offset(),
                        format!("`-` expects a numeric operand, found {other:?}"),
                    )),
                }
            }
            ExprAst::Bin(op, a, b, o) => self.bin(*op, a, b, *o),
            ExprAst::Ite(c, t, f) => {
                let cond = self.bool_expr(c)?;
                let (te, tk) = self.expr(t)?;
                let (fe, fk) = self.expr(f)?;
                let (te, fe, k) = self.unify(te, tk, fe, fk, t.offset())?;
                // The result is NOT a constant even when both branches are
                // literals: degrade literal kinds so downstream `*`/`/`
                // cannot constant-fold the conditional away.
                let k = match k {
                    Kind::IntLit(_) => Kind::Int,
                    Kind::RatLit(_) => Kind::Real,
                    other => other,
                };
                Ok((Expr::ite(cond, te, fe), k))
            }
            ExprAst::Count(items) => {
                let mut exprs = Vec::with_capacity(items.len());
                for item in items {
                    exprs.push(self.bool_expr(item)?);
                }
                Ok((Expr::count_true(exprs), Kind::Int))
            }
        }
    }

    fn resolve(&self, name: &str, offset: usize, next: bool) -> Result<(Expr, Kind), ParseError> {
        if let Some(&v) = self.vars.get(name) {
            let kind = match self.system.sort_of(v) {
                Sort::Bool => Kind::Bool,
                Sort::Int { .. } => Kind::Int,
                Sort::Real => Kind::Real,
                Sort::Enum(s) => Kind::Enum(s.name.clone()),
            };
            let expr = if next { Expr::next(v) } else { Expr::var(v) };
            return Ok((expr, kind));
        }
        if next {
            return Err(self.error(offset, format!("unknown variable `{name}`")));
        }
        if let Some((e, k)) = self.defines.get(name) {
            return Ok((e.clone(), k.clone()));
        }
        match self.variants.get(name) {
            Some(Some((sort, idx))) => Ok((
                Expr::Const(Value::Enum(sort.clone(), *idx)),
                Kind::Enum(sort.name.clone()),
            )),
            Some(None) => Err(self.error(
                offset,
                format!("`{name}` is a variant of multiple enum types; rename"),
            )),
            None => Err(self.error(offset, format!("unknown name `{name}`"))),
        }
    }

    /// Unifies two operands for comparison/ite, coercing literals.
    fn unify(
        &self,
        a: Expr,
        ka: Kind,
        b: Expr,
        kb: Kind,
        offset: usize,
    ) -> Result<(Expr, Expr, Kind), ParseError> {
        use Kind::*;
        let (a, b, k) = match (ka, kb) {
            (Bool, Bool) => (a, b, Bool),
            (Int, Int) | (Int, IntLit(_)) | (IntLit(_), Int) => (a, b, Int),
            (IntLit(x), IntLit(_)) => (a, b, IntLit(x)),
            (Real, Real) | (Real, RatLit(_)) | (RatLit(_), Real) => (a, b, Real),
            (RatLit(x), RatLit(_)) => (a, b, RatLit(x)),
            // Integer literals coerce into real contexts.
            (Real, IntLit(n)) => (a, Expr::real(Rational::integer(n as i128)), Real),
            (IntLit(n), Real) => (Expr::real(Rational::integer(n as i128)), b, Real),
            (RatLit(r), IntLit(n)) => (a, Expr::real(Rational::integer(n as i128)), RatLit(r)),
            (IntLit(n), RatLit(_)) => (Expr::real(Rational::integer(n as i128)), b, Real),
            (Enum(x), Enum(y)) if x == y => (a, b, Enum(x)),
            (ka, kb) => {
                return Err(self.error(
                    offset,
                    format!("incompatible operand types {ka:?} and {kb:?}"),
                ))
            }
        };
        Ok((a, b, k))
    }

    fn bin(
        &self,
        op: BinOp,
        a: &ExprAst,
        b: &ExprAst,
        offset: usize,
    ) -> Result<(Expr, Kind), ParseError> {
        let (ea, ka) = self.expr(a)?;
        let (eb, kb) = self.expr(b)?;
        match op {
            BinOp::And | BinOp::Or | BinOp::Implies | BinOp::Iff => {
                if ka != Kind::Bool || kb != Kind::Bool {
                    return Err(self.error(offset, "boolean connective expects boolean operands"));
                }
                let e = match op {
                    BinOp::And => ea.and(eb),
                    BinOp::Or => ea.or(eb),
                    BinOp::Implies => ea.implies(eb),
                    BinOp::Iff => ea.iff(eb),
                    _ => unreachable!(),
                };
                Ok((e, Kind::Bool))
            }
            BinOp::Eq | BinOp::Ne => {
                let (ea, eb, _) = self.unify(ea, ka, eb, kb, offset)?;
                let e = if op == BinOp::Eq {
                    ea.eq(eb)
                } else {
                    ea.ne(eb)
                };
                Ok((e, Kind::Bool))
            }
            BinOp::Le | BinOp::Lt | BinOp::Ge | BinOp::Gt => {
                let (ea, eb, k) = self.unify(ea, ka, eb, kb, offset)?;
                if matches!(k, Kind::Bool | Kind::Enum(_)) {
                    return Err(self.error(offset, "comparison expects numeric operands"));
                }
                let e = match op {
                    BinOp::Le => ea.le(eb),
                    BinOp::Lt => ea.lt(eb),
                    BinOp::Ge => ea.ge(eb),
                    BinOp::Gt => ea.gt(eb),
                    _ => unreachable!(),
                };
                Ok((e, Kind::Bool))
            }
            BinOp::Add | BinOp::Sub => {
                let (ea, eb, k) = self.unify(ea, ka, eb, kb, offset)?;
                if matches!(k, Kind::Bool | Kind::Enum(_)) {
                    return Err(self.error(offset, "arithmetic expects numbers"));
                }
                let e = if op == BinOp::Add {
                    ea.add(eb)
                } else {
                    ea.sub(eb)
                };
                // Literal folding is not needed; the kind degrades to the
                // general numeric kind.
                let k = match k {
                    Kind::IntLit(_) => Kind::Int,
                    Kind::RatLit(_) => Kind::Real,
                    other => other,
                };
                Ok((e, k))
            }
            BinOp::Mul => {
                // Linear arithmetic: at least one side constant.
                match (ka.clone(), kb.clone()) {
                    (Kind::IntLit(n), _) => {
                        self.scale(eb, kb, Rational::integer(n as i128), offset)
                    }
                    (_, Kind::IntLit(n)) => {
                        self.scale(ea, ka, Rational::integer(n as i128), offset)
                    }
                    (Kind::RatLit(r), _) => self.scale(eb, kb, r, offset),
                    (_, Kind::RatLit(r)) => self.scale(ea, ka, r, offset),
                    _ => Err(self.error(
                        offset,
                        "`*` needs a constant factor (linear arithmetic only)",
                    )),
                }
            }
            BinOp::Div => match kb {
                Kind::IntLit(n) if n != 0 => {
                    self.scale(ea, ka, Rational::new(1, n as i128), offset)
                }
                Kind::RatLit(r) if !r.is_zero() => self.scale(ea, ka, r.recip(), offset),
                Kind::IntLit(_) | Kind::RatLit(_) => Err(self.error(offset, "division by zero")),
                _ => Err(self.error(
                    offset,
                    "`/` needs a constant divisor (linear arithmetic only)",
                )),
            },
        }
    }

    fn scale(
        &self,
        e: Expr,
        k: Kind,
        factor: Rational,
        offset: usize,
    ) -> Result<(Expr, Kind), ParseError> {
        match k {
            Kind::IntLit(n) => {
                // Constant folding; stays integer only if exact.
                let r = Rational::integer(n as i128) * factor;
                if r.is_integer() {
                    Ok((Expr::int(r.numer() as i64), Kind::IntLit(r.numer() as i64)))
                } else {
                    Ok((Expr::real(r), Kind::RatLit(r)))
                }
            }
            Kind::RatLit(r) => {
                let r = r * factor;
                Ok((Expr::real(r), Kind::RatLit(r)))
            }
            Kind::Int => {
                if !factor.is_integer() {
                    return Err(self.error(
                        offset,
                        "integer expression scaled by a non-integer constant",
                    ));
                }
                Ok((e.scale(factor), Kind::Int))
            }
            Kind::Real => Ok((e.scale(factor), Kind::Real)),
            other => Err(self.error(
                offset,
                format!("`*`/`/` expects a numeric operand, found {other:?}"),
            )),
        }
    }

    // ---- properties ---------------------------------------------------

    fn ltl(&self, f: &LtlAst) -> Result<Ltl, ParseError> {
        Ok(match f {
            LtlAst::Atom(e) => Ltl::atom(self.bool_expr(e)?),
            LtlAst::Not(a) => self.ltl(a)?.not(),
            LtlAst::Bin(op, a, b) => {
                let (a, b) = (self.ltl(a)?, self.ltl(b)?);
                match op {
                    BinOp::And => a.and(b),
                    BinOp::Or => a.or(b),
                    BinOp::Implies => a.implies(b),
                    BinOp::Iff => a.clone().implies(b.clone()).and(b.implies(a)),
                    _ => unreachable!("parser only builds connectives"),
                }
            }
            LtlAst::Globally(a) => self.ltl(a)?.always(),
            LtlAst::Finally(a) => self.ltl(a)?.eventually(),
            LtlAst::Next(a) => self.ltl(a)?.next(),
            LtlAst::Until(a, b) => self.ltl(a)?.until(self.ltl(b)?),
            LtlAst::Release(a, b) => self.ltl(a)?.release(self.ltl(b)?),
        })
    }

    fn ctl(&self, f: &CtlAst) -> Result<Ctl, ParseError> {
        Ok(match f {
            CtlAst::Atom(e) => Ctl::atom(self.bool_expr(e)?),
            CtlAst::Not(a) => self.ctl(a)?.not(),
            CtlAst::Bin(op, a, b) => {
                let (a, b) = (self.ctl(a)?, self.ctl(b)?);
                match op {
                    BinOp::And => a.and(b),
                    BinOp::Or => a.or(b),
                    BinOp::Implies => a.implies(b),
                    BinOp::Iff => a.clone().implies(b.clone()).and(b.implies(a)),
                    _ => unreachable!(),
                }
            }
            CtlAst::Unary(q, a) => {
                let a = self.ctl(a)?;
                match q {
                    CtlQuant::Ex => a.ex(),
                    CtlQuant::Ef => a.ef(),
                    CtlQuant::Eg => a.eg(),
                    CtlQuant::Ax => a.ax(),
                    CtlQuant::Af => a.af(),
                    CtlQuant::Ag => a.ag(),
                }
            }
            CtlAst::Until(exists, a, b) => {
                let (a, b) = (self.ctl(a)?, self.ctl(b)?);
                if *exists {
                    a.eu(b)
                } else {
                    a.au(b)
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::parse;
    use super::*;

    #[test]
    fn counter_compiles_and_checks() {
        let m = parse(
            "system counter {
                var n : 0..7;
                param step : 1..2;
                init n = 0;
                trans next(n) = if n < 6 then n + step else n;
                invariant cap: n <= 7;
                ltl live: F (n >= 6);
            }",
        )
        .unwrap();
        assert_eq!(m.system.num_vars(), 2);
        assert_eq!(m.properties.len(), 2);
        assert!(m.property("cap").is_some());
        assert!(m.system.check().is_ok());
    }

    #[test]
    fn enums_resolve_and_unify() {
        let m = parse(
            "system phases {
                var a : {idle, busy};
                var b : {idle, busy};
                init a = idle & b = busy;
                trans next(a) = b;
            }",
        )
        .unwrap();
        assert!(m.system.check().is_ok());
    }

    #[test]
    fn ambiguous_variant_rejected() {
        let e = parse(
            "system bad {
                var a : {idle, busy};
                var b : {idle, done};
                init a = idle;
            }",
        )
        .unwrap_err();
        assert!(e.message.contains("multiple enum"), "{e}");
    }

    #[test]
    fn reals_with_literal_coercion() {
        let m = parse(
            "system lb {
                var load : real;
                param slope : real;
                init load = 0;
                init slope > 0.5;
                trans next(load) = load + 2 * slope;
            }",
        )
        .unwrap();
        assert!(m.system.has_real_vars());
    }

    #[test]
    fn linearity_enforced() {
        let e = parse("system nl { var x : real; var y : real; init x * y > 1; }").unwrap_err();
        assert!(e.message.contains("constant factor"), "{e}");
        let e = parse("system nl2 { var x : real; init 1 / x > 1; }").unwrap_err();
        assert!(e.message.contains("constant divisor"), "{e}");
        let e = parse("system dz { var x : real; init x / 0 > 1; }").unwrap_err();
        assert!(e.message.contains("division by zero"), "{e}");
    }

    #[test]
    fn sort_errors_reported_with_position() {
        let e = parse("system s { var x : bool; init x + 1 = 2; }").unwrap_err();
        assert!(e.line == 1 && e.column > 1, "{e}");
        let e = parse("system s { var n : 0..3; init n; }").unwrap_err();
        assert!(e.message.contains("boolean"), "{e}");
        let e = parse("system s { var n : 0..3; init next(zz) = 1; }").unwrap_err();
        assert!(e.message.contains("unknown variable"), "{e}");
    }

    #[test]
    fn count_and_div_fold() {
        let m = parse(
            "system c {
                var a : bool;
                var b : bool;
                var r : real;
                invar count(a, b) <= 1;
                init r = 3 / 4;
            }",
        )
        .unwrap();
        assert!(m.system.check().is_ok());
        // 3/4 folded to an exact rational constant.
        let shown = m.system.to_string();
        assert!(shown.contains("3/4"), "{shown}");
    }

    #[test]
    fn defines_expand_and_share() {
        let m = parse(
            "system d {
                var a : bool;
                var b : bool;
                var n : 0..7;
                define both = a & b;
                define spare = 7 - n;
                init !both & n = 0;
                trans next(n) = if both then n else n + 1;
                invariant headroom: spare >= 0;
            }",
        )
        .unwrap();
        assert!(m.system.check().is_ok());
        // `both` is not a variable.
        assert_eq!(m.system.num_vars(), 3);
        // Redefinition and define/var clashes are errors.
        assert!(parse("system d { var a : bool; define a = true; }").is_err());
        assert!(parse("system d { define x = true; define x = false; }").is_err());
        // Defines can reference earlier defines.
        let m = parse(
            "system d2 {
                var n : 0..7;
                define twice = n + n;
                define plus2 = twice + 2;
                invariant p: plus2 <= 16;
            }",
        )
        .unwrap();
        assert!(m.system.check().is_ok());
    }

    #[test]
    fn ite_of_literals_is_not_constant_folded() {
        // Regression: `2 * (if c then 0.5 else 1)` must keep the
        // conditional; the Ite's kind used to stay a literal kind, letting
        // `*` fold the whole conditional into a constant.
        let m = parse(
            "system kindbug {
                var c : bool;
                var x : real;
                init x = 0;
                trans next(x) = x + 2 * (if c then 0.5 else 1);
                trans next(c) = c;
            }",
        )
        .unwrap();
        let shown = m.system.to_string();
        assert!(shown.contains("if"), "conditional must survive: {shown}");
        // And mixed int branches in an int context degrade to Int (usable
        // in comparisons, rejected as a `*` factor).
        assert!(parse(
            "system k2 { var c : bool; var n : 0..7; \
             invar (if c then 2 else 3) + n <= 10; }"
        )
        .is_ok());
        assert!(
            parse(
                "system k3 { var c : bool; var n : 0..7; \
             invar n * (if c then 2 else 3) <= 10; }"
            )
            .is_err(),
            "non-constant factor must be rejected"
        );
    }

    #[test]
    fn post_compile_expressions_share_the_namespace() {
        let m = parse(
            "system ns {
                var n : 0..7;
                var phase : {idle, busy};
                define spare = 7 - n;
                init n = 0 & phase = idle;
            }",
        )
        .unwrap();
        // Booleans resolve vars, variants, and defines.
        let e = m.compile_bool_expr("phase = busy & spare >= 2").unwrap();
        assert!(e.sort(&m.system).unwrap() == verdict_ts::Sort::Bool);
        // Integer metrics.
        let e = m.compile_int_expr("spare + n").unwrap();
        assert!(matches!(
            e.sort(&m.system).unwrap(),
            verdict_ts::Sort::Int { .. }
        ));
        // Errors: wrong sort, unknown names, trailing input.
        assert!(m.compile_int_expr("phase = busy").is_err());
        assert!(m.compile_bool_expr("nope = 1").is_err());
        assert!(m.compile_bool_expr("n = 1 extra").is_err());
    }

    #[test]
    fn properties_compile_to_ir() {
        let m = parse(
            "system p {
                var n : 0..3;
                init n = 0;
                trans next(n) = if n < 3 then n + 1 else 0;
                ltl untilprop: (n <= 1) U (n = 2);
                ctl eu: E [ n <= 1 U n = 2 ];
                ctl ag: AG (n <= 3);
            }",
        )
        .unwrap();
        assert!(matches!(
            m.property("untilprop"),
            Some(CompiledProperty::Ltl(Ltl::U(_, _)))
        ));
        assert!(matches!(
            m.property("eu"),
            Some(CompiledProperty::Ctl(Ctl::EU(_, _)))
        ));
    }
}
