//! `verdict`'s high-level modeling language.
//!
//! The paper (§4.1, §5) envisions "a high-level modeling language that
//! facilitates modeling of control components and environment", compiled
//! down to the checker's low-level input. This crate is that language:
//! a small, SMV-flavored text format that compiles to the `verdict-ts`
//! IR, with variables, frozen parameters, enums, bounded integers, reals,
//! `init`/`invar`/`trans`/`fairness` sections, and named LTL / CTL /
//! invariant properties.
//!
//! ```text
//! system counter {
//!     var n : 0..7;
//!     param step : 1..2;
//!     init n = 0;
//!     trans next(n) = if n < 6 then n + step else n;
//!
//!     invariant bounded: n <= 7;
//!     ltl hits_six: F (n = 6);
//!     ctl reach: EF (n >= 6);
//! }
//! ```
//!
//! ```
//! use verdict_dsl::parse;
//! let src = r#"
//!     system demo {
//!         var x : bool;
//!         init x;
//!         trans next(x) = !x;
//!         ltl oscillates: G (F x);
//!     }
//! "#;
//! let model = parse(src).unwrap();
//! assert_eq!(model.system.name(), "demo");
//! assert_eq!(model.properties.len(), 1);
//! ```

pub mod ast;
pub mod compile;
pub mod lexer;
pub mod parser;

pub use compile::{CompiledModel, CompiledProperty};
pub use lexer::{LexError, Token, TokenKind};
pub use parser::ParseError;

/// Parses and compiles a `.vd` source file into a transition system and
/// its properties.
pub fn parse(source: &str) -> Result<CompiledModel, ParseError> {
    let tokens = lexer::lex(source).map_err(ParseError::from)?;
    let ast = parser::parse_tokens(&tokens, source)?;
    compile::compile(&ast, source)
}
