//! Tokenizer for the modeling language.

use std::fmt;

/// A token kind.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Decimal literal kept as text (exact rational conversion happens in
    /// the compiler).
    Decimal(String),
    /// `{ } ( ) [ ] : ; , ..`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `..`
    DotDot,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `!`
    Bang,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `->`
    Arrow,
    /// `<->`
    DArrow,
}

/// A token with its byte offset (for error messages).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Kind.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub offset: usize,
}

/// A lexing error.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Message.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes the source. `//` comments run to end of line.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => push(&mut out, TokenKind::LBrace, start, &mut i),
            '}' => push(&mut out, TokenKind::RBrace, start, &mut i),
            '(' => push(&mut out, TokenKind::LParen, start, &mut i),
            ')' => push(&mut out, TokenKind::RParen, start, &mut i),
            '[' => push(&mut out, TokenKind::LBracket, start, &mut i),
            ']' => push(&mut out, TokenKind::RBracket, start, &mut i),
            ':' => push(&mut out, TokenKind::Colon, start, &mut i),
            ';' => push(&mut out, TokenKind::Semi, start, &mut i),
            ',' => push(&mut out, TokenKind::Comma, start, &mut i),
            '+' => push(&mut out, TokenKind::Plus, start, &mut i),
            '*' => push(&mut out, TokenKind::Star, start, &mut i),
            '/' => push(&mut out, TokenKind::Slash, start, &mut i),
            '&' => push(&mut out, TokenKind::Amp, start, &mut i),
            '|' => push(&mut out, TokenKind::Pipe, start, &mut i),
            '=' => push(&mut out, TokenKind::Eq, start, &mut i),
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Bang, start, &mut i);
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token {
                        kind: TokenKind::Arrow,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Minus, start, &mut i);
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'-') && bytes.get(i + 2) == Some(&b'>') {
                    out.push(Token {
                        kind: TokenKind::DArrow,
                        offset: start,
                    });
                    i += 3;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Lt, start, &mut i);
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Gt, start, &mut i);
                }
            }
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    out.push(Token {
                        kind: TokenKind::DotDot,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: start,
                        message: "unexpected '.'".to_string(),
                    });
                }
            }
            '0'..='9' => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                // Decimal (not range): digit '.' digit
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && bytes.get(j + 1).is_some_and(u8::is_ascii_digit)
                {
                    let mut k = j + 1;
                    while k < bytes.len() && bytes[k].is_ascii_digit() {
                        k += 1;
                    }
                    out.push(Token {
                        kind: TokenKind::Decimal(source[i..k].to_string()),
                        offset: start,
                    });
                    i = k;
                } else {
                    let value: i64 = source[i..j].parse().map_err(|_| LexError {
                        offset: start,
                        message: "integer literal out of range".to_string(),
                    })?;
                    out.push(Token {
                        kind: TokenKind::Int(value),
                        offset: start,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(source[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(LexError {
                    offset: start,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(out)
}

fn push(out: &mut Vec<Token>, kind: TokenKind, start: usize, i: &mut usize) {
    out.push(Token {
        kind,
        offset: start,
    });
    *i += 1;
}

/// Converts a byte offset to (line, column), 1-based.
pub fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let mut line = 1;
    let mut col = 1;
    for (i, c) in source.char_indices() {
        if i >= offset {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lone_dot_is_an_error() {
        assert!(lex("a . b").is_err());
    }

    #[test]
    fn basic_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("var n : 0..7; n <= 5 & x -> y <-> !z"),
            vec![
                Ident("var".into()),
                Ident("n".into()),
                Colon,
                Int(0),
                DotDot,
                Int(7),
                Semi,
                Ident("n".into()),
                Le,
                Int(5),
                Amp,
                Ident("x".into()),
                Arrow,
                Ident("y".into()),
                DArrow,
                Bang,
                Ident("z".into()),
            ]
        );
    }

    #[test]
    fn decimals_vs_ranges() {
        use TokenKind::*;
        assert_eq!(
            kinds("0.45 1..2 3/4"),
            vec![
                Decimal("0.45".into()),
                Int(1),
                DotDot,
                Int(2),
                Int(3),
                Slash,
                Int(4)
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(kinds("x // comment\ny"), kinds("x\ny"));
    }

    #[test]
    fn errors_carry_offsets() {
        let e = lex("abc $").unwrap_err();
        assert_eq!(e.offset, 4);
        assert_eq!(line_col("abc $", 4), (1, 5));
        assert_eq!(line_col("a\nbc", 3), (2, 2));
    }
}
