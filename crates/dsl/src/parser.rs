//! Recursive-descent parser.
//!
//! Expression precedence (loosest first):
//! `<->`, `->` (right-assoc), `|`, `&`, `!`/comparisons, `+ -`, `* /`,
//! unary `-`, primaries. Temporal operators bind like `!` in property
//! formulas; `U`/`R` sit between `->` and `|`.

use std::fmt;

use crate::ast::*;
use crate::lexer::{line_col, LexError, Token, TokenKind};

/// A parse (or lex) error with position info.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// Byte offset.
    pub offset: usize,
    /// Line (1-based), if source was available.
    pub line: usize,
    /// Column (1-based).
    pub column: usize,
    /// Message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            offset: e.offset,
            line: 0,
            column: 0,
            message: e.message,
        }
    }
}

/// Parses a standalone expression from source text.
pub fn parse_expr_str(source: &str) -> Result<ExprAst, ParseError> {
    let tokens = crate::lexer::lex(source).map_err(ParseError::from)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        source,
    };
    let e = p.expr()?;
    if p.pos != tokens.len() {
        return Err(p.error_here("trailing input after expression"));
    }
    Ok(e)
}

/// Parses a token stream (the source is used for line/column rendering).
pub fn parse_tokens(tokens: &[Token], source: &str) -> Result<SystemAst, ParseError> {
    let mut p = Parser {
        tokens,
        pos: 0,
        source,
    };
    let sys = p.system()?;
    if p.pos != tokens.len() {
        return Err(p.error_here("trailing input after system block"));
    }
    Ok(sys)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    source: &'a str,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn offset_here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.source.len(), |t| t.offset)
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        let offset = self.offset_here();
        let (line, column) = line_col(self.source, offset);
        ParseError {
            offset,
            line,
            column,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<&TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| &t.kind);
        self.pos += 1;
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, usize), ParseError> {
        let offset = self.offset_here();
        match self.peek() {
            Some(TokenKind::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok((s, offset))
            }
            _ => Err(self.error_here(format!("expected {what}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(TokenKind::Ident(s)) = self.peek() {
            if s == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(s)) if s == kw)
    }

    // ---- grammar ----------------------------------------------------

    fn system(&mut self) -> Result<SystemAst, ParseError> {
        if !self.keyword("system") {
            return Err(self.error_here("expected `system`"));
        }
        let (name, _) = self.ident("system name")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut sys = SystemAst {
            name,
            decls: Vec::new(),
            defines: Vec::new(),
            init: Vec::new(),
            invar: Vec::new(),
            trans: Vec::new(),
            fairness: Vec::new(),
            properties: Vec::new(),
        };
        loop {
            if self.eat(&TokenKind::RBrace) {
                break;
            }
            if self.keyword("var") {
                sys.decls.push(self.decl(false)?);
            } else if self.keyword("param") {
                sys.decls.push(self.decl(true)?);
            } else if self.keyword("init") {
                sys.init.push(self.terminated_expr()?);
            } else if self.keyword("invar") {
                sys.invar.push(self.terminated_expr()?);
            } else if self.keyword("trans") {
                sys.trans.push(self.terminated_expr()?);
            } else if self.keyword("fairness") {
                sys.fairness.push(self.terminated_expr()?);
            } else if self.keyword("define") {
                let offset = self.offset_here();
                let (name, _) = self.ident("definition name")?;
                self.expect(&TokenKind::Eq, "`=`")?;
                let e = self.terminated_expr()?;
                sys.defines.push((name, e, offset));
            } else if self.peek_keyword("invariant")
                || self.peek_keyword("ltl")
                || self.peek_keyword("ctl")
            {
                sys.properties.push(self.property()?);
            } else {
                return Err(self.error_here("expected declaration, constraint, property, or `}`"));
            }
        }
        Ok(sys)
    }

    fn decl(&mut self, frozen: bool) -> Result<DeclAst, ParseError> {
        let (name, offset) = self.ident("variable name")?;
        self.expect(&TokenKind::Colon, "`:`")?;
        let ty = self.type_ast()?;
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(DeclAst {
            name,
            frozen,
            ty,
            offset,
        })
    }

    fn type_ast(&mut self) -> Result<TypeAst, ParseError> {
        if self.keyword("bool") {
            return Ok(TypeAst::Bool);
        }
        if self.keyword("real") {
            return Ok(TypeAst::Real);
        }
        if self.eat(&TokenKind::LBrace) {
            let mut variants = Vec::new();
            loop {
                let (v, _) = self.ident("enum variant")?;
                variants.push(v);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RBrace, "`}`")?;
            return Ok(TypeAst::Enum(variants));
        }
        // Range: int `..` int (either bound may be negative).
        let lo = self.signed_int()?;
        self.expect(&TokenKind::DotDot, "`..`")?;
        let hi = self.signed_int()?;
        Ok(TypeAst::Range(lo, hi))
    }

    fn signed_int(&mut self) -> Result<i64, ParseError> {
        let negative = self.eat(&TokenKind::Minus);
        match self.bump() {
            Some(TokenKind::Int(n)) => Ok(if negative { -n } else { *n }),
            _ => Err(self.error_here("expected integer")),
        }
    }

    fn terminated_expr(&mut self) -> Result<ExprAst, ParseError> {
        let e = self.expr()?;
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(e)
    }

    fn property(&mut self) -> Result<PropertyAst, ParseError> {
        let offset = self.offset_here();
        if self.keyword("invariant") {
            let (name, _) = self.ident("property name")?;
            self.expect(&TokenKind::Colon, "`:`")?;
            let e = self.terminated_expr()?;
            return Ok(PropertyAst {
                name,
                kind: PropertyKind::Invariant(e),
                offset,
            });
        }
        if self.keyword("ltl") {
            let (name, _) = self.ident("property name")?;
            self.expect(&TokenKind::Colon, "`:`")?;
            let f = self.ltl()?;
            self.expect(&TokenKind::Semi, "`;`")?;
            return Ok(PropertyAst {
                name,
                kind: PropertyKind::Ltl(f),
                offset,
            });
        }
        if self.keyword("ctl") {
            let (name, _) = self.ident("property name")?;
            self.expect(&TokenKind::Colon, "`:`")?;
            let f = self.ctl()?;
            self.expect(&TokenKind::Semi, "`;`")?;
            return Ok(PropertyAst {
                name,
                kind: PropertyKind::Ctl(f),
                offset,
            });
        }
        Err(self.error_here("expected property"))
    }

    // ---- state expressions -------------------------------------------

    fn expr(&mut self) -> Result<ExprAst, ParseError> {
        self.iff_expr()
    }

    fn iff_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.implies_expr()?;
        while self.eat(&TokenKind::DArrow) {
            let offset = lhs.offset();
            let rhs = self.implies_expr()?;
            lhs = ExprAst::Bin(BinOp::Iff, Box::new(lhs), Box::new(rhs), offset);
        }
        Ok(lhs)
    }

    fn implies_expr(&mut self) -> Result<ExprAst, ParseError> {
        let lhs = self.or_expr()?;
        if self.eat(&TokenKind::Arrow) {
            let offset = lhs.offset();
            // Right-associative.
            let rhs = self.implies_expr()?;
            return Ok(ExprAst::Bin(
                BinOp::Implies,
                Box::new(lhs),
                Box::new(rhs),
                offset,
            ));
        }
        Ok(lhs)
    }

    fn or_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::Pipe) {
            let offset = lhs.offset();
            let rhs = self.and_expr()?;
            lhs = ExprAst::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs), offset);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::Amp) {
            let offset = lhs.offset();
            let rhs = self.cmp_expr()?;
            lhs = ExprAst::Bin(BinOp::And, Box::new(lhs), Box::new(rhs), offset);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<ExprAst, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(TokenKind::Eq) => Some(BinOp::Eq),
            Some(TokenKind::Ne) => Some(BinOp::Ne),
            Some(TokenKind::Le) => Some(BinOp::Le),
            Some(TokenKind::Lt) => Some(BinOp::Lt),
            Some(TokenKind::Ge) => Some(BinOp::Ge),
            Some(TokenKind::Gt) => Some(BinOp::Gt),
            _ => None,
        };
        if let Some(op) = op {
            let offset = lhs.offset();
            self.pos += 1;
            let rhs = self.add_expr()?;
            return Ok(ExprAst::Bin(op, Box::new(lhs), Box::new(rhs), offset));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            let offset = lhs.offset();
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = ExprAst::Bin(op, Box::new(lhs), Box::new(rhs), offset);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                _ => break,
            };
            let offset = lhs.offset();
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = ExprAst::Bin(op, Box::new(lhs), Box::new(rhs), offset);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<ExprAst, ParseError> {
        if self.eat(&TokenKind::Bang) {
            return Ok(ExprAst::Not(Box::new(self.unary_expr()?)));
        }
        if self.eat(&TokenKind::Minus) {
            return Ok(ExprAst::Neg(Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<ExprAst, ParseError> {
        let offset = self.offset_here();
        match self.peek().cloned() {
            Some(TokenKind::Int(n)) => {
                self.pos += 1;
                Ok(ExprAst::Int(n, offset))
            }
            Some(TokenKind::Decimal(text)) => {
                self.pos += 1;
                // "12.5" -> 125/10, exact.
                let (int_part, frac_part) = text.split_once('.').expect("decimal has a dot");
                let scale = 10i128.pow(frac_part.len() as u32);
                let num: i128 = int_part
                    .parse::<i128>()
                    .map_err(|_| self.error_here("decimal out of range"))?
                    * scale
                    + frac_part
                        .parse::<i128>()
                        .map_err(|_| self.error_here("decimal out of range"))?;
                Ok(ExprAst::Rational(num, scale, offset))
            }
            Some(TokenKind::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            Some(TokenKind::Ident(name)) => {
                self.pos += 1;
                match name.as_str() {
                    "true" => Ok(ExprAst::Bool(true, offset)),
                    "false" => Ok(ExprAst::Bool(false, offset)),
                    "next" => {
                        self.expect(&TokenKind::LParen, "`(` after next")?;
                        let (var, _) = self.ident("variable in next()")?;
                        self.expect(&TokenKind::RParen, "`)`")?;
                        Ok(ExprAst::Next(var, offset))
                    }
                    "count" => {
                        self.expect(&TokenKind::LParen, "`(` after count")?;
                        let mut items = Vec::new();
                        if !self.eat(&TokenKind::RParen) {
                            loop {
                                items.push(self.expr()?);
                                if !self.eat(&TokenKind::Comma) {
                                    break;
                                }
                            }
                            self.expect(&TokenKind::RParen, "`)`")?;
                        }
                        Ok(ExprAst::Count(items))
                    }
                    "if" => {
                        let c = self.expr()?;
                        if !self.keyword("then") {
                            return Err(self.error_here("expected `then`"));
                        }
                        let t = self.expr()?;
                        if !self.keyword("else") {
                            return Err(self.error_here("expected `else`"));
                        }
                        let e = self.expr()?;
                        Ok(ExprAst::Ite(Box::new(c), Box::new(t), Box::new(e)))
                    }
                    _ => Ok(ExprAst::Ident(name, offset)),
                }
            }
            _ => Err(self.error_here("expected expression")),
        }
    }

    // ---- LTL ----------------------------------------------------------

    fn ltl(&mut self) -> Result<LtlAst, ParseError> {
        self.ltl_iff()
    }

    fn ltl_iff(&mut self) -> Result<LtlAst, ParseError> {
        let mut lhs = self.ltl_implies()?;
        while self.eat(&TokenKind::DArrow) {
            let rhs = self.ltl_implies()?;
            lhs = LtlAst::Bin(BinOp::Iff, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn ltl_implies(&mut self) -> Result<LtlAst, ParseError> {
        let lhs = self.ltl_until()?;
        if self.eat(&TokenKind::Arrow) {
            let rhs = self.ltl_implies()?;
            return Ok(LtlAst::Bin(BinOp::Implies, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn ltl_until(&mut self) -> Result<LtlAst, ParseError> {
        let mut lhs = self.ltl_or()?;
        loop {
            if self.keyword("U") {
                let rhs = self.ltl_or()?;
                lhs = LtlAst::Until(Box::new(lhs), Box::new(rhs));
            } else if self.keyword("R") {
                let rhs = self.ltl_or()?;
                lhs = LtlAst::Release(Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn ltl_or(&mut self) -> Result<LtlAst, ParseError> {
        let mut lhs = self.ltl_and()?;
        while self.eat(&TokenKind::Pipe) {
            let rhs = self.ltl_and()?;
            lhs = LtlAst::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn ltl_and(&mut self) -> Result<LtlAst, ParseError> {
        let mut lhs = self.ltl_unary()?;
        while self.eat(&TokenKind::Amp) {
            let rhs = self.ltl_unary()?;
            lhs = LtlAst::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn ltl_unary(&mut self) -> Result<LtlAst, ParseError> {
        if self.eat(&TokenKind::Bang) {
            return Ok(LtlAst::Not(Box::new(self.ltl_unary()?)));
        }
        if self.keyword("G") {
            return Ok(LtlAst::Globally(Box::new(self.ltl_unary()?)));
        }
        if self.keyword("F") {
            return Ok(LtlAst::Finally(Box::new(self.ltl_unary()?)));
        }
        if self.keyword("X") {
            return Ok(LtlAst::Next(Box::new(self.ltl_unary()?)));
        }
        if self.peek() == Some(&TokenKind::LParen) {
            // Could be a parenthesized LTL formula or a state expression;
            // parse as LTL (state expressions embed via atoms anyway).
            self.pos += 1;
            let f = self.ltl()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok(f);
        }
        // Fall back to a state-expression atom.
        let e = self.cmp_expr()?;
        Ok(LtlAst::Atom(e))
    }

    // ---- CTL ----------------------------------------------------------

    fn ctl(&mut self) -> Result<CtlAst, ParseError> {
        self.ctl_iff()
    }

    fn ctl_iff(&mut self) -> Result<CtlAst, ParseError> {
        let mut lhs = self.ctl_implies()?;
        while self.eat(&TokenKind::DArrow) {
            let rhs = self.ctl_implies()?;
            lhs = CtlAst::Bin(BinOp::Iff, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn ctl_implies(&mut self) -> Result<CtlAst, ParseError> {
        let lhs = self.ctl_or()?;
        if self.eat(&TokenKind::Arrow) {
            let rhs = self.ctl_implies()?;
            return Ok(CtlAst::Bin(BinOp::Implies, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn ctl_or(&mut self) -> Result<CtlAst, ParseError> {
        let mut lhs = self.ctl_and()?;
        while self.eat(&TokenKind::Pipe) {
            let rhs = self.ctl_and()?;
            lhs = CtlAst::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn ctl_and(&mut self) -> Result<CtlAst, ParseError> {
        let mut lhs = self.ctl_unary()?;
        while self.eat(&TokenKind::Amp) {
            let rhs = self.ctl_unary()?;
            lhs = CtlAst::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn ctl_unary(&mut self) -> Result<CtlAst, ParseError> {
        if self.eat(&TokenKind::Bang) {
            return Ok(CtlAst::Not(Box::new(self.ctl_unary()?)));
        }
        for (kw, q) in [
            ("EX", CtlQuant::Ex),
            ("EF", CtlQuant::Ef),
            ("EG", CtlQuant::Eg),
            ("AX", CtlQuant::Ax),
            ("AF", CtlQuant::Af),
            ("AG", CtlQuant::Ag),
        ] {
            if self.keyword(kw) {
                return Ok(CtlAst::Unary(q, Box::new(self.ctl_unary()?)));
            }
        }
        for (kw, exists) in [("E", true), ("A", false)] {
            if self.peek_keyword(kw)
                && self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::LBracket)
            {
                self.pos += 2;
                let lhs = self.ctl()?;
                if !self.keyword("U") {
                    return Err(self.error_here("expected `U` in E[.. U ..]"));
                }
                let rhs = self.ctl()?;
                self.expect(&TokenKind::RBracket, "`]`")?;
                return Ok(CtlAst::Until(exists, Box::new(lhs), Box::new(rhs)));
            }
        }
        if self.peek() == Some(&TokenKind::LParen) {
            self.pos += 1;
            let f = self.ctl()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok(f);
        }
        let e = self.cmp_expr()?;
        Ok(CtlAst::Atom(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Result<SystemAst, ParseError> {
        parse_tokens(&lex(src).unwrap(), src)
    }

    #[test]
    fn minimal_system() {
        let sys = parse("system s { var x : bool; init x; trans next(x) = !x; }").unwrap();
        assert_eq!(sys.name, "s");
        assert_eq!(sys.decls.len(), 1);
        assert_eq!(sys.init.len(), 1);
        assert_eq!(sys.trans.len(), 1);
    }

    #[test]
    fn all_type_forms() {
        let sys = parse(
            "system t { var a : bool; var b : 0..7; var c : -3..3; \
             var d : {red, green}; param p : 1..2; var r : real; }",
        )
        .unwrap();
        assert_eq!(sys.decls.len(), 6);
        assert!(matches!(sys.decls[2].ty, TypeAst::Range(-3, 3)));
        assert!(sys.decls[4].frozen);
        assert!(matches!(sys.decls[5].ty, TypeAst::Real));
    }

    #[test]
    fn precedence_shapes() {
        let sys = parse(
            "system p { var a : bool; var b : bool; var c : bool; \
             init a | b & !c; init a -> b -> c; }",
        )
        .unwrap();
        // a | (b & !c)
        let ExprAst::Bin(BinOp::Or, _, rhs, _) = &sys.init[0] else {
            panic!("expected Or at top: {:?}", sys.init[0])
        };
        assert!(matches!(**rhs, ExprAst::Bin(BinOp::And, _, _, _)));
        // a -> (b -> c)  (right associative)
        let ExprAst::Bin(BinOp::Implies, _, rhs, _) = &sys.init[1] else {
            panic!()
        };
        assert!(matches!(**rhs, ExprAst::Bin(BinOp::Implies, _, _, _)));
    }

    #[test]
    fn properties_parse() {
        let sys = parse(
            "system q { var n : 0..3; \
             invariant cap: n <= 3; \
             ltl live: G (F (n = 0)); \
             ltl u: (n = 0) U (n = 1); \
             ctl reach: EF (n = 3); \
             ctl eu: E [ n <= 1 U n = 2 ]; }",
        )
        .unwrap();
        assert_eq!(sys.properties.len(), 5);
        assert!(matches!(
            sys.properties[1].kind,
            PropertyKind::Ltl(LtlAst::Globally(_))
        ));
        assert!(matches!(
            sys.properties[4].kind,
            PropertyKind::Ctl(CtlAst::Until(true, _, _))
        ));
    }

    #[test]
    fn if_then_else_and_count() {
        let sys = parse(
            "system r { var n : 0..7; var a : bool; var b : bool; \
             trans next(n) = if n < 7 then n + 1 else n; \
             invar count(a, b) <= 1; }",
        )
        .unwrap();
        assert!(matches!(sys.trans[0], ExprAst::Bin(BinOp::Eq, _, _, _)));
        assert_eq!(sys.invar.len(), 1);
    }

    #[test]
    fn errors_have_positions() {
        let e = parse("system s { var x bool; }").unwrap_err();
        assert!(e.line >= 1 && e.column > 1, "{e}");
        assert!(e.message.contains("expected"), "{e}");
        assert!(parse("system s { var x : bool; } extra").is_err());
        assert!(parse("system s { init ; }").is_err());
    }

    #[test]
    fn decimals_parse_to_rationals() {
        let sys = parse("system d { var r : real; init r = 0.45; }").unwrap();
        let ExprAst::Bin(BinOp::Eq, _, rhs, _) = &sys.init[0] else {
            panic!()
        };
        assert!(matches!(**rhs, ExprAst::Rational(45, 100, _)));
    }
}
