//! Surface syntax tree.

/// A parsed `system` block.
#[derive(Clone, Debug)]
pub struct SystemAst {
    /// System name.
    pub name: String,
    /// Variable/parameter declarations, in order.
    pub decls: Vec<DeclAst>,
    /// Named expression definitions (`define name = expr;`), in order.
    pub defines: Vec<(String, ExprAst, usize)>,
    /// `init` constraints.
    pub init: Vec<ExprAst>,
    /// `invar` constraints.
    pub invar: Vec<ExprAst>,
    /// `trans` constraints.
    pub trans: Vec<ExprAst>,
    /// `fairness` constraints.
    pub fairness: Vec<ExprAst>,
    /// Named properties.
    pub properties: Vec<PropertyAst>,
}

/// A declaration: `var`/`param` name and type.
#[derive(Clone, Debug)]
pub struct DeclAst {
    /// Declared name.
    pub name: String,
    /// True for `param` (frozen), false for `var`.
    pub frozen: bool,
    /// Declared type.
    pub ty: TypeAst,
    /// Source offset (for errors).
    pub offset: usize,
}

/// A surface type.
#[derive(Clone, Debug)]
pub enum TypeAst {
    /// `bool`
    Bool,
    /// `lo..hi`
    Range(i64, i64),
    /// `{a, b, c}`
    Enum(Vec<String>),
    /// `real`
    Real,
}

/// A named property.
#[derive(Clone, Debug)]
pub struct PropertyAst {
    /// Property name.
    pub name: String,
    /// Body.
    pub kind: PropertyKind,
    /// Source offset.
    pub offset: usize,
}

/// Property body kinds.
#[derive(Clone, Debug)]
pub enum PropertyKind {
    /// `invariant name: expr;` — sugar for `ltl name: G (expr)`.
    Invariant(ExprAst),
    /// `ltl name: formula;`
    Ltl(LtlAst),
    /// `ctl name: formula;`
    Ctl(CtlAst),
}

/// Surface expressions (state predicates and arithmetic).
#[derive(Clone, Debug)]
pub enum ExprAst {
    /// Integer literal.
    Int(i64, usize),
    /// Rational literal from a decimal or fraction.
    Rational(i128, i128, usize),
    /// `true` / `false`.
    Bool(bool, usize),
    /// Identifier (variable or enum variant; resolved by the compiler).
    Ident(String, usize),
    /// `next(x)`.
    Next(String, usize),
    /// Unary.
    Not(Box<ExprAst>),
    /// Arithmetic negation.
    Neg(Box<ExprAst>),
    /// Binary operation.
    Bin(BinOp, Box<ExprAst>, Box<ExprAst>, usize),
    /// `if c then a else b`.
    Ite(Box<ExprAst>, Box<ExprAst>, Box<ExprAst>),
    /// `count(e1, …, en)`.
    Count(Vec<ExprAst>),
}

impl ExprAst {
    /// Source offset of the expression head (best effort).
    pub fn offset(&self) -> usize {
        match self {
            ExprAst::Int(_, o)
            | ExprAst::Rational(_, _, o)
            | ExprAst::Bool(_, o)
            | ExprAst::Ident(_, o)
            | ExprAst::Next(_, o)
            | ExprAst::Bin(_, _, _, o) => *o,
            ExprAst::Not(e) | ExprAst::Neg(e) => e.offset(),
            ExprAst::Ite(c, _, _) => c.offset(),
            ExprAst::Count(es) => es.first().map_or(0, ExprAst::offset),
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `&`
    And,
    /// `|`
    Or,
    /// `->`
    Implies,
    /// `<->`
    Iff,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*` (at least one side must be a constant — linear arithmetic).
    Mul,
    /// `/` (divisor must be a constant).
    Div,
}

/// LTL surface formulas.
#[derive(Clone, Debug)]
pub enum LtlAst {
    /// An embedded state predicate.
    Atom(ExprAst),
    /// `!f`
    Not(Box<LtlAst>),
    /// `f & g`, `f | g`, `f -> g`, `f <-> g`
    Bin(BinOp, Box<LtlAst>, Box<LtlAst>),
    /// `G f`
    Globally(Box<LtlAst>),
    /// `F f`
    Finally(Box<LtlAst>),
    /// `X f`
    Next(Box<LtlAst>),
    /// `f U g`
    Until(Box<LtlAst>, Box<LtlAst>),
    /// `f R g`
    Release(Box<LtlAst>, Box<LtlAst>),
}

/// CTL surface formulas.
#[derive(Clone, Debug)]
pub enum CtlAst {
    /// An embedded state predicate.
    Atom(ExprAst),
    /// `!f`
    Not(Box<CtlAst>),
    /// Boolean connective.
    Bin(BinOp, Box<CtlAst>, Box<CtlAst>),
    /// `EX f`, `EF f`, `EG f`, `AX f`, `AF f`, `AG f`
    Unary(CtlQuant, Box<CtlAst>),
    /// `E [f U g]` / `A [f U g]`
    Until(bool, Box<CtlAst>, Box<CtlAst>),
}

/// CTL unary quantifier-operator pairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtlQuant {
    /// `EX`
    Ex,
    /// `EF`
    Ef,
    /// `EG`
    Eg,
    /// `AX`
    Ax,
    /// `AF`
    Af,
    /// `AG`
    Ag,
}
