//! Property-based invariants of the cluster simulator under random
//! cluster shapes and workloads.
//!
//! Compiled only with `--features proptest`: the offline build container
//! cannot fetch the proptest dev-dependency, so it has been removed from
//! Cargo.toml — restore it there before enabling the feature.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use verdict_ksim::workload::{WorkloadGen, WorkloadSpec};
use verdict_ksim::{ClusterSpec, DeschedulerPolicy, NodeSpec, PodPhase, Simulation};

fn cluster(workers: usize, capacity: u32, descheduler: bool) -> ClusterSpec {
    let mut spec = ClusterSpec::new();
    spec.nodes = (0..workers)
        .map(|i| NodeSpec::worker(&format!("w{i}"), capacity))
        .collect();
    if descheduler {
        spec.descheduler_policies = vec![DeschedulerPolicy::LowNodeUtilization {
            evict_above_permille: 800,
        }];
        spec.descheduler_period = 30;
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under arbitrary workloads the scheduler never oversubscribes a
    /// node, running pods always have nodes, and pending pods never have
    /// nodes — at every tick, not just at the end.
    #[test]
    fn structural_invariants_hold_every_tick(
        seed in 0u64..5000,
        workers in 1usize..5,
        capacity in 500u32..4000,
        descheduler in any::<bool>(),
    ) {
        let mut sim = Simulation::new(cluster(workers, capacity, descheduler));
        let mut gen = WorkloadGen::new(WorkloadSpec {
            seed,
            mean_interarrival: 20,
            ..WorkloadSpec::default()
        });
        for _ in 0..400 {
            gen.drive(&mut sim);
            sim.step();
            let state = sim.state();
            for n in 0..state.nodes.len() {
                prop_assert!(
                    state.node_usage(n) <= state.nodes[n].cpu_capacity,
                    "node {n} oversubscribed at t={}",
                    sim.now()
                );
            }
            for p in &state.pods {
                match p.phase {
                    PodPhase::Running | PodPhase::Terminating { .. } => {
                        prop_assert!(p.node.is_some(), "{:?}", p.name)
                    }
                    PodPhase::Pending | PodPhase::Terminated => {
                        prop_assert!(p.node.is_none(), "{:?}", p.name)
                    }
                }
            }
        }
    }

    /// Determinism: two runs with identical spec and seed produce the
    /// same pod set and the same termination count.
    #[test]
    fn runs_are_reproducible(seed in 0u64..5000, workers in 1usize..4) {
        let run = || {
            let mut sim = Simulation::new(cluster(workers, 2000, true));
            let mut gen = WorkloadGen::new(WorkloadSpec {
                seed,
                ..WorkloadSpec::default()
            });
            for _ in 0..300 {
                gen.drive(&mut sim);
                sim.step();
            }
            let names: Vec<String> =
                sim.state().pods.iter().map(|p| p.name.clone()).collect();
            let phases: Vec<String> =
                sim.state().pods.iter().map(|p| format!("{:?}", p.phase)).collect();
            (names, phases)
        };
        prop_assert_eq!(run(), run());
    }
}
