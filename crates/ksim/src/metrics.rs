//! Time-series capture: the data behind Fig. 2.

use crate::controllers::ClusterState;
use crate::types::PodPhase;

/// Collected samples (one per tick).
#[derive(Clone, Debug)]
pub struct Metrics {
    node_names: Vec<String>,
    /// Per tick: `(time, pod name, node index)` for every running pod.
    samples: Vec<(u64, String, usize)>,
    /// Per tick: node utilization per-mille.
    utilization: Vec<(u64, Vec<u32>)>,
    /// Cumulative pod terminations observed.
    terminations: Vec<(u64, usize)>,
}

impl Metrics {
    pub(crate) fn new(node_names: Vec<String>) -> Metrics {
        Metrics {
            node_names,
            samples: Vec::new(),
            utilization: Vec::new(),
            terminations: Vec::new(),
        }
    }

    pub(crate) fn sample(&mut self, time: u64, state: &ClusterState) {
        for p in &state.pods {
            if p.phase == PodPhase::Running {
                if let Some(n) = p.node {
                    self.samples.push((time, p.name.clone(), n));
                }
            }
        }
        let util = (0..state.nodes.len())
            .map(|n| state.node_utilization_permille(n))
            .collect();
        self.utilization.push((time, util));
        let dead = state
            .pods
            .iter()
            .filter(|p| p.phase == PodPhase::Terminated)
            .count();
        self.terminations.push((time, dead));
    }

    /// Node names (indexable by the node indices in samples).
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// The placement-change series for pods whose name starts with
    /// `pod_prefix`: one `(time, node name)` entry per (re)placement —
    /// exactly the series Fig. 2 plots (worker index over time).
    pub fn placement_changes(&self, pod_prefix: &str) -> Vec<(u64, String)> {
        let mut out: Vec<(u64, String)> = Vec::new();
        let mut last: Option<usize> = None;
        let mut last_seen: Option<u64> = None;
        for &(t, ref name, node) in &self.samples {
            if !name.starts_with(pod_prefix) {
                continue;
            }
            // A gap in running samples or a node change is a new placement.
            let gap = last_seen.is_some_and(|ls| t > ls + 1);
            if last != Some(node) || gap {
                out.push((t, self.node_names[node].clone()));
                last = Some(node);
            }
            last_seen = Some(t);
        }
        out
    }

    /// The full `(time, node name)` residency series for a pod prefix
    /// (one entry per tick the pod runs) — used to print the Fig. 2 plot.
    pub fn residency_series(&self, pod_prefix: &str) -> Vec<(u64, String)> {
        self.samples
            .iter()
            .filter(|(_, name, _)| name.starts_with(pod_prefix))
            .map(|&(t, _, node)| (t, self.node_names[node].clone()))
            .collect()
    }

    /// Node utilization (per-mille) time series.
    pub fn utilization_series(&self) -> &[(u64, Vec<u32>)] {
        &self.utilization
    }

    /// Total pod terminations at the end of the run.
    pub fn termination_count(&self) -> usize {
        self.terminations.last().map_or(0, |&(_, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DeploymentSpec, NodeSpec, Pod};

    fn tiny_state() -> ClusterState {
        ClusterState {
            nodes: vec![NodeSpec::worker("w1", 1000), NodeSpec::worker("w2", 1000)],
            deployments: vec![DeploymentSpec::new("app", 1, 500)],
            pods: vec![Pod {
                name: "app-0".to_string(),
                deployment: 0,
                cpu_request: 500,
                phase: PodPhase::Running,
                node: Some(0),
                created_at: 0,
                generation: 0,
                tolerations: vec![],
            }],
            ordinals: vec![1],
        }
    }

    #[test]
    fn placement_changes_detect_moves_and_gaps() {
        let mut m = Metrics::new(vec!["w1".to_string(), "w2".to_string()]);
        let mut s = tiny_state();
        m.sample(0, &s);
        m.sample(1, &s);
        // Move the pod.
        s.pods[0].node = Some(1);
        m.sample(2, &s);
        // Gap (evicted at t=3), then back on w1.
        s.pods[0].phase = PodPhase::Terminated;
        m.sample(3, &s);
        s.pods[0].phase = PodPhase::Running;
        s.pods[0].node = Some(0);
        m.sample(4, &s);
        let moves = m.placement_changes("app-");
        assert_eq!(
            moves,
            vec![
                (0, "w1".to_string()),
                (2, "w2".to_string()),
                (4, "w1".to_string())
            ]
        );
        assert_eq!(m.termination_count(), 0, "terminated pod revived");
    }

    #[test]
    fn utilization_tracks_load() {
        let mut m = Metrics::new(vec!["w1".to_string(), "w2".to_string()]);
        let s = tiny_state();
        m.sample(0, &s);
        assert_eq!(m.utilization_series()[0].1, vec![500, 0]);
    }
}
