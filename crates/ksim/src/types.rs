//! Core cluster-state types.

/// CPU is measured in millicores (1000 = one core), following Kubernetes.
pub type Milli = u32;

/// A node definition.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// Node name.
    pub name: String,
    /// Allocatable CPU.
    pub cpu_capacity: Milli,
    /// Taint keys on the node (pods need a matching toleration).
    pub taints: Vec<String>,
    /// True for control-plane nodes: they never accept workload pods.
    pub master: bool,
}

impl NodeSpec {
    /// A worker node with the given capacity and no taints.
    pub fn worker(name: &str, cpu_capacity: Milli) -> NodeSpec {
        NodeSpec {
            name: name.to_string(),
            cpu_capacity,
            taints: Vec::new(),
            master: false,
        }
    }

    /// A control-plane node (never schedulable for workloads).
    pub fn master(name: &str, cpu_capacity: Milli) -> NodeSpec {
        NodeSpec {
            name: name.to_string(),
            cpu_capacity,
            taints: Vec::new(),
            master: true,
        }
    }

    /// Adds a taint key.
    pub fn tainted(mut self, key: &str) -> NodeSpec {
        self.taints.push(key.to_string());
        self
    }
}

/// Pod lifecycle phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PodPhase {
    /// Created, not yet bound to a node.
    Pending,
    /// Bound and running.
    Running,
    /// Evicted/deleted but still shutting down on its node: the
    /// replacement is already being created, yet the pod's resources are
    /// still reserved (this overlap is what makes the Fig. 2 scheduler
    /// pick the *other* worker).
    Terminating {
        /// Tick at which shutdown completes.
        until: u64,
    },
    /// Terminated (shutdown finished); kept for bookkeeping.
    Terminated,
}

/// A live pod.
#[derive(Clone, Debug)]
pub struct Pod {
    /// Unique name, `<deployment>-<ordinal>`.
    pub name: String,
    /// Owning deployment index.
    pub deployment: usize,
    /// CPU request.
    pub cpu_request: Milli,
    /// Phase.
    pub phase: PodPhase,
    /// Node index while `Running`.
    pub node: Option<usize>,
    /// Tick of creation.
    pub created_at: u64,
    /// Template generation (for rolling updates: pods of an old
    /// generation are replaced).
    pub generation: u32,
    /// Toleration keys.
    pub tolerations: Vec<String>,
}

/// Update strategy of a deployment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RolloutStrategy {
    /// No automated rollout.
    None,
    /// Rolling update with the given `maxSurge` (extra pods allowed above
    /// the expected count during the rollout).
    RollingUpdate {
        /// Extra pods allowed beyond the expected replica count.
        max_surge: u32,
    },
}

/// A deployment (and its optional autoscaler).
#[derive(Clone, Debug)]
pub struct DeploymentSpec {
    /// Deployment name.
    pub name: String,
    /// Desired ("expected") replica count.
    pub replicas: u32,
    /// Per-pod CPU request.
    pub cpu_request: Milli,
    /// Toleration keys pods carry.
    pub tolerations: Vec<String>,
    /// Update strategy.
    pub strategy: RolloutStrategy,
    /// Template generation; bump to trigger a rolling update.
    pub generation: u32,
}

impl DeploymentSpec {
    /// A plain deployment.
    pub fn new(name: &str, replicas: u32, cpu_request: Milli) -> DeploymentSpec {
        DeploymentSpec {
            name: name.to_string(),
            replicas,
            cpu_request,
            tolerations: Vec::new(),
            strategy: RolloutStrategy::None,
            generation: 0,
        }
    }
}

/// Descheduler strategy (a cronjob in the paper's experiment).
#[derive(Clone, Debug)]
pub enum DeschedulerPolicy {
    /// Evict pods from nodes whose CPU utilization exceeds the threshold
    /// (per-mille of capacity): the paper's `LowNodeUtilization` with the
    /// eviction side only.
    LowNodeUtilization {
        /// Eviction threshold, per-mille of node capacity (450 = 45%).
        evict_above_permille: u32,
    },
    /// Evict duplicates: more than one pod of the same deployment on a
    /// node.
    RemoveDuplicates,
}

/// A PodDisruptionBudget: voluntary disruptions (drains, descheduling)
/// must leave at least `min_available` live pods of the deployment.
#[derive(Clone, Copy, Debug)]
pub struct PodDisruptionBudget {
    /// Deployment index the budget protects.
    pub deployment: usize,
    /// Minimum live pods that must survive any voluntary eviction.
    pub min_available: u32,
}

/// Phase of a progressive canary rollout.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CanaryPhase {
    /// The canary pod is live and traffic is ramping onto it.
    Baking,
    /// The new generation was promoted fleet-wide.
    Promoted,
    /// The canary was rolled back (bad config detected in time).
    RolledBack,
}

/// State of a progressive canary rollout driven by
/// [`crate::controllers::canary_rollout`].
#[derive(Clone, Debug)]
pub struct CanaryState {
    /// Deployment under rollout.
    pub deployment: usize,
    /// Tick the rollout started.
    pub started_at: u64,
    /// Bake duration: promotion fires once this many ticks elapsed.
    pub bake_ticks: u64,
    /// Ticks of exposure before a bad config becomes observable.
    pub detect_after: u64,
    /// Whether the new config is actually bad (ground truth the
    /// detection signal reveals after `detect_after` ticks).
    pub bad: bool,
    /// Current phase.
    pub phase: CanaryPhase,
    /// Service-mesh traffic share currently routed to the canary, in
    /// percent.
    pub weight_pct: u32,
}

impl CanaryState {
    /// A fresh bake starting at `now`.
    pub fn start(
        deployment: usize,
        now: u64,
        bake_ticks: u64,
        detect_after: u64,
        bad: bool,
    ) -> CanaryState {
        CanaryState {
            deployment,
            started_at: now,
            bake_ticks,
            detect_after,
            bad,
            phase: CanaryPhase::Baking,
            weight_pct: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_builders() {
        let n = NodeSpec::worker("w1", 1000).tainted("gpu");
        assert_eq!(n.taints, vec!["gpu".to_string()]);
        assert!(!n.master);
        assert!(NodeSpec::master("m1", 2000).master);
    }

    #[test]
    fn deployment_defaults() {
        let d = DeploymentSpec::new("app", 2, 500);
        assert_eq!(d.replicas, 2);
        assert_eq!(d.strategy, RolloutStrategy::None);
        assert_eq!(d.generation, 0);
    }
}
