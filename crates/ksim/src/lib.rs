//! A deterministic discrete-event Kubernetes cluster simulator.
//!
//! This crate is the substrate for reproducing the paper's §3.3 cluster
//! experiment (Fig. 2): the original used a 6-VM Kubernetes cluster
//! (2 masters, 3 workers, 1 load balancer); we simulate the control-plane
//! behavior that matters — the scheduler, the descheduler cronjob, the
//! deployment controller, the horizontal pod autoscaler, the
//! rolling-update controller, and the taint manager — against a cluster
//! state of nodes and pods, on a 1-second-tick clock.
//!
//! Determinism is a design rule (same spec → same trace → same figure):
//! all tie-breaks are by index, controllers run in a fixed order at fixed
//! periods, and the optional workload generator takes an explicit seed.
//!
//! ```
//! use verdict_ksim::{ClusterSpec, DeschedulerPolicy};
//!
//! // The paper's Fig. 2 setup: 3 workers, one CPU-heavy pod, eviction
//! // threshold below the pod's request.
//! let spec = ClusterSpec::figure2();
//! let metrics = spec.run(30 * 60);
//! // Each eviction replaces the pod (app-0, app-1, …); match by prefix.
//! let moves = metrics.placement_changes("app-");
//! assert!(moves.len() > 5, "the pod must keep moving");
//! ```

pub mod controllers;
pub mod engine;
pub mod metrics;
pub mod types;
pub mod workload;

pub use engine::{ClusterSpec, Simulation};
pub use metrics::Metrics;
pub use types::{
    CanaryPhase, CanaryState, DeploymentSpec, DeschedulerPolicy, NodeSpec, PodDisruptionBudget,
    PodPhase, RolloutStrategy,
};
pub use workload::{WorkloadGen, WorkloadSpec};
