//! The control loops.
//!
//! Each controller is a pure function over the mutable cluster state,
//! invoked by the engine at its configured period in a fixed order
//! (deployment controller → HPA → rolling update → scheduler →
//! descheduler → taint manager), one tick at a time. The ordering is part
//! of the deterministic contract.

use crate::types::{
    CanaryPhase, CanaryState, DeschedulerPolicy, Pod, PodDisruptionBudget, PodPhase,
    RolloutStrategy,
};

/// Shared mutable view passed to controllers.
pub struct ClusterState {
    /// Node definitions.
    pub nodes: Vec<crate::types::NodeSpec>,
    /// Deployment definitions (mutable: HPA edits `replicas`).
    pub deployments: Vec<crate::types::DeploymentSpec>,
    /// All pods ever created (terminated pods stay for bookkeeping).
    pub pods: Vec<Pod>,
    /// Monotonic pod-name ordinals per deployment.
    pub ordinals: Vec<u32>,
}

impl ClusterState {
    /// CPU requested by pods occupying a node (running or still
    /// terminating — terminating pods keep their reservation).
    pub fn node_usage(&self, node: usize) -> u32 {
        self.pods
            .iter()
            .filter(|p| {
                p.node == Some(node)
                    && matches!(p.phase, PodPhase::Running | PodPhase::Terminating { .. })
            })
            .map(|p| p.cpu_request)
            .sum()
    }

    /// Completes shutdown of terminating pods whose grace expired.
    pub fn reap_terminating(&mut self, now: u64) {
        for p in &mut self.pods {
            if let PodPhase::Terminating { until } = p.phase {
                if now >= until {
                    p.phase = PodPhase::Terminated;
                    p.node = None;
                }
            }
        }
    }

    /// Starts eviction of a pod: running pods get a grace window during
    /// which they still occupy their node; pending pods die instantly.
    pub fn evict(&mut self, pod: usize, now: u64, grace: u64) {
        match self.pods[pod].phase {
            PodPhase::Running => {
                self.pods[pod].phase = PodPhase::Terminating { until: now + grace };
            }
            PodPhase::Pending => {
                self.pods[pod].phase = PodPhase::Terminated;
                self.pods[pod].node = None;
            }
            _ => {}
        }
    }

    /// Utilization in per-mille of capacity.
    pub fn node_utilization_permille(&self, node: usize) -> u32 {
        let cap = self.nodes[node].cpu_capacity.max(1);
        self.node_usage(node) * 1000 / cap
    }

    /// Live (non-terminated) pods of a deployment.
    pub fn live_pods(&self, deployment: usize) -> Vec<usize> {
        self.pods
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p.deployment == deployment
                    && matches!(p.phase, PodPhase::Pending | PodPhase::Running)
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Deployment/ReplicaSet controller: create pods up to the expected count
/// and delete excess (newest first, pending before running — the
/// Kubernetes victim preference, simplified).
pub fn deployment_controller(state: &mut ClusterState, now: u64) {
    for d in 0..state.deployments.len() {
        let spec = state.deployments[d].clone();
        let surge_allowance = match spec.strategy {
            RolloutStrategy::RollingUpdate { max_surge } => max_surge,
            RolloutStrategy::None => 0,
        };
        let live = state.live_pods(d);
        let count = live.len() as u32;
        if count < spec.replicas {
            for _ in 0..(spec.replicas - count) {
                let ordinal = state.ordinals[d];
                state.ordinals[d] += 1;
                state.pods.push(Pod {
                    name: format!("{}-{}", spec.name, ordinal),
                    deployment: d,
                    cpu_request: spec.cpu_request,
                    phase: PodPhase::Pending,
                    node: None,
                    created_at: now,
                    generation: spec.generation,
                    tolerations: spec.tolerations.clone(),
                });
            }
        } else if count > spec.replicas + surge_allowance {
            // Scale down: terminate newest pending first, then newest
            // running.
            let mut victims: Vec<usize> = live;
            victims.sort_by_key(|&i| {
                let p = &state.pods[i];
                (
                    u8::from(p.phase == PodPhase::Running),
                    u64::MAX - p.created_at,
                )
            });
            for &v in victims
                .iter()
                .take((count - spec.replicas - surge_allowance) as usize)
            {
                state.evict(v, now, 0);
            }
        }
    }
}

/// Horizontal pod autoscaler. The `buggy` flag reproduces issue #90461:
/// instead of computing demand from utilization, the buggy HPA copies the
/// observed current replica count (including the rollout surge) into the
/// expected count.
pub fn hpa(state: &mut ClusterState, buggy: bool, max_replicas: u32) {
    for d in 0..state.deployments.len() {
        let live = state.live_pods(d).len() as u32;
        if buggy {
            let current = live.max(1).min(max_replicas);
            if current > state.deployments[d].replicas {
                state.deployments[d].replicas = current;
            }
        }
        // The non-buggy HPA in this simulator holds replicas steady (no
        // load signal is modeled at pod level); it exists so the buggy
        // variant has a baseline.
    }
}

/// Rolling-update controller: while any live pod has an old generation,
/// create up to `max_surge` new-generation pods above the expected count,
/// and terminate one old pod once a new one runs.
pub fn rolling_update(state: &mut ClusterState, now: u64, grace: u64) {
    for d in 0..state.deployments.len() {
        let spec = state.deployments[d].clone();
        let RolloutStrategy::RollingUpdate { max_surge } = spec.strategy else {
            continue;
        };
        let live = state.live_pods(d);
        let old: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&i| state.pods[i].generation < spec.generation)
            .collect();
        if old.is_empty() {
            continue;
        }
        let total = live.len() as u32;
        // Surge: create new-generation pods beyond expected, bounded.
        if total < spec.replicas + max_surge {
            let ordinal = state.ordinals[d];
            state.ordinals[d] += 1;
            state.pods.push(Pod {
                name: format!("{}-{}", spec.name, ordinal),
                deployment: d,
                cpu_request: spec.cpu_request,
                phase: PodPhase::Pending,
                node: None,
                created_at: now,
                generation: spec.generation,
                tolerations: spec.tolerations.clone(),
            });
        }
        // Replace (maxUnavailable = 0): retire an old pod only once the
        // full expected complement of new-generation pods is running —
        // the conservative rollout the issue report describes. While the
        // (buggy) HPA keeps raising `replicas`, this bar keeps receding
        // and the surge loop continues.
        let new_running = live
            .iter()
            .filter(|&&i| {
                state.pods[i].generation == spec.generation
                    && state.pods[i].phase == PodPhase::Running
            })
            .count() as u32;
        if new_running >= spec.replicas {
            if let Some(&victim) = old.first() {
                state.evict(victim, now, grace);
            }
        }
    }
}

/// Scheduler: binds each pending pod to the feasible node with the lowest
/// requested CPU (least-requested scoring), ties broken by node index.
/// Feasibility: not a master, enough free capacity, taints tolerated.
pub fn scheduler(state: &mut ClusterState) {
    for i in 0..state.pods.len() {
        if state.pods[i].phase != PodPhase::Pending {
            continue;
        }
        let request = state.pods[i].cpu_request;
        let tolerations = state.pods[i].tolerations.clone();
        let mut best: Option<(u32, usize)> = None;
        for n in 0..state.nodes.len() {
            let node = &state.nodes[n];
            if node.master {
                continue;
            }
            if !node.taints.iter().all(|t| tolerations.contains(t)) {
                continue;
            }
            let used = state.node_usage(n);
            if used + request > node.cpu_capacity {
                continue;
            }
            let score = (used, n);
            if best.is_none_or(|b| score < b) {
                best = Some(score);
            }
        }
        if let Some((_, n)) = best {
            state.pods[i].phase = PodPhase::Running;
            state.pods[i].node = Some(n);
        }
    }
}

/// Descheduler cronjob: applies each policy once per invocation.
pub fn descheduler(state: &mut ClusterState, policies: &[DeschedulerPolicy], now: u64, grace: u64) {
    for policy in policies {
        match policy {
            DeschedulerPolicy::LowNodeUtilization {
                evict_above_permille,
            } => {
                for n in 0..state.nodes.len() {
                    if state.node_utilization_permille(n) > *evict_above_permille {
                        // Evict the newest pod on the node (one per tick,
                        // like the real strategy's incremental eviction).
                        let victim = state
                            .pods
                            .iter()
                            .enumerate()
                            .filter(|(_, p)| p.phase == PodPhase::Running && p.node == Some(n))
                            .max_by_key(|(i, p)| (p.created_at, *i))
                            .map(|(i, _)| i);
                        if let Some(v) = victim {
                            state.evict(v, now, grace);
                        }
                    }
                }
            }
            DeschedulerPolicy::RemoveDuplicates => {
                for n in 0..state.nodes.len() {
                    for d in 0..state.deployments.len() {
                        let dups: Vec<usize> = state
                            .pods
                            .iter()
                            .enumerate()
                            .filter(|(_, p)| {
                                p.phase == PodPhase::Running
                                    && p.node == Some(n)
                                    && p.deployment == d
                            })
                            .map(|(i, _)| i)
                            .collect();
                        for &v in dups.iter().skip(1) {
                            state.evict(v, now, grace);
                        }
                    }
                }
            }
        }
    }
}

/// Taint manager: evicts running pods from nodes whose taints they do not
/// tolerate (NoExecute semantics).
pub fn taint_manager(state: &mut ClusterState, now: u64, grace: u64) {
    for i in 0..state.pods.len() {
        let Some(n) = state.pods[i].node else {
            continue;
        };
        if state.pods[i].phase != PodPhase::Running {
            continue;
        }
        let node_taints = state.nodes[n].taints.clone();
        let tolerated = node_taints
            .iter()
            .all(|t| state.pods[i].tolerations.contains(t));
        if !tolerated {
            state.evict(i, now, grace);
        }
    }
}

/// True if evicting one more pod of `deployment` keeps every
/// PodDisruptionBudget satisfied.
pub fn pdb_allows_eviction(
    state: &ClusterState,
    pdbs: &[PodDisruptionBudget],
    deployment: usize,
) -> bool {
    let live = state.live_pods(deployment).len() as u32;
    pdbs.iter()
        .filter(|b| b.deployment == deployment)
        .all(|b| live > b.min_available)
}

/// PodDisruptionBudget-aware node drain: evicts the node's running pods
/// one by one, skipping any eviction that would drop its deployment
/// below a budget's `min_available` (the Kubernetes eviction-API
/// contract). Returns the number of pods actually evicted — a caller
/// seeing fewer than the node hosts knows the drain is blocked.
pub fn drain_node(
    state: &mut ClusterState,
    node: usize,
    pdbs: &[PodDisruptionBudget],
    now: u64,
    grace: u64,
) -> usize {
    let candidates: Vec<usize> = state
        .pods
        .iter()
        .enumerate()
        .filter(|(_, p)| p.phase == PodPhase::Running && p.node == Some(node))
        .map(|(i, _)| i)
        .collect();
    let mut evicted = 0;
    for i in candidates {
        let d = state.pods[i].deployment;
        if pdb_allows_eviction(state, pdbs, d) {
            state.evict(i, now, grace);
            evicted += 1;
        }
    }
    evicted
}

/// Cluster-autoscaler configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterAutoscalerConfig {
    /// Never scale below this many nodes.
    pub min_nodes: usize,
    /// Never scale above this many nodes.
    pub max_nodes: usize,
    /// Allocatable CPU of each provisioned node.
    pub node_capacity: crate::types::Milli,
    /// Scale down when overall worker utilization (per-mille) is below
    /// this and some worker is empty.
    pub scale_down_below_permille: u32,
}

/// Cluster autoscaler: provisions a node when a pending pod fits on no
/// existing one, and deprovisions the newest empty worker when the
/// fleet runs cold. Interacting with a bin-packing descheduler, this is
/// the loop behind the autoscaler-oscillation incident pattern.
pub fn cluster_autoscaler(state: &mut ClusterState, cfg: &ClusterAutoscalerConfig) {
    let workers = state.nodes.iter().filter(|n| !n.master).count();
    // Scale up: an unschedulable pending pod and headroom to grow.
    let unschedulable = state.pods.iter().any(|p| {
        p.phase == PodPhase::Pending
            && !state.nodes.iter().enumerate().any(|(n, node)| {
                !node.master
                    && node.taints.iter().all(|t| p.tolerations.contains(t))
                    && state.node_usage(n) + p.cpu_request <= node.cpu_capacity
            })
    });
    if unschedulable && workers < cfg.max_nodes {
        let name = format!("auto-{}", state.nodes.len());
        state
            .nodes
            .push(crate::types::NodeSpec::worker(&name, cfg.node_capacity));
        return;
    }
    // Scale down: only ever the *last* node (so pod→node indices stay
    // valid), only when it is an empty worker and the fleet is cold.
    if workers <= cfg.min_nodes {
        return;
    }
    let last = state.nodes.len() - 1;
    if state.nodes[last].master || state.node_usage(last) > 0 {
        return;
    }
    let (mut used, mut cap) = (0u64, 0u64);
    for (n, node) in state.nodes.iter().enumerate() {
        if !node.master {
            used += u64::from(state.node_usage(n));
            cap += u64::from(node.cpu_capacity);
        }
    }
    if cap > 0 && used * 1000 / cap < u64::from(cfg.scale_down_below_permille) {
        state.nodes.pop();
    }
}

/// Progressive canary rollout controller with service-mesh traffic
/// shifting: keeps one new-generation canary pod live while baking,
/// ramps mesh weight onto it, rolls back once a bad config becomes
/// observable (`detect_after` ticks of exposure), and promotes the new
/// generation fleet-wide when the bake completes first. The
/// config-canary incident pattern is exactly the race between
/// `detect_after` and `bake_ticks`.
pub fn canary_rollout(state: &mut ClusterState, canary: &mut CanaryState, now: u64, grace: u64) {
    if canary.phase != CanaryPhase::Baking {
        return;
    }
    let d = canary.deployment;
    let spec = state.deployments[d].clone();
    let canary_generation = spec.generation + 1;
    let elapsed = now.saturating_sub(canary.started_at);
    // Bad config observable: roll back, evict the canary, drop traffic.
    if canary.bad && elapsed >= canary.detect_after {
        let victims: Vec<usize> = state
            .pods
            .iter()
            .enumerate()
            .filter(|(_, p)| p.deployment == d && p.generation == canary_generation)
            .map(|(i, _)| i)
            .collect();
        for v in victims {
            state.evict(v, now, grace);
        }
        canary.phase = CanaryPhase::RolledBack;
        canary.weight_pct = 0;
        return;
    }
    // Bake complete: promote the generation fleet-wide; the rolling
    // update controller replaces the remaining old pods.
    if elapsed >= canary.bake_ticks {
        state.deployments[d].generation = canary_generation;
        canary.phase = CanaryPhase::Promoted;
        canary.weight_pct = 100;
        return;
    }
    // Keep exactly one canary pod live.
    let have_canary = state.pods.iter().any(|p| {
        p.deployment == d
            && p.generation == canary_generation
            && matches!(p.phase, PodPhase::Pending | PodPhase::Running)
    });
    if !have_canary {
        let ordinal = state.ordinals[d];
        state.ordinals[d] += 1;
        state.pods.push(Pod {
            name: format!("{}-canary-{}", spec.name, ordinal),
            deployment: d,
            cpu_request: spec.cpu_request,
            phase: PodPhase::Pending,
            node: None,
            created_at: now,
            generation: canary_generation,
            tolerations: spec.tolerations.clone(),
        });
    }
    // Progressive traffic shift: ramp linearly to at most half the
    // traffic while baking.
    canary.weight_pct = (50 * elapsed)
        .checked_div(canary.bake_ticks)
        .map_or(50, |w| w.min(50) as u32);
}

/// Service-mesh routing table for a rollout: traffic share in percent
/// for the (stable, canary) generations.
pub fn mesh_weights(canary: &CanaryState) -> (u32, u32) {
    (100 - canary.weight_pct, canary.weight_pct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DeploymentSpec, NodeSpec};

    fn state(nodes: Vec<NodeSpec>, deployments: Vec<DeploymentSpec>) -> ClusterState {
        let n = deployments.len();
        ClusterState {
            nodes,
            deployments,
            pods: Vec::new(),
            ordinals: vec![0; n],
        }
    }

    #[test]
    fn deployment_controller_maintains_replicas() {
        let mut s = state(
            vec![NodeSpec::worker("w1", 1000)],
            vec![DeploymentSpec::new("app", 3, 100)],
        );
        deployment_controller(&mut s, 0);
        assert_eq!(s.live_pods(0).len(), 3);
        // Terminate one; the controller recreates it.
        s.pods[0].phase = PodPhase::Terminated;
        deployment_controller(&mut s, 1);
        assert_eq!(s.live_pods(0).len(), 3);
        // Scale down.
        s.deployments[0].replicas = 1;
        deployment_controller(&mut s, 2);
        assert_eq!(s.live_pods(0).len(), 1);
    }

    #[test]
    fn scheduler_picks_least_requested() {
        let mut s = state(
            vec![NodeSpec::worker("w1", 1000), NodeSpec::worker("w2", 1000)],
            vec![DeploymentSpec::new("app", 1, 300)],
        );
        deployment_controller(&mut s, 0);
        // Pre-load w1.
        s.pods.push(Pod {
            name: "sys-0".to_string(),
            deployment: 0,
            cpu_request: 400,
            phase: PodPhase::Running,
            node: Some(0),
            created_at: 0,
            generation: 0,
            tolerations: vec![],
        });
        scheduler(&mut s);
        let app = s.pods.iter().find(|p| p.name == "app-0").unwrap();
        assert_eq!(app.node, Some(1), "least-requested picks the empty node");
    }

    #[test]
    fn scheduler_respects_capacity_masters_and_taints() {
        let mut s = state(
            vec![
                NodeSpec::master("m1", 4000),
                NodeSpec::worker("small", 100),
                NodeSpec::worker("gpu", 1000).tainted("gpu"),
            ],
            vec![DeploymentSpec::new("app", 1, 300)],
        );
        deployment_controller(&mut s, 0);
        scheduler(&mut s);
        let app = &s.pods[0];
        assert_eq!(app.phase, PodPhase::Pending, "nowhere feasible: {app:?}");
    }

    #[test]
    fn low_node_utilization_evicts() {
        let mut s = state(
            vec![NodeSpec::worker("w1", 1000)],
            vec![DeploymentSpec::new("app", 1, 500)],
        );
        deployment_controller(&mut s, 0);
        scheduler(&mut s);
        assert_eq!(s.node_utilization_permille(0), 500);
        descheduler(
            &mut s,
            &[DeschedulerPolicy::LowNodeUtilization {
                evict_above_permille: 450,
            }],
            0,
            0,
        );
        assert_eq!(s.live_pods(0).len(), 0, "50% > 45% threshold evicts");
        // Below threshold: no eviction.
        let mut s2 = state(
            vec![NodeSpec::worker("w1", 1000)],
            vec![DeploymentSpec::new("app", 1, 400)],
        );
        deployment_controller(&mut s2, 0);
        scheduler(&mut s2);
        descheduler(
            &mut s2,
            &[DeschedulerPolicy::LowNodeUtilization {
                evict_above_permille: 450,
            }],
            0,
            0,
        );
        assert_eq!(s2.live_pods(0).len(), 1);
    }

    #[test]
    fn remove_duplicates_keeps_one() {
        let mut s = state(
            vec![NodeSpec::worker("w1", 1000)],
            vec![DeploymentSpec::new("app", 2, 100)],
        );
        deployment_controller(&mut s, 0);
        scheduler(&mut s);
        assert_eq!(s.live_pods(0).len(), 2);
        descheduler(&mut s, &[DeschedulerPolicy::RemoveDuplicates], 0, 0);
        assert_eq!(s.live_pods(0).len(), 1);
    }

    #[test]
    fn taint_manager_evicts_intolerant_pods() {
        let mut s = state(
            vec![NodeSpec::worker("w1", 1000)],
            vec![DeploymentSpec::new("app", 1, 100)],
        );
        deployment_controller(&mut s, 0);
        scheduler(&mut s);
        assert_eq!(s.live_pods(0).len(), 1);
        s.nodes[0].taints.push("maintenance".to_string());
        taint_manager(&mut s, 0, 0);
        s.reap_terminating(0);
        assert_eq!(
            s.pods[0].phase,
            PodPhase::Terminated,
            "NoExecute taint evicts"
        );
    }

    #[test]
    fn pdb_blocks_drain_below_min_available() {
        let mut s = state(
            vec![NodeSpec::worker("w1", 1000), NodeSpec::worker("w2", 1000)],
            vec![DeploymentSpec::new("app", 2, 400)],
        );
        deployment_controller(&mut s, 0);
        scheduler(&mut s);
        assert_eq!(s.live_pods(0).len(), 2);
        let pdbs = [PodDisruptionBudget {
            deployment: 0,
            min_available: 2,
        }];
        // Both pods protected: the drain evicts nothing.
        let evicted = drain_node(&mut s, 0, &pdbs, 0, 0);
        assert_eq!(evicted, 0);
        assert_eq!(s.live_pods(0).len(), 2);
        // Budget of 1 lets one pod go per node.
        let pdbs = [PodDisruptionBudget {
            deployment: 0,
            min_available: 1,
        }];
        let node = s.pods[0].node.unwrap();
        assert_eq!(drain_node(&mut s, node, &pdbs, 0, 0), 1);
        assert_eq!(s.live_pods(0).len(), 1);
    }

    #[test]
    fn cluster_autoscaler_grows_and_shrinks() {
        let cfg = ClusterAutoscalerConfig {
            min_nodes: 1,
            max_nodes: 3,
            node_capacity: 1000,
            scale_down_below_permille: 300,
        };
        let mut s = state(
            vec![NodeSpec::worker("w1", 1000)],
            vec![DeploymentSpec::new("app", 2, 800)],
        );
        deployment_controller(&mut s, 0);
        scheduler(&mut s);
        // One pod fits, the second is unschedulable: a node is added.
        assert_eq!(s.live_pods(0).len(), 2);
        assert!(s.pods.iter().any(|p| p.phase == PodPhase::Pending));
        cluster_autoscaler(&mut s, &cfg);
        assert_eq!(s.nodes.len(), 2);
        scheduler(&mut s);
        assert!(s.pods.iter().all(|p| p.phase == PodPhase::Running));
        // Workload shrinks to nothing on the new node and the fleet runs
        // cold: the empty tail node is deprovisioned.
        s.deployments[0].replicas = 0;
        deployment_controller(&mut s, 1);
        s.reap_terminating(1);
        for p in &mut s.pods {
            p.phase = PodPhase::Terminated;
            p.node = None;
        }
        cluster_autoscaler(&mut s, &cfg);
        assert_eq!(s.nodes.len(), 1, "empty tail node removed");
        // Never below min_nodes.
        cluster_autoscaler(&mut s, &cfg);
        assert_eq!(s.nodes.len(), 1);
    }

    #[test]
    fn canary_promotes_when_detection_would_be_late() {
        let mut s = state(
            vec![NodeSpec::worker("w1", 2000)],
            vec![DeploymentSpec::new("app", 1, 100)],
        );
        deployment_controller(&mut s, 0);
        scheduler(&mut s);
        // Bad config, but detection needs 5 ticks and the bake is 3.
        let mut canary = CanaryState::start(0, 0, 3, 5, true);
        for now in 0..4 {
            canary_rollout(&mut s, &mut canary, now, 0);
            scheduler(&mut s);
        }
        assert_eq!(canary.phase, CanaryPhase::Promoted, "bad config shipped");
        assert_eq!(mesh_weights(&canary), (0, 100));
        assert_eq!(s.deployments[0].generation, 1);
    }

    #[test]
    fn canary_rolls_back_when_detection_wins() {
        let mut s = state(
            vec![NodeSpec::worker("w1", 2000)],
            vec![DeploymentSpec::new("app", 1, 100)],
        );
        deployment_controller(&mut s, 0);
        scheduler(&mut s);
        // Detection at 2 ticks beats the 6-tick bake.
        let mut canary = CanaryState::start(0, 0, 6, 2, true);
        for now in 0..4 {
            canary_rollout(&mut s, &mut canary, now, 0);
            scheduler(&mut s);
        }
        assert_eq!(canary.phase, CanaryPhase::RolledBack);
        assert_eq!(mesh_weights(&canary), (100, 0));
        assert_eq!(s.deployments[0].generation, 0, "old config stays");
        assert!(
            !s.pods
                .iter()
                .any(|p| p.generation == 1
                    && matches!(p.phase, PodPhase::Pending | PodPhase::Running)),
            "canary pod evicted"
        );
    }

    #[test]
    fn canary_ramps_mesh_weight_progressively() {
        let mut s = state(
            vec![NodeSpec::worker("w1", 2000)],
            vec![DeploymentSpec::new("app", 1, 100)],
        );
        deployment_controller(&mut s, 0);
        scheduler(&mut s);
        let mut canary = CanaryState::start(0, 0, 10, 100, false);
        let mut last = 0;
        for now in 0..10 {
            canary_rollout(&mut s, &mut canary, now, 0);
            let (stable, shifted) = mesh_weights(&canary);
            assert_eq!(stable + shifted, 100);
            assert!(shifted <= 50, "baking canary never takes majority traffic");
            assert!(shifted >= last, "weight ramp is monotone");
            last = shifted;
        }
    }

    #[test]
    fn buggy_hpa_copies_current_count() {
        let mut s = state(
            vec![NodeSpec::worker("w1", 10000)],
            vec![DeploymentSpec {
                strategy: RolloutStrategy::RollingUpdate { max_surge: 1 },
                generation: 1,
                ..DeploymentSpec::new("app", 1, 100)
            }],
        );
        // One old-generation running pod.
        s.pods.push(Pod {
            name: "app-0".to_string(),
            deployment: 0,
            cpu_request: 100,
            phase: PodPhase::Running,
            node: Some(0),
            created_at: 0,
            generation: 0,
            tolerations: vec![],
        });
        s.ordinals[0] = 1;
        // Rolling update surges to 2; buggy HPA bumps expected to 2; the
        // next surge goes to 3 …
        rolling_update(&mut s, 1, 0);
        scheduler(&mut s);
        assert_eq!(s.live_pods(0).len(), 2);
        hpa(&mut s, true, 100);
        assert_eq!(s.deployments[0].replicas, 2, "bug: expected := current");
    }
}
