//! Seeded random workload generation.
//!
//! Drives a [`Simulation`] with deployments arriving, scaling, and
//! departing over time — the kind of churn under which controller
//! interactions (and the invariants the model checker reasons about)
//! get exercised. Fully deterministic per seed.

use verdict_prng::Prng;

use crate::engine::Simulation;
use crate::types::DeploymentSpec;

/// Workload-shape knobs.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// RNG seed (same seed ⇒ same arrival trace).
    pub seed: u64,
    /// Mean seconds between arrival events (geometric inter-arrivals).
    pub mean_interarrival: u64,
    /// Replica range per arriving deployment.
    pub replicas: (u32, u32),
    /// CPU request range per pod, millicores.
    pub cpu_request: (u32, u32),
    /// Probability that an event rescales an existing deployment instead
    /// of creating a new one (percent).
    pub rescale_percent: u32,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            seed: 42,
            mean_interarrival: 30,
            replicas: (1, 4),
            cpu_request: (50, 400),
            rescale_percent: 30,
        }
    }
}

/// A generator to step alongside a simulation.
pub struct WorkloadGen {
    spec: WorkloadSpec,
    rng: Prng,
    next_event: u64,
    created: usize,
}

impl WorkloadGen {
    /// A generator with its first event scheduled.
    pub fn new(spec: WorkloadSpec) -> WorkloadGen {
        let mut rng = Prng::seed_from_u64(spec.seed);
        let first = 1 + rng.gen_range_u64(0, 2 * spec.mean_interarrival);
        WorkloadGen {
            spec,
            rng,
            next_event: first,
            created: 0,
        }
    }

    /// Number of deployments created so far.
    pub fn created(&self) -> usize {
        self.created
    }

    /// Applies any workload events due at the simulation's current time.
    /// Call once per tick, before `sim.step()`.
    pub fn drive(&mut self, sim: &mut Simulation) {
        while sim.now() >= self.next_event {
            let rescale = self.created > 0 && self.rng.gen_percent(self.spec.rescale_percent);
            if rescale {
                let target = self.rng.gen_index(sim.state().deployments.len());
                let replicas = self
                    .rng
                    .gen_range_u64(self.spec.replicas.0.into(), self.spec.replicas.1.into())
                    as u32;
                sim.scale(target, replicas);
            } else {
                let replicas = self
                    .rng
                    .gen_range_u64(self.spec.replicas.0.into(), self.spec.replicas.1.into())
                    as u32;
                let cpu = self.rng.gen_range_u64(
                    self.spec.cpu_request.0.into(),
                    self.spec.cpu_request.1.into(),
                ) as u32;
                let name = format!("wl{}", self.created);
                sim.add_deployment(DeploymentSpec::new(&name, replicas, cpu));
                self.created += 1;
            }
            let gap = 1 + self.rng.gen_range_u64(0, 2 * self.spec.mean_interarrival);
            self.next_event += gap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ClusterSpec;
    use crate::types::{NodeSpec, PodPhase};

    fn cluster() -> ClusterSpec {
        let mut spec = ClusterSpec::new();
        spec.nodes = (0..4)
            .map(|i| NodeSpec::worker(&format!("w{i}"), 2000))
            .collect();
        spec
    }

    fn run(seed: u64, secs: u64) -> (Simulation, WorkloadGen) {
        let mut sim = Simulation::new(cluster());
        let mut gen = WorkloadGen::new(WorkloadSpec {
            seed,
            ..WorkloadSpec::default()
        });
        for _ in 0..secs {
            gen.drive(&mut sim);
            sim.step();
        }
        (sim, gen)
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, ga) = run(7, 600);
        let (b, gb) = run(7, 600);
        assert_eq!(ga.created(), gb.created());
        assert_eq!(a.state().pods.len(), b.state().pods.len());
        let (c, gc) = run(8, 600);
        // Different seed, different trace (with overwhelming likelihood).
        assert!(gc.created() != ga.created() || c.state().pods.len() != a.state().pods.len());
    }

    #[test]
    fn scheduler_never_oversubscribes_nodes() {
        let (sim, gen) = run(42, 1200);
        assert!(gen.created() >= 10, "workload actually arrived");
        let state = sim.state();
        for n in 0..state.nodes.len() {
            assert!(
                state.node_usage(n) <= state.nodes[n].cpu_capacity,
                "node {n} oversubscribed"
            );
        }
        // Under load some pods may legitimately be Pending, but running
        // pods must all have nodes.
        for p in &state.pods {
            if p.phase == PodPhase::Running {
                assert!(p.node.is_some());
            }
        }
    }

    #[test]
    fn rescaling_converges_to_expected_counts() {
        let (sim, _) = run(11, 2000);
        let state = sim.state();
        for (d, spec) in state.deployments.iter().enumerate() {
            let live = state.live_pods(d).len() as u32;
            // Live count matches expected unless capacity starves it.
            assert!(
                live <= spec.replicas,
                "deployment {d}: live {live} > expected {}",
                spec.replicas
            );
        }
    }
}
