//! The simulation loop and cluster specification.

use crate::controllers::{
    deployment_controller, descheduler, hpa, rolling_update, scheduler, taint_manager, ClusterState,
};
use crate::metrics::Metrics;
use crate::types::{DeploymentSpec, DeschedulerPolicy, NodeSpec, RolloutStrategy};

/// Full specification of a simulated cluster and its controllers.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Nodes.
    pub nodes: Vec<NodeSpec>,
    /// Deployments.
    pub deployments: Vec<DeploymentSpec>,
    /// Descheduler policies (empty = no descheduler).
    pub descheduler_policies: Vec<DeschedulerPolicy>,
    /// Descheduler period in seconds (the paper's cronjob runs every
    /// 2 minutes).
    pub descheduler_period: u64,
    /// Reconcile period of the other controllers, seconds.
    pub control_period: u64,
    /// Enable the buggy HPA of issue #90461.
    pub buggy_hpa: bool,
    /// Pod termination grace period in seconds (evicted pods keep their
    /// node reservation this long).
    pub eviction_grace: u64,
    /// HPA replica ceiling (bounds the runaway for finite runs).
    pub hpa_max_replicas: u32,
}

impl ClusterSpec {
    /// An empty cluster with the paper's periods.
    pub fn new() -> ClusterSpec {
        ClusterSpec {
            nodes: Vec::new(),
            deployments: Vec::new(),
            descheduler_policies: Vec::new(),
            descheduler_period: 120,
            control_period: 1,
            buggy_hpa: false,
            eviction_grace: 10,
            hpa_max_replicas: 64,
        }
    }

    /// The paper's Fig. 2 experiment: 2 masters + 3 workers (and an
    /// external LB VM that plays no role in scheduling), one app pod
    /// requesting 50% CPU, `LowNodeUtilization` evicting above 45%,
    /// descheduler every 2 minutes. Worker 1 carries a 30%-CPU system
    /// pod (the cluster add-ons), so the scheduler's least-requested
    /// scoring alternates between workers 2 and 3.
    pub fn figure2() -> ClusterSpec {
        let mut spec = ClusterSpec::new();
        spec.nodes = vec![
            NodeSpec::master("master1", 2000),
            NodeSpec::master("master2", 2000),
            NodeSpec::worker("worker1", 1000),
            NodeSpec::worker("worker2", 1000),
            NodeSpec::worker("worker3", 1000),
        ];
        // System pod pinning worker1 at 30%: modeled as a deployment the
        // scheduler places first (created at tick 0, before the app).
        spec.deployments = vec![
            DeploymentSpec::new("sysaddon", 1, 300),
            DeploymentSpec::new("app", 1, 500),
        ];
        spec.descheduler_policies = vec![DeschedulerPolicy::LowNodeUtilization {
            evict_above_permille: 450,
        }];
        spec.descheduler_period = 120;
        spec
    }

    /// Runs the simulation for `duration_secs`, returning metrics.
    pub fn run(&self, duration_secs: u64) -> Metrics {
        let mut sim = Simulation::new(self.clone());
        sim.run_for(duration_secs);
        sim.into_metrics()
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec::new()
    }
}

/// A stepping simulation (for callers that want to inspect state or
/// mutate the spec mid-run, e.g. to trigger a rolling update).
pub struct Simulation {
    spec: ClusterSpec,
    state: ClusterState,
    time: u64,
    metrics: Metrics,
}

impl Simulation {
    /// Initializes the cluster (no pods yet; controllers create them).
    pub fn new(spec: ClusterSpec) -> Simulation {
        let state = ClusterState {
            nodes: spec.nodes.clone(),
            deployments: spec.deployments.clone(),
            pods: Vec::new(),
            ordinals: vec![0; spec.deployments.len()],
        };
        let node_names = spec.nodes.iter().map(|n| n.name.clone()).collect();
        Simulation {
            spec,
            state,
            time: 0,
            metrics: Metrics::new(node_names),
        }
    }

    /// Current simulated time (seconds).
    pub fn now(&self) -> u64 {
        self.time
    }

    /// Read access to the cluster state.
    pub fn state(&self) -> &ClusterState {
        &self.state
    }

    /// Bumps a deployment's template generation, starting a rolling
    /// update on the next reconcile.
    pub fn trigger_rollout(&mut self, deployment: usize) {
        self.state.deployments[deployment].generation += 1;
    }

    /// Adds a deployment mid-run (workload arrival); returns its index.
    pub fn add_deployment(&mut self, spec: DeploymentSpec) -> usize {
        self.state.deployments.push(spec);
        self.state.ordinals.push(0);
        self.state.deployments.len() - 1
    }

    /// Scales a deployment's expected replica count.
    pub fn scale(&mut self, deployment: usize, replicas: u32) {
        self.state.deployments[deployment].replicas = replicas;
    }

    /// Sets a deployment's strategy.
    pub fn set_strategy(&mut self, deployment: usize, strategy: RolloutStrategy) {
        self.state.deployments[deployment].strategy = strategy;
    }

    /// Advances one tick (one second), running due controllers in the
    /// fixed order.
    pub fn step(&mut self) {
        let t = self.time;
        let grace = self.spec.eviction_grace;
        self.state.reap_terminating(t);
        if t.is_multiple_of(self.spec.control_period) {
            deployment_controller(&mut self.state, t);
            hpa(
                &mut self.state,
                self.spec.buggy_hpa,
                self.spec.hpa_max_replicas,
            );
            rolling_update(&mut self.state, t, grace);
            scheduler(&mut self.state);
        }
        if !self.spec.descheduler_policies.is_empty()
            && t > 0
            && t.is_multiple_of(self.spec.descheduler_period)
        {
            descheduler(&mut self.state, &self.spec.descheduler_policies, t, grace);
        }
        if t.is_multiple_of(self.spec.control_period) {
            taint_manager(&mut self.state, t, grace);
        }
        self.metrics.sample(t, &self.state);
        self.time += 1;
    }

    /// Runs for the given number of seconds.
    pub fn run_for(&mut self, seconds: u64) {
        for _ in 0..seconds {
            self.step();
        }
    }

    /// Finishes and returns the collected metrics.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_pod_oscillates_between_workers_2_and_3() {
        let spec = ClusterSpec::figure2();
        let metrics = spec.run(30 * 60);
        let moves = metrics.placement_changes("app-");
        // Every 2 minutes the pod is evicted and rescheduled on the other
        // worker: in 30 minutes that is ~14 moves.
        assert!(
            moves.len() >= 10,
            "expected sustained oscillation, got {} moves: {moves:?}",
            moves.len()
        );
        // The pod only ever lands on worker2 / worker3 and alternates.
        let nodes: Vec<&str> = moves.iter().map(|(_, n)| n.as_str()).collect();
        for w in windows2(&nodes) {
            assert_ne!(w.0, w.1, "consecutive placements must alternate");
            assert!(
                ["worker2", "worker3"].contains(&w.0),
                "unexpected node {}",
                w.0
            );
        }
        // The system pod stays put on worker1.
        let sys_moves = metrics.placement_changes("sysaddon-");
        assert_eq!(sys_moves.len(), 1, "{sys_moves:?}");
        assert_eq!(sys_moves[0].1, "worker1");
    }

    fn windows2<'a>(xs: &'a [&'a str]) -> Vec<(&'a str, &'a str)> {
        xs.windows(2).map(|w| (w[0], w[1])).collect()
    }

    #[test]
    fn no_descheduler_means_no_oscillation() {
        let mut spec = ClusterSpec::figure2();
        spec.descheduler_policies.clear();
        let metrics = spec.run(30 * 60);
        let moves = metrics.placement_changes("app-");
        assert_eq!(moves.len(), 1, "placed once, never moved: {moves:?}");
    }

    #[test]
    fn threshold_above_request_is_stable() {
        let mut spec = ClusterSpec::figure2();
        spec.descheduler_policies = vec![DeschedulerPolicy::LowNodeUtilization {
            evict_above_permille: 550, // 55% > 50% request
        }];
        let metrics = spec.run(30 * 60);
        let moves = metrics.placement_changes("app-");
        assert_eq!(moves.len(), 1, "no eviction below threshold: {moves:?}");
    }

    #[test]
    fn determinism_same_spec_same_trace() {
        let a = ClusterSpec::figure2().run(600);
        let b = ClusterSpec::figure2().run(600);
        assert_eq!(a.placement_changes("app-"), b.placement_changes("app-"));
    }

    #[test]
    fn hpa_ruc_runaway_in_simulation() {
        // Issue #90461 end-to-end in the simulator: rolling update with
        // maxSurge=1 + buggy HPA. Replicas climb to the ceiling.
        let mut spec = ClusterSpec::new();
        spec.nodes = vec![NodeSpec::worker("w1", 100_000)];
        spec.deployments = vec![DeploymentSpec {
            strategy: RolloutStrategy::RollingUpdate { max_surge: 1 },
            ..DeploymentSpec::new("app", 1, 100)
        }];
        spec.buggy_hpa = true;
        spec.hpa_max_replicas = 10;
        let mut sim = Simulation::new(spec);
        sim.run_for(3); // settle at 1 replica
        sim.trigger_rollout(0);
        sim.run_for(60);
        let live = sim.state().live_pods(0).len();
        assert!(live >= 10, "replica runaway expected, got {live} live pods");
    }

    #[test]
    fn healthy_hpa_no_runaway() {
        let mut spec = ClusterSpec::new();
        spec.nodes = vec![NodeSpec::worker("w1", 100_000)];
        spec.deployments = vec![DeploymentSpec {
            strategy: RolloutStrategy::RollingUpdate { max_surge: 1 },
            ..DeploymentSpec::new("app", 1, 100)
        }];
        spec.buggy_hpa = false;
        let mut sim = Simulation::new(spec);
        sim.run_for(3);
        sim.trigger_rollout(0);
        sim.run_for(60);
        let live = sim.state().live_pods(0).len();
        assert!(live <= 2, "rollout completes without runaway, got {live}");
    }

    #[test]
    fn remove_duplicates_vs_two_replica_deployment() {
        // §3.3's other oscillation: RemoveDuplicates conflicts with a
        // deployment that wants 2 replicas but only one node exists —
        // the controller recreates what the descheduler removes, forever.
        let mut spec = ClusterSpec::new();
        spec.nodes = vec![NodeSpec::worker("w1", 10_000)];
        spec.deployments = vec![DeploymentSpec::new("app", 2, 100)];
        spec.descheduler_policies = vec![DeschedulerPolicy::RemoveDuplicates];
        spec.descheduler_period = 10;
        let metrics = spec.run(300);
        // Pod churn: terminations keep happening through the whole run.
        let churn = metrics.termination_count();
        assert!(churn >= 25, "sustained churn expected, got {churn}");
    }
}
