//! Property tests: BDD operations agree with truth-table semantics on
//! random formula structures, and canonicalization collapses equivalent
//! functions to identical nodes.
//!
//! Compiled only with `--features proptest`: the offline build container
//! cannot fetch the proptest dev-dependency, so it has been removed from
//! Cargo.toml — restore it there before enabling the feature.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use verdict_bdd::{Bdd, BddManager};

/// A tiny formula AST we can both evaluate directly and build as a BDD.
#[derive(Clone, Debug)]
enum F {
    Var(u32),
    Not(Box<F>),
    And(Box<F>, Box<F>),
    Or(Box<F>, Box<F>),
    Xor(Box<F>, Box<F>),
    Ite(Box<F>, Box<F>, Box<F>),
}

impl F {
    fn eval(&self, a: &[bool]) -> bool {
        match self {
            F::Var(v) => a[*v as usize],
            F::Not(f) => !f.eval(a),
            F::And(f, g) => f.eval(a) && g.eval(a),
            F::Or(f, g) => f.eval(a) || g.eval(a),
            F::Xor(f, g) => f.eval(a) ^ g.eval(a),
            F::Ite(c, t, e) => {
                if c.eval(a) {
                    t.eval(a)
                } else {
                    e.eval(a)
                }
            }
        }
    }

    fn build(&self, m: &mut BddManager) -> Bdd {
        match self {
            F::Var(v) => m.var(*v),
            F::Not(f) => {
                let f = f.build(m);
                m.not(f)
            }
            F::And(f, g) => {
                let (f, g) = (f.build(m), g.build(m));
                m.and(f, g)
            }
            F::Or(f, g) => {
                let (f, g) = (f.build(m), g.build(m));
                m.or(f, g)
            }
            F::Xor(f, g) => {
                let (f, g) = (f.build(m), g.build(m));
                m.xor(f, g)
            }
            F::Ite(c, t, e) => {
                let (c, t, e) = (c.build(m), t.build(m), e.build(m));
                m.ite(c, t, e)
            }
        }
    }
}

fn formula(n: u32, depth: u32) -> BoxedStrategy<F> {
    let leaf = (0..n).prop_map(F::Var);
    leaf.prop_recursive(depth, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| F::Not(Box::new(f))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| F::Ite(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
    .boxed()
}

const N: u32 = 5;

fn manager() -> BddManager {
    let mut m = BddManager::new();
    for _ in 0..N {
        m.new_var();
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bdd_matches_truth_table(f in formula(N, 4)) {
        let mut m = manager();
        let b = f.build(&mut m);
        for bits in 0u32..1 << N {
            let a: Vec<bool> = (0..N).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(m.eval(b, &a), f.eval(&a), "bits {:05b}", bits);
        }
    }

    /// Two structurally different but semantically equal functions must be
    /// the identical node (canonicity).
    #[test]
    fn canonicity(f in formula(N, 3)) {
        let mut m = manager();
        let b = f.build(&mut m);
        // Rebuild via double negation and De Morgan-ish rewrites.
        let nb = m.not(b);
        let b2 = m.not(nb);
        prop_assert_eq!(b, b2);
        // ite(f, true, false) == f
        let b3 = m.ite(b, Bdd::TRUE, Bdd::FALSE);
        prop_assert_eq!(b, b3);
    }

    /// sat_count equals brute-force counting.
    #[test]
    fn sat_count_matches_enumeration(f in formula(N, 3)) {
        let mut m = manager();
        let b = f.build(&mut m);
        let expected = (0u32..1 << N)
            .filter(|bits| {
                let a: Vec<bool> = (0..N).map(|i| bits >> i & 1 == 1).collect();
                f.eval(&a)
            })
            .count() as f64;
        prop_assert_eq!(m.sat_count(b, N), expected);
    }

    /// Existential quantification over x equals the OR of both cofactors.
    #[test]
    fn exists_is_or_of_cofactors(f in formula(N, 3), v in 0u32..N) {
        let mut m = manager();
        let b = f.build(&mut m);
        let vs = m.var_set([v]);
        let e = m.exists(b, vs);
        let c0 = m.restrict(b, v, false);
        let c1 = m.restrict(b, v, true);
        let expect = m.or(c0, c1);
        prop_assert_eq!(e, expect);
    }

    /// Renaming all variables up by N and back is the identity.
    #[test]
    fn rename_round_trip(f in formula(N, 3)) {
        let mut m = manager();
        for _ in 0..N {
            m.new_var(); // targets N..2N
        }
        let b = f.build(&mut m);
        let up: Vec<(u32, u32)> = (0..N).map(|i| (i, i + N)).collect();
        let down: Vec<(u32, u32)> = (0..N).map(|i| (i + N, i)).collect();
        let shifted = m.rename(b, &up);
        let back = m.rename(shifted, &down);
        prop_assert_eq!(b, back);
    }

    /// sat_one returns a satisfying cube whenever the function is not ⊥.
    #[test]
    fn sat_one_is_satisfying(f in formula(N, 3)) {
        let mut m = manager();
        let b = f.build(&mut m);
        match m.sat_one(b) {
            None => prop_assert_eq!(b, Bdd::FALSE),
            Some(cube) => {
                let mut a = vec![false; N as usize];
                for (v, val) in cube {
                    a[v as usize] = val;
                }
                prop_assert!(m.eval(b, &a));
            }
        }
    }
}
