//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! `verdict-bdd` is the symbolic-set substrate for the BDD-based model
//! checking engines in `verdict-mc`: forward reachability, CTL fixpoints
//! and fair-cycle detection all manipulate sets of states as BDDs.
//!
//! Design:
//!
//! * One [`BddManager`] owns all nodes. Nodes are hash-consed in a unique
//!   table, so structural equality is pointer (index) equality and
//!   equivalence checks are O(1).
//! * [`Bdd`] handles are plain `u32` indices (no complement edges — the
//!   classic textbook form keeps invariants simple, one of the design
//!   anti-goals borrowed from smoltcp: no cleverness that costs clarity).
//! * `ite` is the single core operator with a memo cache; and/or/xor/not
//!   are derived from it.
//! * Quantification (`exists`/`forall` over variable cubes), the fused
//!   relational product [`BddManager::and_exists`], and variable
//!   substitution via [`BddManager::rename`] support image computation
//!   for transition systems.
//! * Model counting and cube extraction support counterexample recovery.
//!
//! Variable order is the creation order of [`BddManager::new_var`]; the
//! encoder in `verdict-ts` interleaves current- and next-state bits, which
//! is the standard order for transition relations.
//!
//! ```
//! use verdict_bdd::BddManager;
//! let mut m = BddManager::new();
//! let x = m.new_var();
//! let y = m.new_var();
//! let f = m.and(x, y);
//! let g = m.not(f);
//! let h = m.or(g, f);
//! assert_eq!(h, m.constant(true));
//! assert_eq!(m.sat_count(f, 2), 1.0);
//! ```

use std::collections::HashMap;
use std::fmt;

/// A handle to a BDD node inside a [`BddManager`].
///
/// Handles are only meaningful with the manager that created them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant-false node (index 0 in every manager).
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true node (index 1 in every manager).
    pub const TRUE: Bdd = Bdd(1);

    /// True iff this handle is one of the two constants.
    pub fn is_constant(self) -> bool {
        self.0 <= 1
    }

    /// Raw index (diagnostics only).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bdd::FALSE => write!(f, "⊥"),
            Bdd::TRUE => write!(f, "⊤"),
            Bdd(i) => write!(f, "bdd#{i}"),
        }
    }
}

/// A decision node: branch on `var`, `low` = var false, `high` = var true.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    low: Bdd,
    high: Bdd,
}

/// Memoization key for binary operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct IteKey(Bdd, Bdd, Bdd);

/// The node store and operation caches.
///
/// All operations take `&mut self` because they may allocate nodes and
/// populate caches; the structure is single-threaded by design (the
/// model-checking engines are deterministic sequential fixpoints).
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, Bdd>,
    ite_cache: HashMap<IteKey, Bdd>,
    /// Cache for `and_exists`, keyed by (a, b, cube-id).
    and_exists_cache: HashMap<(Bdd, Bdd, u64), Bdd>,
    /// Interned quantification cubes (sorted variable lists), so caches can
    /// key on a small id instead of a vector.
    cubes: Vec<Vec<u32>>,
    num_vars: u32,
    stats: BddStats,
}

/// Manager statistics, cumulative over the manager's lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct BddStats {
    /// Nodes allocated (excludes the two constant nodes).
    pub nodes_allocated: u64,
    /// `ite` cache lookups.
    pub ite_cache_lookups: u64,
    /// `ite` cache hits.
    pub ite_cache_hits: u64,
    /// Peak live node count (the arena never shrinks, so this tracks the
    /// high-water mark of [`BddManager::node_count`]).
    pub peak_live_nodes: u64,
}

/// A registered set of variables to quantify or rename over.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VarSet(u64);

impl Default for BddManager {
    fn default() -> Self {
        BddManager::new()
    }
}

impl BddManager {
    /// A manager containing only the two constant nodes.
    pub fn new() -> BddManager {
        let sentinel = Node {
            var: u32::MAX,
            low: Bdd::FALSE,
            high: Bdd::FALSE,
        };
        let sentinel_true = Node {
            var: u32::MAX,
            low: Bdd::TRUE,
            high: Bdd::TRUE,
        };
        BddManager {
            // Index 0 = false, 1 = true. The sentinel nodes carry
            // var = u32::MAX so every real variable orders before them.
            nodes: vec![sentinel, sentinel_true],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            and_exists_cache: HashMap::new(),
            cubes: Vec::new(),
            num_vars: 0,
            stats: BddStats::default(),
        }
    }

    /// Number of live nodes (including the two constants).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Cumulative manager statistics.
    pub fn stats(&self) -> BddStats {
        let mut s = self.stats;
        s.peak_live_nodes = s.peak_live_nodes.max(self.nodes.len() as u64);
        s
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// A constant BDD.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    /// Creates the next variable in the order and returns its positive
    /// literal as a BDD.
    pub fn new_var(&mut self) -> Bdd {
        let v = self.num_vars;
        self.num_vars += 1;
        self.mk_node(v, Bdd::FALSE, Bdd::TRUE)
    }

    /// The positive literal of variable `v` (which must already exist).
    pub fn var(&mut self, v: u32) -> Bdd {
        assert!(v < self.num_vars, "unknown BDD variable {v}");
        self.mk_node(v, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negative literal of variable `v`.
    pub fn nvar(&mut self, v: u32) -> Bdd {
        assert!(v < self.num_vars, "unknown BDD variable {v}");
        self.mk_node(v, Bdd::TRUE, Bdd::FALSE)
    }

    fn mk_node(&mut self, var: u32, low: Bdd, high: Bdd) -> Bdd {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&b) = self.unique.get(&node) {
            return b;
        }
        let b = Bdd(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, b);
        self.stats.nodes_allocated += 1;
        b
    }

    #[inline]
    fn node(&self, b: Bdd) -> Node {
        self.nodes[b.0 as usize]
    }

    /// Decomposes a non-constant node into `(var, low, high)`: branch on
    /// `var`, `low` when it is false, `high` when it is true. This is the
    /// read-only introspection hook external checkers use to convert a BDD
    /// back into a formula (e.g. certificate re-checking in `verdict-mc`).
    ///
    /// # Panics
    /// Panics on the constant nodes.
    pub fn node_parts(&self, b: Bdd) -> (u32, Bdd, Bdd) {
        assert!(!b.is_constant(), "node_parts on constant BDD");
        let n = self.node(b);
        (n.var, n.low, n.high)
    }

    /// Top variable of `b` (`u32::MAX` for constants).
    fn top_var(&self, b: Bdd) -> u32 {
        if b.is_constant() {
            u32::MAX
        } else {
            self.node(b).var
        }
    }

    /// Cofactors of `b` with respect to variable `v` (which must be at or
    /// above `b`'s top variable in the order).
    fn cofactors(&self, b: Bdd, v: u32) -> (Bdd, Bdd) {
        if b.is_constant() || self.node(b).var != v {
            (b, b)
        } else {
            let n = self.node(b);
            (n.low, n.high)
        }
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Fault-injection probe at site `bdd.ite` (panic only; node
        // exhaustion is simulated at the mc budget layer). Free when no
        // fault plan is armed.
        verdict_journal::fault::panic_if_armed("bdd.ite");
        // Terminal cases.
        if f == Bdd::TRUE {
            return g;
        }
        if f == Bdd::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Bdd::TRUE && h == Bdd::FALSE {
            return f;
        }
        let key = IteKey(f, g, h);
        self.stats.ite_cache_lookups += 1;
        if let Some(&r) = self.ite_cache.get(&key) {
            self.stats.ite_cache_hits += 1;
            return r;
        }
        let v = self.top_var(f).min(self.top_var(g)).min(self.top_var(h));
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let r = self.mk_node(v, low, high);
        self.ite_cache.insert(key, r);
        r
    }

    /// Negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        self.ite(f, Bdd::FALSE, Bdd::TRUE)
    }

    /// Conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Bdd::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// If-and-only-if.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::TRUE)
    }

    /// Conjunction over an iterator.
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        let mut acc = Bdd::TRUE;
        for b in items {
            acc = self.and(acc, b);
            if acc == Bdd::FALSE {
                break;
            }
        }
        acc
    }

    /// Disjunction over an iterator.
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        let mut acc = Bdd::FALSE;
        for b in items {
            acc = self.or(acc, b);
            if acc == Bdd::TRUE {
                break;
            }
        }
        acc
    }

    /// Registers a set of variables for quantification/renaming. The set is
    /// interned so repeated image computations share caches.
    pub fn var_set<I: IntoIterator<Item = u32>>(&mut self, vars: I) -> VarSet {
        let mut vs: Vec<u32> = vars.into_iter().collect();
        vs.sort_unstable();
        vs.dedup();
        for &v in &vs {
            assert!(v < self.num_vars, "unknown BDD variable {v}");
        }
        if let Some(i) = self.cubes.iter().position(|c| *c == vs) {
            return VarSet(i as u64);
        }
        self.cubes.push(vs);
        VarSet(self.cubes.len() as u64 - 1)
    }

    fn cube_vars(&self, s: VarSet) -> &[u32] {
        &self.cubes[s.0 as usize]
    }

    /// Existential quantification: `∃ vars. f`.
    pub fn exists(&mut self, f: Bdd, vars: VarSet) -> Bdd {
        self.and_exists(f, Bdd::TRUE, vars)
    }

    /// Universal quantification: `∀ vars. f`.
    pub fn forall(&mut self, f: Bdd, vars: VarSet) -> Bdd {
        let nf = self.not(f);
        let e = self.exists(nf, vars);
        self.not(e)
    }

    /// Fused relational product: `∃ vars. (f ∧ g)`.
    ///
    /// This is the workhorse of image computation: conjoining the state set
    /// with the transition relation while quantifying away current-state
    /// variables, without building the full conjunction.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, vars: VarSet) -> Bdd {
        self.and_exists_rec(f, g, vars, 0)
    }

    fn and_exists_rec(&mut self, f: Bdd, g: Bdd, vars: VarSet, from: usize) -> Bdd {
        if f == Bdd::FALSE || g == Bdd::FALSE {
            return Bdd::FALSE;
        }
        let cube = self.cube_vars(vars);
        // Skip cube variables that are below both tops... actually above:
        // advance past cube vars smaller than both top variables.
        let top = self.top_var(f).min(self.top_var(g));
        let mut from = from;
        while from < cube.len() && cube[from] < top {
            from += 1;
        }
        if f == Bdd::TRUE && g == Bdd::TRUE {
            return Bdd::TRUE;
        }
        if from >= cube.len() {
            // No quantified variables remain in scope: plain conjunction.
            return self.and(f, g);
        }
        let key = (f, g, vars.0 << 32 | from as u64);
        if let Some(&r) = self.and_exists_cache.get(&key) {
            return r;
        }
        let cube = self.cube_vars(vars);
        let qvar = cube[from];
        let v = top;
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let r = if v == qvar {
            // Quantify this level: OR of the two cofactor products.
            let low = self.and_exists_rec(f0, g0, vars, from + 1);
            if low == Bdd::TRUE {
                Bdd::TRUE
            } else {
                let high = self.and_exists_rec(f1, g1, vars, from + 1);
                self.or(low, high)
            }
        } else {
            debug_assert!(v < qvar);
            let low = self.and_exists_rec(f0, g0, vars, from);
            let high = self.and_exists_rec(f1, g1, vars, from);
            self.mk_node(v, low, high)
        };
        self.and_exists_cache.insert(key, r);
        r
    }

    /// Renames variables: each `(from, to)` pair substitutes variable
    /// `from` with variable `to`. Pairs must map distinct sources to
    /// distinct targets, and the mapping must be order-preserving
    /// (`from` and `to` lists both strictly increasing), which holds for
    /// the interleaved current↔next encodings used in `verdict-ts`.
    pub fn rename(&mut self, f: Bdd, pairs: &[(u32, u32)]) -> Bdd {
        for w in pairs.windows(2) {
            assert!(
                w[0].0 < w[1].0 && w[0].1 < w[1].1,
                "rename map must be strictly increasing"
            );
        }
        let map: HashMap<u32, u32> = pairs.iter().copied().collect();
        let mut cache: HashMap<Bdd, Bdd> = HashMap::new();
        self.rename_rec(f, &map, &mut cache)
    }

    fn rename_rec(
        &mut self,
        f: Bdd,
        map: &HashMap<u32, u32>,
        cache: &mut HashMap<Bdd, Bdd>,
    ) -> Bdd {
        if f.is_constant() {
            return f;
        }
        if let Some(&r) = cache.get(&f) {
            return r;
        }
        let n = self.node(f);
        let low = self.rename_rec(n.low, map, cache);
        let high = self.rename_rec(n.high, map, cache);
        let var = map.get(&n.var).copied().unwrap_or(n.var);
        // Order preservation guarantees var is still above low/high tops.
        debug_assert!(var < self.top_var(low) && var < self.top_var(high));
        let r = self.mk_node(var, low, high);
        cache.insert(f, r);
        r
    }

    /// Restricts variable `v` to a constant value.
    pub fn restrict(&mut self, f: Bdd, v: u32, value: bool) -> Bdd {
        let lit = if value { self.var(v) } else { self.nvar(v) };
        let conj = self.and(f, lit);
        let vs = self.var_set([v]);
        self.exists(conj, vs)
    }

    /// Number of satisfying assignments of `f` over `total_vars` variables.
    ///
    /// Returned as `f64` (state-space sizes are reported, not enumerated).
    pub fn sat_count(&self, f: Bdd, total_vars: u32) -> f64 {
        assert!(total_vars >= self.num_vars || f.is_constant());
        // cnt(b) = solutions of b over the variables [topv(b), total_vars),
        // where topv(constant) = total_vars.
        let topv = |b: Bdd| self.top_var(b).min(total_vars);
        let mut cache: HashMap<Bdd, f64> = HashMap::new();
        fn go(m: &BddManager, b: Bdd, total: u32, cache: &mut HashMap<Bdd, f64>) -> f64 {
            if b == Bdd::FALSE {
                return 0.0;
            }
            if b == Bdd::TRUE {
                return 1.0;
            }
            if let Some(&c) = cache.get(&b) {
                return c;
            }
            let n = m.node(b);
            let lv = m.top_var(n.low).min(total);
            let hv = m.top_var(n.high).min(total);
            let low = go(m, n.low, total, cache) * ((lv - n.var - 1) as f64).exp2();
            let high = go(m, n.high, total, cache) * ((hv - n.var - 1) as f64).exp2();
            let c = low + high;
            cache.insert(b, c);
            c
        }
        go(self, f, total_vars, &mut cache) * (topv(f) as f64).exp2()
    }

    /// One satisfying assignment of `f` as `(var, value)` pairs for the
    /// variables on the chosen path (unmentioned variables are free).
    /// Returns `None` for the constant false.
    pub fn sat_one(&self, f: Bdd) -> Option<Vec<(u32, bool)>> {
        if f == Bdd::FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while !cur.is_constant() {
            let n = self.node(cur);
            // Deterministically prefer the low edge when viable.
            if n.low != Bdd::FALSE {
                path.push((n.var, false));
                cur = n.low;
            } else {
                path.push((n.var, true));
                cur = n.high;
            }
        }
        Some(path)
    }

    /// Evaluates `f` under a total assignment (indexed by variable).
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_constant() {
            let n = self.node(cur);
            cur = if assignment[n.var as usize] {
                n.high
            } else {
                n.low
            };
        }
        cur == Bdd::TRUE
    }

    /// Number of nodes reachable from `f` (its size).
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(b) = stack.pop() {
            if b.is_constant() || !seen.insert(b) {
                continue;
            }
            let n = self.node(b);
            stack.push(n.low);
            stack.push(n.high);
        }
        seen.len() + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        let m = BddManager::new();
        assert!(Bdd::TRUE.is_constant());
        assert_eq!(m.constant(true), Bdd::TRUE);
        assert_eq!(m.constant(false), Bdd::FALSE);
    }

    #[test]
    fn basic_ops_truth_tables() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        type Case = (&'static str, Bdd, fn(bool, bool) -> bool);
        let cases: Vec<Case> = vec![
            ("and", m.and(x, y), |a, b| a && b),
            ("or", m.or(x, y), |a, b| a || b),
            ("xor", m.xor(x, y), |a, b| a ^ b),
            ("iff", m.iff(x, y), |a, b| a == b),
            ("implies", m.implies(x, y), |a, b| !a || b),
        ];
        for (name, f, spec) in cases {
            for a in [false, true] {
                for b in [false, true] {
                    assert_eq!(m.eval(f, &[a, b]), spec(a, b), "{name}({a},{b})");
                }
            }
        }
    }

    #[test]
    fn hash_consing_gives_canonical_forms() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let f1 = m.and(x, y);
        let f2 = {
            let nx = m.not(x);
            let ny = m.not(y);
            let nf = m.or(nx, ny);
            m.not(nf)
        };
        assert_eq!(f1, f2, "De Morgan forms must be the same node");
        let nf1 = m.not(f1);
        let tautology = m.or(f1, nf1);
        assert_eq!(tautology, Bdd::TRUE);
    }

    #[test]
    fn ite_shannon() {
        let mut m = BddManager::new();
        let c = m.new_var();
        let t = m.new_var();
        let e = m.new_var();
        let f = m.ite(c, t, e);
        for bits in 0..8u8 {
            let a = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let expected = if a[0] { a[1] } else { a[2] };
            assert_eq!(m.eval(f, &a), expected);
        }
    }

    #[test]
    fn exists_forall() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let f = m.and(x, y);
        let vx = m.var_set([0u32]);
        let ex = m.exists(f, vx);
        // ∃x. x∧y == y
        assert_eq!(ex, y);
        let fx = m.forall(f, vx);
        // ∀x. x∧y == false
        assert_eq!(fx, Bdd::FALSE);
        let g = m.or(x, y);
        let fg = m.forall(g, vx);
        // ∀x. x∨y == y
        assert_eq!(fg, y);
    }

    #[test]
    fn and_exists_is_fused_correctly() {
        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..6).map(|_| m.new_var()).collect();
        // f = (x0 ↔ x2) ∧ (x1 ↔ x3), g = x0 ∧ ¬x1
        let a = m.iff(vars[0], vars[2]);
        let b = m.iff(vars[1], vars[3]);
        let f = m.and(a, b);
        let nb1 = m.not(vars[1]);
        let g = m.and(vars[0], nb1);
        let qs = m.var_set([0u32, 1]);
        let fused = m.and_exists(f, g, qs);
        let plain = {
            let c = m.and(f, g);
            m.exists(c, qs)
        };
        assert_eq!(fused, plain);
        // Semantically: x2 ∧ ¬x3
        let nx3 = m.not(vars[3]);
        let expect = m.and(vars[2], nx3);
        assert_eq!(fused, expect);
    }

    #[test]
    fn rename_shifts_variables() {
        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..4).map(|_| m.new_var()).collect();
        let f = m.and(vars[0], vars[1]);
        let g = m.rename(f, &[(0, 2), (1, 3)]);
        let expect = m.and(vars[2], vars[3]);
        assert_eq!(g, expect);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rename_rejects_non_monotone_maps() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let f = m.and(x, y);
        let _ = m.rename(f, &[(0, 1), (1, 0)]);
    }

    #[test]
    fn restrict_cofactors() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let f = m.xor(x, y);
        let f_x1 = m.restrict(f, 0, true);
        let ny = m.not(y);
        assert_eq!(f_x1, ny);
        let f_x0 = m.restrict(f, 0, false);
        assert_eq!(f_x0, y);
    }

    #[test]
    fn sat_count_small() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let z = m.new_var();
        let f = m.and(x, y);
        assert_eq!(m.sat_count(f, 3), 2.0); // z free
        let g = m.or_all([x, y, z]);
        assert_eq!(m.sat_count(g, 3), 7.0);
        assert_eq!(m.sat_count(Bdd::TRUE, 3), 8.0);
        assert_eq!(m.sat_count(Bdd::FALSE, 3), 0.0);
    }

    #[test]
    fn sat_one_satisfies() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let z = m.new_var();
        let nx = m.not(x);
        let f = m.and_all([nx, y, z]);
        let cube = m.sat_one(f).unwrap();
        let mut assignment = vec![false; 3];
        for (v, val) in cube {
            assignment[v as usize] = val;
        }
        assert!(m.eval(f, &assignment));
        assert!(m.sat_one(Bdd::FALSE).is_none());
    }

    #[test]
    fn eval_matches_semantics_exhaustively() {
        // Build a nontrivial function and compare against direct evaluation.
        let mut m = BddManager::new();
        let vs: Vec<Bdd> = (0..5).map(|_| m.new_var()).collect();
        let t1 = m.and(vs[0], vs[1]);
        let t2 = m.xor(vs[2], vs[3]);
        let t3 = m.implies(vs[4], t1);
        let part = m.or(t1, t2);
        let f = m.and(part, t3);
        for bits in 0..32u8 {
            let a: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let spec = {
                let t1 = a[0] && a[1];
                let t2 = a[2] ^ a[3];
                let t3 = !a[4] || t1;
                (t1 || t2) && t3
            };
            assert_eq!(m.eval(f, &a), spec, "bits={bits:05b}");
        }
    }

    #[test]
    fn size_reports_reachable_nodes() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let f = m.and(x, y);
        assert_eq!(m.size(f), 4); // two decision nodes + two constants
        assert_eq!(m.size(Bdd::TRUE), 2);
    }
}
