//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! `verdict-bdd` is the symbolic-set substrate for the BDD-based model
//! checking engines in `verdict-mc`: forward reachability, CTL fixpoints
//! and fair-cycle detection all manipulate sets of states as BDDs.
//!
//! Design:
//!
//! * One [`BddManager`] owns all nodes. Nodes are hash-consed in a unique
//!   table, so structural equality is pointer (index) equality and
//!   equivalence checks are O(1).
//! * [`Bdd`] handles are plain `u32` indices (no complement edges — the
//!   classic textbook form keeps invariants simple, one of the design
//!   anti-goals borrowed from smoltcp: no cleverness that costs clarity).
//! * `ite` is the single core operator with a memo cache; and/or/xor/not
//!   are derived from it.
//! * Quantification (`exists`/`forall` over variable cubes), the fused
//!   relational product [`BddManager::and_exists`], and variable
//!   substitution via [`BddManager::rename`] support image computation
//!   for transition systems.
//! * Model counting and cube extraction support counterexample recovery.
//!
//! # Variable order and reordering
//!
//! Nodes store *variable ids* (stable names, assigned by creation order in
//! [`BddManager::new_var`]); the *position* of a variable in the order is
//! its *level*, held in a `var → level` permutation. All structural
//! decisions — top-variable selection in `ite`, quantification scheduling
//! in `and_exists`, free-variable counting in `sat_count` — compare
//! levels, never ids. [`BddManager::reorder`] installs a new permutation
//! by rebuilding the given roots into a fresh arena (which doubles as
//! garbage collection: unreachable nodes are dropped), and
//! [`BddManager::sift`] searches for a better order by bounded
//! block-sifting. Because the arena is append-only between reorders, a
//! reorder invalidates *every* outstanding handle: callers must re-derive
//! all live roots from the handles `reorder`/`sift` return.
//!
//! # Resource ceilings
//!
//! [`BddManager::set_node_limit`] arms a hard node ceiling enforced inside
//! node construction itself (so one huge `and_exists` cannot blow past the
//! budget before a caller polls). Once the ceiling is hit the manager is
//! *poisoned*: every subsequent operation short-circuits to ⊥ and
//! [`BddManager::limit_exceeded`] reports `true`. Poisoned results are
//! garbage — callers must check `limit_exceeded()` before interpreting
//! any result computed since the limit was armed.
//!
//! [`BddManager::set_deadline`] arms a wall-clock deadline with the same
//! poisoning contract, polled every few thousand allocations inside node
//! construction ([`BddManager::deadline_exceeded`] reports expiry). This
//! is what makes a timeout mean something on models whose *encoding*
//! explodes: the grind is inside a single `and`/`and_exists` call, where
//! no outer loop ever gets a chance to poll.
//!
//! ```
//! use verdict_bdd::BddManager;
//! let mut m = BddManager::new();
//! let x = m.new_var();
//! let y = m.new_var();
//! let f = m.and(x, y);
//! let g = m.not(f);
//! let h = m.or(g, f);
//! assert_eq!(h, m.constant(true));
//! assert_eq!(m.sat_count(f, 2), 1.0);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// A handle to a BDD node inside a [`BddManager`].
///
/// Handles are only meaningful with the manager that created them, and
/// only until the next [`BddManager::reorder`]/[`BddManager::sift`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant-false node (index 0 in every manager).
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true node (index 1 in every manager).
    pub const TRUE: Bdd = Bdd(1);

    /// True iff this handle is one of the two constants.
    pub fn is_constant(self) -> bool {
        self.0 <= 1
    }

    /// Raw index (diagnostics only).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bdd::FALSE => write!(f, "⊥"),
            Bdd::TRUE => write!(f, "⊤"),
            Bdd(i) => write!(f, "bdd#{i}"),
        }
    }
}

/// A decision node: branch on `var`, `low` = var false, `high` = var true.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    low: Bdd,
    high: Bdd,
}

/// Memoization key for binary operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct IteKey(Bdd, Bdd, Bdd);

/// Operation caches are cleared wholesale when they reach this many
/// entries: across a long synthesis sweep an unbounded memo table is a
/// slow memory leak (every distinct `(f, g, h)` triple ever seen stays
/// resident). Clearing costs a warm-up penalty on the next operation but
/// bounds residency at roughly `CACHE_CAP × entry size` (≈ 48 MB for the
/// `ite` cache). Both caches are also cleared on reorder, where stale
/// entries would be outright wrong, not merely cold.
const CACHE_CAP: usize = 1 << 20;
// The cap must stay generous or long fixpoints thrash on re-derivation.
const _: () = assert!(CACHE_CAP >= 1 << 16);

/// The node store and operation caches.
///
/// All operations take `&mut self` because they may allocate nodes and
/// populate caches; the structure is single-threaded by design (the
/// model-checking engines are deterministic sequential fixpoints).
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, Bdd>,
    ite_cache: HashMap<IteKey, Bdd>,
    /// Cache for `and_exists`, keyed by (a, b, cube-id ∥ cube position).
    and_exists_cache: HashMap<(Bdd, Bdd, u64), Bdd>,
    /// Interned quantification cubes (variable lists sorted by *id*, the
    /// stable interning key), so caches can key on a small id instead of a
    /// vector.
    cubes: Vec<Vec<u32>>,
    /// The same cubes sorted by current *level* — the iteration order
    /// `and_exists` needs. Recomputed on every reorder.
    cube_levels: Vec<Vec<u32>>,
    /// `var2level[v]` = position of variable `v` in the current order.
    var2level: Vec<u32>,
    /// Inverse permutation: `level2var[l]` = variable at position `l`.
    level2var: Vec<u32>,
    num_vars: u32,
    /// Hard ceiling on arena size (None = unlimited).
    node_limit: Option<usize>,
    /// Sticky poison flag: set when the ceiling is hit, never cleared.
    limit_hit: bool,
    /// Wall-clock deadline (None = unlimited), polled inside node
    /// construction every [`DEADLINE_POLL_INTERVAL`] allocations.
    deadline: Option<Instant>,
    /// Sticky poison flag: set when the deadline expires, never cleared.
    deadline_hit: bool,
    /// Allocations remaining until the next deadline poll.
    deadline_fuel: u32,
    stats: BddStats,
}

/// Node allocations between wall-clock polls of the armed deadline: rare
/// enough that `Instant::now` is noise, frequent enough (well under a
/// millisecond of allocation work) that a deadline overrun stays small.
const DEADLINE_POLL_INTERVAL: u32 = 4096;

/// Manager statistics, cumulative over the manager's lifetime (rebuilds
/// during reorder carry them forward).
#[derive(Clone, Copy, Debug, Default)]
pub struct BddStats {
    /// Nodes allocated (excludes the two constant nodes; includes nodes
    /// re-allocated by committed reorder rebuilds, excludes trial rebuilds
    /// in scratch arenas during sifting).
    pub nodes_allocated: u64,
    /// `ite` cache lookups.
    pub ite_cache_lookups: u64,
    /// `ite` cache hits.
    pub ite_cache_hits: u64,
    /// Peak live node count: the high-water mark of
    /// [`BddManager::node_count`], sampled before each reorder shrinks the
    /// arena (so garbage collection never lowers the reported peak).
    pub peak_live_nodes: u64,
    /// Times an operation cache was cleared for reaching `CACHE_CAP`
    /// (reorder-forced clears are not counted here).
    pub cache_clears: u64,
    /// Committed reorders (every sift that rebuilds counts once).
    pub reorders: u64,
    /// Arena size just before each committed reorder, summed.
    pub sift_nodes_before: u64,
    /// Arena size just after each committed reorder, summed.
    pub sift_nodes_after: u64,
}

/// A registered set of variables to quantify or rename over.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VarSet(u64);

/// What a [`BddManager::sift`] call did, including the remapped handles
/// for every root passed in (old handles are invalid afterwards).
#[derive(Clone, Debug)]
pub struct SiftOutcome {
    /// Arena size (live nodes) before the rebuild.
    pub nodes_before: usize,
    /// Arena size after the rebuild (≤ before: even an order-preserving
    /// rebuild garbage-collects unreachable nodes).
    pub nodes_after: usize,
    /// The roots passed in, remapped into the new arena, same order.
    pub roots: Vec<Bdd>,
}

impl Default for BddManager {
    fn default() -> Self {
        BddManager::new()
    }
}

impl BddManager {
    /// A manager containing only the two constant nodes.
    pub fn new() -> BddManager {
        let sentinel = Node {
            var: u32::MAX,
            low: Bdd::FALSE,
            high: Bdd::FALSE,
        };
        let sentinel_true = Node {
            var: u32::MAX,
            low: Bdd::TRUE,
            high: Bdd::TRUE,
        };
        BddManager {
            // Index 0 = false, 1 = true. The sentinel nodes carry
            // var = u32::MAX so every real variable orders before them.
            nodes: vec![sentinel, sentinel_true],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            and_exists_cache: HashMap::new(),
            cubes: Vec::new(),
            cube_levels: Vec::new(),
            var2level: Vec::new(),
            level2var: Vec::new(),
            num_vars: 0,
            node_limit: None,
            limit_hit: false,
            deadline: None,
            deadline_hit: false,
            deadline_fuel: DEADLINE_POLL_INTERVAL,
            stats: BddStats::default(),
        }
    }

    /// Number of live nodes (including the two constants).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Cumulative manager statistics.
    pub fn stats(&self) -> BddStats {
        let mut s = self.stats;
        s.peak_live_nodes = s.peak_live_nodes.max(self.nodes.len() as u64);
        s
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Arms a hard ceiling on arena size, enforced inside node
    /// construction. `None` disarms the ceiling (but does not clear an
    /// already-set poison flag).
    pub fn set_node_limit(&mut self, limit: Option<usize>) {
        self.node_limit = limit;
    }

    /// True once the node ceiling has been hit. From that point every
    /// operation short-circuits to ⊥ and all results computed since the
    /// limit was armed are unreliable — check this before interpreting
    /// any verdict derived from this manager.
    pub fn limit_exceeded(&self) -> bool {
        self.limit_hit
    }

    /// Arms a wall-clock deadline enforced inside node construction,
    /// so even a single monolithic `and`/`and_exists` unwinds promptly
    /// when time runs out. `None` disarms the deadline (but does not
    /// clear an already-set poison flag).
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// True once the armed deadline has expired. Same poisoning contract
    /// as [`BddManager::limit_exceeded`]: everything computed since is
    /// garbage.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline_hit
    }

    /// True if either poison flag is set — the manager's results are
    /// garbage and every operation short-circuits to ⊥. Distinguish the
    /// cause with [`BddManager::limit_exceeded`] /
    /// [`BddManager::deadline_exceeded`].
    pub fn poisoned(&self) -> bool {
        self.limit_hit || self.deadline_hit
    }

    /// Current variable order: the variable id at each level, top first.
    pub fn current_order(&self) -> Vec<u32> {
        self.level2var.clone()
    }

    /// Level (position in the order) of variable `v`.
    pub fn level_of(&self, v: u32) -> u32 {
        self.var2level[v as usize]
    }

    /// A constant BDD.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    /// Creates the next variable in the order and returns its positive
    /// literal as a BDD. New variables start at the bottom of the order
    /// (level = id until the first reorder).
    pub fn new_var(&mut self) -> Bdd {
        let v = self.num_vars;
        self.num_vars += 1;
        self.var2level.push(v);
        self.level2var.push(v);
        self.mk_node(v, Bdd::FALSE, Bdd::TRUE)
    }

    /// The positive literal of variable `v` (which must already exist).
    pub fn var(&mut self, v: u32) -> Bdd {
        assert!(v < self.num_vars, "unknown BDD variable {v}");
        self.mk_node(v, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negative literal of variable `v`.
    pub fn nvar(&mut self, v: u32) -> Bdd {
        assert!(v < self.num_vars, "unknown BDD variable {v}");
        self.mk_node(v, Bdd::TRUE, Bdd::FALSE)
    }

    fn mk_node(&mut self, var: u32, low: Bdd, high: Bdd) -> Bdd {
        if low == high {
            return low;
        }
        if self.limit_hit || self.deadline_hit {
            return Bdd::FALSE;
        }
        if let Some(deadline) = self.deadline {
            // Amortize the clock read over a batch of constructions
            // (counting unique-table hits too: heavy-dedup recursions
            // must still poll); the poison then unwinds the in-flight
            // recursion just like the node ceiling does.
            self.deadline_fuel -= 1;
            if self.deadline_fuel == 0 {
                self.deadline_fuel = DEADLINE_POLL_INTERVAL;
                if Instant::now() >= deadline {
                    self.deadline_hit = true;
                    return Bdd::FALSE;
                }
            }
        }
        let node = Node { var, low, high };
        if let Some(&b) = self.unique.get(&node) {
            return b;
        }
        if let Some(limit) = self.node_limit {
            if self.nodes.len() >= limit {
                // Poison: from here on every construction collapses to ⊥,
                // so recursions unwind promptly instead of allocating.
                self.limit_hit = true;
                return Bdd::FALSE;
            }
        }
        let b = Bdd(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, b);
        self.stats.nodes_allocated += 1;
        b
    }

    #[inline]
    fn node(&self, b: Bdd) -> Node {
        self.nodes[b.0 as usize]
    }

    /// Decomposes a non-constant node into `(var, low, high)`: branch on
    /// `var`, `low` when it is false, `high` when it is true. This is the
    /// read-only introspection hook external checkers use to convert a BDD
    /// back into a formula (e.g. certificate re-checking in `verdict-mc`).
    ///
    /// # Panics
    /// Panics on the constant nodes.
    pub fn node_parts(&self, b: Bdd) -> (u32, Bdd, Bdd) {
        assert!(!b.is_constant(), "node_parts on constant BDD");
        let n = self.node(b);
        (n.var, n.low, n.high)
    }

    /// Level of the top variable of `b` (`u32::MAX` for constants).
    /// Structural decisions compare levels, never variable ids — ids do
    /// not order once the manager has been reordered.
    fn top_level(&self, b: Bdd) -> u32 {
        if b.is_constant() {
            u32::MAX
        } else {
            self.var2level[self.node(b).var as usize]
        }
    }

    /// Cofactors of `b` with respect to variable `v` (whose level must be
    /// at or above `b`'s top level in the order).
    fn cofactors(&self, b: Bdd, v: u32) -> (Bdd, Bdd) {
        if b.is_constant() || self.node(b).var != v {
            (b, b)
        } else {
            let n = self.node(b);
            (n.low, n.high)
        }
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Fault-injection probe at site `bdd.ite` (panic only; node
        // exhaustion is simulated at the mc budget layer). Free when no
        // fault plan is armed.
        verdict_journal::fault::panic_if_armed("bdd.ite");
        if self.limit_hit || self.deadline_hit {
            return Bdd::FALSE;
        }
        // Terminal cases.
        if f == Bdd::TRUE {
            return g;
        }
        if f == Bdd::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Bdd::TRUE && h == Bdd::FALSE {
            return f;
        }
        let key = IteKey(f, g, h);
        self.stats.ite_cache_lookups += 1;
        if let Some(&r) = self.ite_cache.get(&key) {
            self.stats.ite_cache_hits += 1;
            return r;
        }
        let lf = self.top_level(f);
        let lg = self.top_level(g);
        let lh = self.top_level(h);
        let v = self.level2var[lf.min(lg).min(lh) as usize];
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let r = self.mk_node(v, low, high);
        if self.limit_hit || self.deadline_hit {
            // Poisoned subresults must not be memoized as real answers.
            return Bdd::FALSE;
        }
        if self.ite_cache.len() >= CACHE_CAP {
            self.ite_cache.clear();
            self.stats.cache_clears += 1;
        }
        self.ite_cache.insert(key, r);
        r
    }

    /// Negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        self.ite(f, Bdd::FALSE, Bdd::TRUE)
    }

    /// Conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Bdd::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// If-and-only-if.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::TRUE)
    }

    /// Conjunction over an iterator.
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        let mut acc = Bdd::TRUE;
        for b in items {
            acc = self.and(acc, b);
            if acc == Bdd::FALSE {
                break;
            }
        }
        acc
    }

    /// Disjunction over an iterator.
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        let mut acc = Bdd::FALSE;
        for b in items {
            acc = self.or(acc, b);
            if acc == Bdd::TRUE {
                break;
            }
        }
        acc
    }

    /// Registers a set of variables for quantification/renaming. The set is
    /// interned so repeated image computations share caches. `VarSet`s
    /// survive reorders (they name variables, not levels).
    pub fn var_set<I: IntoIterator<Item = u32>>(&mut self, vars: I) -> VarSet {
        let mut vs: Vec<u32> = vars.into_iter().collect();
        vs.sort_unstable();
        vs.dedup();
        for &v in &vs {
            assert!(v < self.num_vars, "unknown BDD variable {v}");
        }
        if let Some(i) = self.cubes.iter().position(|c| *c == vs) {
            return VarSet(i as u64);
        }
        let mut by_level = vs.clone();
        by_level.sort_unstable_by_key(|&v| self.var2level[v as usize]);
        self.cubes.push(vs);
        self.cube_levels.push(by_level);
        VarSet(self.cubes.len() as u64 - 1)
    }

    /// The variables of a registered set, in ascending id order.
    pub fn var_set_vars(&self, s: VarSet) -> &[u32] {
        &self.cubes[s.0 as usize]
    }

    /// The variables of `s` quantified in `and_exists`, in the current
    /// level order (top of the order first).
    fn cube_by_level(&self, s: VarSet) -> &[u32] {
        &self.cube_levels[s.0 as usize]
    }

    /// Existential quantification: `∃ vars. f`.
    pub fn exists(&mut self, f: Bdd, vars: VarSet) -> Bdd {
        self.and_exists(f, Bdd::TRUE, vars)
    }

    /// Universal quantification: `∀ vars. f`.
    pub fn forall(&mut self, f: Bdd, vars: VarSet) -> Bdd {
        let nf = self.not(f);
        let e = self.exists(nf, vars);
        self.not(e)
    }

    /// Fused relational product: `∃ vars. (f ∧ g)`.
    ///
    /// This is the workhorse of image computation: conjoining the state set
    /// with the transition relation while quantifying away current-state
    /// variables, without building the full conjunction.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, vars: VarSet) -> Bdd {
        self.and_exists_rec(f, g, vars, 0)
    }

    fn and_exists_rec(&mut self, f: Bdd, g: Bdd, vars: VarSet, from: usize) -> Bdd {
        if f == Bdd::FALSE || g == Bdd::FALSE || self.limit_hit || self.deadline_hit {
            return Bdd::FALSE;
        }
        // Advance past cube variables whose level is above both tops:
        // they no longer occur in either operand, so ∃ over them is a
        // no-op.
        let top = self.top_level(f).min(self.top_level(g));
        let cube = self.cube_by_level(vars);
        let mut from = from;
        while from < cube.len() && self.var2level[cube[from] as usize] < top {
            from += 1;
        }
        if f == Bdd::TRUE && g == Bdd::TRUE {
            return Bdd::TRUE;
        }
        if from >= cube.len() {
            // No quantified variables remain in scope: plain conjunction.
            return self.and(f, g);
        }
        let key = (f, g, vars.0 << 32 | from as u64);
        if let Some(&r) = self.and_exists_cache.get(&key) {
            return r;
        }
        let qvar = self.cube_by_level(vars)[from];
        let v = self.level2var[top as usize];
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let r = if v == qvar {
            // Quantify this level: OR of the two cofactor products.
            let low = self.and_exists_rec(f0, g0, vars, from + 1);
            if low == Bdd::TRUE {
                Bdd::TRUE
            } else {
                let high = self.and_exists_rec(f1, g1, vars, from + 1);
                self.or(low, high)
            }
        } else {
            debug_assert!(top < self.var2level[qvar as usize]);
            let low = self.and_exists_rec(f0, g0, vars, from);
            let high = self.and_exists_rec(f1, g1, vars, from);
            self.mk_node(v, low, high)
        };
        if self.limit_hit || self.deadline_hit {
            return Bdd::FALSE;
        }
        if self.and_exists_cache.len() >= CACHE_CAP {
            self.and_exists_cache.clear();
            self.stats.cache_clears += 1;
        }
        self.and_exists_cache.insert(key, r);
        r
    }

    /// Renames variables: each `(from, to)` pair substitutes variable
    /// `from` with variable `to`. Pairs must map distinct sources to
    /// distinct targets, and the mapping must preserve the *level* order
    /// (sources and targets sorted by level give the same pair sequence),
    /// which holds for the interleaved current↔next encodings used in
    /// `verdict-ts` — and keeps holding after block-sifting, because
    /// current/next bit pairs move as one block.
    pub fn rename(&mut self, f: Bdd, pairs: &[(u32, u32)]) -> Bdd {
        let mut by_level: Vec<(u32, u32)> = pairs.to_vec();
        by_level.sort_unstable_by_key(|&(from, _)| self.var2level[from as usize]);
        for w in by_level.windows(2) {
            assert!(
                self.var2level[w[0].1 as usize] < self.var2level[w[1].1 as usize],
                "rename map must be strictly increasing (in level order)"
            );
        }
        let map: HashMap<u32, u32> = pairs.iter().copied().collect();
        let mut cache: HashMap<Bdd, Bdd> = HashMap::new();
        self.rename_rec(f, &map, &mut cache)
    }

    fn rename_rec(
        &mut self,
        f: Bdd,
        map: &HashMap<u32, u32>,
        cache: &mut HashMap<Bdd, Bdd>,
    ) -> Bdd {
        if f.is_constant() {
            return f;
        }
        if let Some(&r) = cache.get(&f) {
            return r;
        }
        let n = self.node(f);
        let low = self.rename_rec(n.low, map, cache);
        let high = self.rename_rec(n.high, map, cache);
        let var = map.get(&n.var).copied().unwrap_or(n.var);
        // Order preservation guarantees var is still above low/high tops.
        debug_assert!(
            self.var2level[var as usize] < self.top_level(low)
                && self.var2level[var as usize] < self.top_level(high)
        );
        let r = self.mk_node(var, low, high);
        cache.insert(f, r);
        r
    }

    /// Restricts variable `v` to a constant value.
    pub fn restrict(&mut self, f: Bdd, v: u32, value: bool) -> Bdd {
        let lit = if value { self.var(v) } else { self.nvar(v) };
        let conj = self.and(f, lit);
        let vs = self.var_set([v]);
        self.exists(conj, vs)
    }

    /// Care-set simplification (Coudert–Madre restrict, a.k.a. sibling
    /// substitution): returns `g` with `g ∧ care = f ∧ care`, choosing
    /// `g` freely outside `care`. When `care` prunes most of the space
    /// — a reachable-state set, an invariant — `g` is typically far
    /// smaller than `f`, which makes this the right operator for
    /// lowering formulas *after* reachability instead of over the full
    /// free state space.
    ///
    /// With `care = FALSE` every result is valid; this returns `FALSE`.
    pub fn simplify(&mut self, f: Bdd, care: Bdd) -> Bdd {
        let mut memo = HashMap::new();
        self.simplify_rec(f, care, &mut memo)
    }

    fn simplify_rec(&mut self, f: Bdd, c: Bdd, memo: &mut HashMap<(Bdd, Bdd), Bdd>) -> Bdd {
        if c == Bdd::FALSE {
            return Bdd::FALSE;
        }
        if c == Bdd::TRUE || f.is_constant() {
            return f;
        }
        if let Some(&r) = memo.get(&(f, c)) {
            return r;
        }
        let (lf, lc) = (self.top_level(f), self.top_level(c));
        let r = if lc < lf {
            // The care set branches on a variable `f` does not test:
            // any state in either branch must keep `f`'s value, so
            // simplify against the union of the two care branches.
            let cn = self.node(c);
            let c2 = self.or(cn.low, cn.high);
            self.simplify_rec(f, c2, memo)
        } else {
            let fnode = self.node(f);
            let (c0, c1) = if lc == lf {
                let cn = self.node(c);
                (cn.low, cn.high)
            } else {
                (c, c)
            };
            if c0 == Bdd::FALSE {
                // The low branch is entirely don't-care: substitute the
                // sibling, eliminating the test on this variable.
                self.simplify_rec(fnode.high, c1, memo)
            } else if c1 == Bdd::FALSE {
                self.simplify_rec(fnode.low, c0, memo)
            } else {
                let low = self.simplify_rec(fnode.low, c0, memo);
                let high = self.simplify_rec(fnode.high, c1, memo);
                self.mk_node(fnode.var, low, high)
            }
        };
        memo.insert((f, c), r);
        r
    }

    /// Number of satisfying assignments of `f` over `total_vars` variables.
    ///
    /// Returned as `f64` (state-space sizes are reported, not enumerated).
    pub fn sat_count(&self, f: Bdd, total_vars: u32) -> f64 {
        assert!(total_vars >= self.num_vars || f.is_constant());
        // cnt(b) = solutions of b over the levels [top_level(b), total),
        // where top_level(constant) = total. Variables beyond num_vars
        // (callers may count over a larger universe) sit at levels
        // num_vars..total. The count is order-independent; levels only
        // decide which factor of 2 lands where.
        let total = total_vars;
        let toplv = |b: Bdd| self.top_level(b).min(total);
        let mut cache: HashMap<Bdd, f64> = HashMap::new();
        fn go(m: &BddManager, b: Bdd, total: u32, cache: &mut HashMap<Bdd, f64>) -> f64 {
            if b == Bdd::FALSE {
                return 0.0;
            }
            if b == Bdd::TRUE {
                return 1.0;
            }
            if let Some(&c) = cache.get(&b) {
                return c;
            }
            let n = m.node(b);
            let nl = m.var2level[n.var as usize];
            let lv = m.top_level(n.low).min(total);
            let hv = m.top_level(n.high).min(total);
            let low = go(m, n.low, total, cache) * ((lv - nl - 1) as f64).exp2();
            let high = go(m, n.high, total, cache) * ((hv - nl - 1) as f64).exp2();
            let c = low + high;
            cache.insert(b, c);
            c
        }
        go(self, f, total, &mut cache) * (toplv(f) as f64).exp2()
    }

    /// One satisfying assignment of `f` as `(var, value)` pairs for the
    /// variables on the chosen path (unmentioned variables are free).
    /// Returns `None` for the constant false.
    pub fn sat_one(&self, f: Bdd) -> Option<Vec<(u32, bool)>> {
        if f == Bdd::FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while !cur.is_constant() {
            let n = self.node(cur);
            // Deterministically prefer the low edge when viable.
            if n.low != Bdd::FALSE {
                path.push((n.var, false));
                cur = n.low;
            } else {
                path.push((n.var, true));
                cur = n.high;
            }
        }
        Some(path)
    }

    /// Evaluates `f` under a total assignment (indexed by variable).
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_constant() {
            let n = self.node(cur);
            cur = if assignment[n.var as usize] {
                n.high
            } else {
                n.low
            };
        }
        cur == Bdd::TRUE
    }

    /// Number of nodes reachable from `f` (its size).
    pub fn size(&self, f: Bdd) -> usize {
        self.size_multi(std::slice::from_ref(&f))
    }

    /// Number of distinct nodes reachable from any of `roots` (shared
    /// structure counted once), plus the two constants.
    pub fn size_multi(&self, roots: &[Bdd]) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<Bdd> = roots.to_vec();
        while let Some(b) = stack.pop() {
            if b.is_constant() || !seen.insert(b) {
                continue;
            }
            let n = self.node(b);
            stack.push(n.low);
            stack.push(n.high);
        }
        seen.len() + 2
    }

    // ----- Reordering ---------------------------------------------------

    /// Rebuilds `roots` into a fresh arena under the variable order
    /// `level2var` (a permutation of all variable ids, top of the order
    /// first) and installs that arena as the manager's store. Returns the
    /// remapped roots, in order. Every handle not in `roots` is invalid
    /// afterwards; both operation caches are cleared (stale entries would
    /// be wrong under the new order); interned `VarSet`s survive.
    ///
    /// This is also the manager's garbage collector: nodes unreachable
    /// from `roots` are dropped even when the order is unchanged.
    pub fn reorder(&mut self, level2var: &[u32], roots: &[Bdd]) -> Vec<Bdd> {
        let before = self.nodes.len();
        self.stats.peak_live_nodes = self.stats.peak_live_nodes.max(before as u64);
        let (rebuilt, rebuilt_roots) = self.transfer_roots(level2var, roots);
        // The ite-based transfer leaves up to one literal node per variable
        // as garbage; compact so the committed arena holds exactly the
        // reachable nodes.
        let (mut fresh, new_roots) = rebuilt.copy_reachable(&rebuilt_roots);
        // Carry the manager identity into the rebuilt arena: cumulative
        // stats, interned cubes (ids are stable), the ceiling, and poison.
        fresh.stats.nodes_allocated += self.stats.nodes_allocated;
        fresh.stats.ite_cache_lookups += self.stats.ite_cache_lookups;
        fresh.stats.ite_cache_hits += self.stats.ite_cache_hits;
        fresh.stats.peak_live_nodes = self.stats.peak_live_nodes;
        fresh.stats.cache_clears += self.stats.cache_clears;
        fresh.stats.reorders = self.stats.reorders + 1;
        fresh.stats.sift_nodes_before = self.stats.sift_nodes_before + before as u64;
        fresh.stats.sift_nodes_after = self.stats.sift_nodes_after + fresh.nodes.len() as u64;
        fresh.cubes = std::mem::take(&mut self.cubes);
        fresh.cube_levels = fresh
            .cubes
            .iter()
            .map(|c| {
                let mut by_level = c.clone();
                by_level.sort_unstable_by_key(|&v| fresh.var2level[v as usize]);
                by_level
            })
            .collect();
        fresh.node_limit = self.node_limit;
        fresh.limit_hit = fresh.limit_hit || self.limit_hit;
        fresh.deadline = self.deadline;
        fresh.deadline_hit = fresh.deadline_hit || self.deadline_hit;
        *self = fresh;
        new_roots
    }

    /// Garbage collection: rebuilds the arena keeping only the nodes
    /// reachable from `roots`, under the unchanged variable order (a
    /// pure structural copy — far cheaper than a reordering transfer).
    /// Returns the remapped roots, in order. Every handle not in
    /// `roots` is invalid afterwards; operation caches are cleared
    /// (they may reference collected nodes); interned `VarSet`s
    /// survive. The pre-collection arena size feeds the
    /// `peak_live_nodes` high-water mark, so collection never hides a
    /// memory spike.
    pub fn gc(&mut self, roots: &[Bdd]) -> Vec<Bdd> {
        let before = self.nodes.len();
        self.stats.peak_live_nodes = self.stats.peak_live_nodes.max(before as u64);
        let (mut fresh, new_roots) = self.copy_reachable(roots);
        fresh.stats.nodes_allocated += self.stats.nodes_allocated;
        fresh.stats.ite_cache_lookups += self.stats.ite_cache_lookups;
        fresh.stats.ite_cache_hits += self.stats.ite_cache_hits;
        fresh.stats.peak_live_nodes = self.stats.peak_live_nodes;
        fresh.stats.cache_clears = self.stats.cache_clears;
        fresh.stats.reorders = self.stats.reorders;
        fresh.stats.sift_nodes_before = self.stats.sift_nodes_before;
        fresh.stats.sift_nodes_after = self.stats.sift_nodes_after;
        fresh.cubes = std::mem::take(&mut self.cubes);
        fresh.cube_levels = fresh
            .cubes
            .iter()
            .map(|c| {
                let mut by_level = c.clone();
                by_level.sort_unstable_by_key(|&v| fresh.var2level[v as usize]);
                by_level
            })
            .collect();
        fresh.node_limit = self.node_limit;
        fresh.limit_hit = fresh.limit_hit || self.limit_hit;
        fresh.deadline = self.deadline;
        fresh.deadline_hit = fresh.deadline_hit || self.deadline_hit;
        *self = fresh;
        new_roots
    }

    /// Transfers `roots` into a brand-new manager laid out under
    /// `level2var`, without touching `self`. Used both by [`Self::reorder`]
    /// (which commits the result) and by sifting trials (which only read
    /// the resulting arena size and drop it).
    fn transfer_roots(&self, level2var: &[u32], roots: &[Bdd]) -> (BddManager, Vec<Bdd>) {
        assert_eq!(
            level2var.len(),
            self.num_vars as usize,
            "order must cover every variable"
        );
        let mut var2level = vec![u32::MAX; self.num_vars as usize];
        for (lvl, &v) in level2var.iter().enumerate() {
            assert!(v < self.num_vars, "unknown variable {v} in order");
            assert_eq!(var2level[v as usize], u32::MAX, "duplicate variable {v}");
            var2level[v as usize] = lvl as u32;
        }
        let mut fresh = BddManager::new();
        fresh.num_vars = self.num_vars;
        fresh.var2level = var2level;
        fresh.level2var = level2var.to_vec();
        // The rebuild must not be capped by the old ceiling: a transfer is
        // how we *recover* headroom. The caller reinstalls the limit.
        let mut memo: HashMap<Bdd, Bdd> = HashMap::new();
        let new_roots = roots
            .iter()
            .map(|&r| self.transfer_rec(r, &mut fresh, &mut memo))
            .collect();
        (fresh, new_roots)
    }

    /// Copies the nodes reachable from `roots` into a fresh manager with
    /// the *same* variable order (a pure `mk_node` rebuild — structure is
    /// unchanged, so no re-normalization is needed). This is the
    /// garbage-collection half of [`Self::reorder`].
    fn copy_reachable(&self, roots: &[Bdd]) -> (BddManager, Vec<Bdd>) {
        let mut fresh = BddManager::new();
        fresh.num_vars = self.num_vars;
        fresh.var2level = self.var2level.clone();
        fresh.level2var = self.level2var.clone();
        let mut memo: HashMap<Bdd, Bdd> = HashMap::new();
        fn copy(
            m: &BddManager,
            b: Bdd,
            fresh: &mut BddManager,
            memo: &mut HashMap<Bdd, Bdd>,
        ) -> Bdd {
            if b.is_constant() {
                return b;
            }
            if let Some(&r) = memo.get(&b) {
                return r;
            }
            let n = m.node(b);
            let low = copy(m, n.low, fresh, memo);
            let high = copy(m, n.high, fresh, memo);
            let r = fresh.mk_node(n.var, low, high);
            memo.insert(b, r);
            r
        }
        let new_roots = roots
            .iter()
            .map(|&r| copy(self, r, &mut fresh, &mut memo))
            .collect();
        (fresh, new_roots)
    }

    fn transfer_rec(&self, b: Bdd, fresh: &mut BddManager, memo: &mut HashMap<Bdd, Bdd>) -> Bdd {
        if b.is_constant() {
            return b;
        }
        if let Some(&r) = memo.get(&b) {
            return r;
        }
        let n = self.node(b);
        let low = self.transfer_rec(n.low, fresh, memo);
        let high = self.transfer_rec(n.high, fresh, memo);
        // Under the new order the children's tops may sit above this
        // variable, so a plain mk_node is not canonical: route through
        // ite on the literal, which re-normalizes.
        let lit = fresh.var(n.var);
        let r = fresh.ite(lit, high, low);
        memo.insert(b, r);
        r
    }

    /// Bounded block-sifting: searches for a variable order that shrinks
    /// the shared size of `roots`, then commits one [`Self::reorder`] —
    /// which always runs, because the rebuild doubles as garbage
    /// collection even when no better order is found.
    ///
    /// `blocks` partitions the variable ids into groups that move
    /// together (the engine passes current/next bit pairs so rename maps
    /// stay level-order-preserving). The heuristic: rank blocks by how
    /// many live nodes sit on their variables, take the `max_blocks`
    /// fattest, and for each try a window of candidate positions, scoring
    /// every candidate by rebuilding into a scratch arena and reading its
    /// size. Greedy accept per block.
    pub fn sift(&mut self, roots: &[Bdd], blocks: &[Vec<u32>], max_blocks: usize) -> SiftOutcome {
        let nodes_before = self.nodes.len();
        // Current block order: sort blocks by the level of their topmost
        // variable.
        let mut order: Vec<usize> = (0..blocks.len()).collect();
        order.sort_unstable_by_key(|&i| {
            blocks[i]
                .iter()
                .map(|&v| self.var2level[v as usize])
                .min()
                .unwrap_or(u32::MAX)
        });

        // Fatness: live nodes labeled with each block's variables.
        let mut var_block = vec![usize::MAX; self.num_vars as usize];
        for (bi, block) in blocks.iter().enumerate() {
            for &v in block {
                var_block[v as usize] = bi;
            }
        }
        let mut fat = vec![0usize; blocks.len()];
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<Bdd> = roots.to_vec();
        while let Some(b) = stack.pop() {
            if b.is_constant() || !seen.insert(b) {
                continue;
            }
            let n = self.node(b);
            if var_block[n.var as usize] != usize::MAX {
                fat[var_block[n.var as usize]] += 1;
            }
            stack.push(n.low);
            stack.push(n.high);
        }
        drop(seen);

        let mut candidates: Vec<usize> = (0..blocks.len()).collect();
        candidates.sort_unstable_by_key(|&i| std::cmp::Reverse(fat[i]));
        candidates.truncate(max_blocks);

        let flatten = |order: &[usize]| -> Vec<u32> {
            order
                .iter()
                .flat_map(|&bi| {
                    let mut vs = blocks[bi].clone();
                    vs.sort_unstable_by_key(|&v| self.var2level[v as usize]);
                    vs
                })
                .collect()
        };

        // Score a candidate order by the *reachable* size of the rebuilt
        // roots, not the scratch arena length: the transfer allocates up
        // to one literal node per variable as a side effect, which would
        // wash out small differences between orders.
        let score = |m: &BddManager, order: &[u32]| -> usize {
            let (fresh, new_roots) = m.transfer_roots(order, roots);
            fresh.size_multi(&new_roots)
        };
        let mut best_size = score(self, &flatten(&order));
        for &bi in &candidates {
            let cur_pos = order.iter().position(|&x| x == bi).unwrap();
            let last = order.len() - 1;
            // Candidate positions: a window of power-of-two hops around
            // the current position plus both ends of the order.
            let mut positions: Vec<usize> = [1usize, 2, 4, 8, 16]
                .iter()
                .flat_map(|&d| [cur_pos.saturating_sub(d), (cur_pos + d).min(last)])
                .chain([0, last])
                .collect();
            positions.sort_unstable();
            positions.dedup();
            positions.retain(|&p| p != cur_pos);

            let mut best_pos = cur_pos;
            for &p in &positions {
                let mut trial = order.clone();
                let item = trial.remove(cur_pos);
                trial.insert(p, item);
                let size = score(self, &flatten(&trial));
                if size < best_size {
                    best_size = size;
                    best_pos = p;
                }
            }
            if best_pos != cur_pos {
                let item = order.remove(cur_pos);
                order.insert(best_pos, item);
            }
        }

        let roots = self.reorder(&flatten(&order), roots);
        SiftOutcome {
            nodes_before,
            nodes_after: self.nodes.len(),
            roots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        let m = BddManager::new();
        assert!(Bdd::TRUE.is_constant());
        assert_eq!(m.constant(true), Bdd::TRUE);
        assert_eq!(m.constant(false), Bdd::FALSE);
    }

    #[test]
    fn basic_ops_truth_tables() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        type Case = (&'static str, Bdd, fn(bool, bool) -> bool);
        let cases: Vec<Case> = vec![
            ("and", m.and(x, y), |a, b| a && b),
            ("or", m.or(x, y), |a, b| a || b),
            ("xor", m.xor(x, y), |a, b| a ^ b),
            ("iff", m.iff(x, y), |a, b| a == b),
            ("implies", m.implies(x, y), |a, b| !a || b),
        ];
        for (name, f, spec) in cases {
            for a in [false, true] {
                for b in [false, true] {
                    assert_eq!(m.eval(f, &[a, b]), spec(a, b), "{name}({a},{b})");
                }
            }
        }
    }

    #[test]
    fn simplify_agrees_inside_care_set() {
        // Exhaustive: over every pair from a pool of random-ish functions
        // on 4 variables, simplify(f, c) ∧ c must equal f ∧ c.
        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..4).map(|_| m.new_var()).collect();
        let mut pool = vec![Bdd::TRUE, Bdd::FALSE];
        // A deterministic spread of functions: all single literals, some
        // pairwise ops, one three-way.
        for &v in &vars {
            pool.push(v);
            pool.push(m.not(v));
        }
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                pool.push(m.and(vars[i], vars[j]));
                pool.push(m.or(vars[i], vars[j]));
                pool.push(m.xor(vars[i], vars[j]));
            }
        }
        let vi = m.iff(vars[0], vars[3]);
        pool.push(m.and(vi, vars[1]));
        for &f in &pool {
            for &c in &pool {
                let g = m.simplify(f, c);
                let gc = m.and(g, c);
                let fc = m.and(f, c);
                assert_eq!(gc, fc, "simplify broke f∧c");
                assert!(m.size(g) <= m.size(f) + 1, "simplify should not blow up");
            }
        }
    }

    #[test]
    fn gc_drops_garbage_and_keeps_roots_valid() {
        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..6).map(|_| m.new_var()).collect();
        // Live function plus a pile of dead intermediates.
        let live = {
            let a = m.and(vars[0], vars[1]);
            m.or(a, vars[2])
        };
        for i in 0..6 {
            for j in 0..6 {
                let x = m.xor(vars[i], vars[j]);
                let _dead = m.and(x, vars[(i + j) % 6]);
            }
        }
        let before = m.node_count();
        let roots = m.gc(&[live]);
        let live = roots[0];
        assert!(m.node_count() < before, "collection must shrink the arena");
        assert!(
            m.stats().peak_live_nodes >= before as u64,
            "collection must not hide the high-water mark"
        );
        // The remapped root still computes the same function.
        for bits in 0..8u8 {
            let mut a = vec![false; 6];
            for (i, s) in a.iter_mut().enumerate().take(3) {
                *s = bits & (1 << i) != 0;
            }
            assert_eq!(m.eval(live, &a), (a[0] && a[1]) || a[2]);
        }
        // And the manager still operates (caches were cleared, not
        // corrupted).
        let x = m.var(3);
        let f = m.and(live, x);
        assert_ne!(f, Bdd::FALSE);
    }

    #[test]
    fn simplify_collapses_under_tight_care() {
        // care pins x0..x2 false; f = parity over all four collapses to
        // a single-literal function of x3.
        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..4).map(|_| m.new_var()).collect();
        let mut parity = Bdd::FALSE;
        for &v in &vars {
            parity = m.xor(parity, v);
        }
        let mut care = Bdd::TRUE;
        for &v in &vars[..3] {
            let nv = m.not(v);
            care = m.and(care, nv);
        }
        let g = m.simplify(parity, care);
        assert_eq!(g, vars[3], "parity restricted to x0=x1=x2=0 is x3");
    }

    #[test]
    fn hash_consing_gives_canonical_forms() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let f1 = m.and(x, y);
        let f2 = {
            let nx = m.not(x);
            let ny = m.not(y);
            let nf = m.or(nx, ny);
            m.not(nf)
        };
        assert_eq!(f1, f2, "De Morgan forms must be the same node");
        let nf1 = m.not(f1);
        let tautology = m.or(f1, nf1);
        assert_eq!(tautology, Bdd::TRUE);
    }

    #[test]
    fn ite_shannon() {
        let mut m = BddManager::new();
        let c = m.new_var();
        let t = m.new_var();
        let e = m.new_var();
        let f = m.ite(c, t, e);
        for bits in 0..8u8 {
            let a = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let expected = if a[0] { a[1] } else { a[2] };
            assert_eq!(m.eval(f, &a), expected);
        }
    }

    #[test]
    fn exists_forall() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let f = m.and(x, y);
        let vx = m.var_set([0u32]);
        let ex = m.exists(f, vx);
        // ∃x. x∧y == y
        assert_eq!(ex, y);
        let fx = m.forall(f, vx);
        // ∀x. x∧y == false
        assert_eq!(fx, Bdd::FALSE);
        let g = m.or(x, y);
        let fg = m.forall(g, vx);
        // ∀x. x∨y == y
        assert_eq!(fg, y);
    }

    #[test]
    fn and_exists_is_fused_correctly() {
        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..6).map(|_| m.new_var()).collect();
        // f = (x0 ↔ x2) ∧ (x1 ↔ x3), g = x0 ∧ ¬x1
        let a = m.iff(vars[0], vars[2]);
        let b = m.iff(vars[1], vars[3]);
        let f = m.and(a, b);
        let nb1 = m.not(vars[1]);
        let g = m.and(vars[0], nb1);
        let qs = m.var_set([0u32, 1]);
        let fused = m.and_exists(f, g, qs);
        let plain = {
            let c = m.and(f, g);
            m.exists(c, qs)
        };
        assert_eq!(fused, plain);
        // Semantically: x2 ∧ ¬x3
        let nx3 = m.not(vars[3]);
        let expect = m.and(vars[2], nx3);
        assert_eq!(fused, expect);
    }

    #[test]
    fn rename_shifts_variables() {
        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..4).map(|_| m.new_var()).collect();
        let f = m.and(vars[0], vars[1]);
        let g = m.rename(f, &[(0, 2), (1, 3)]);
        let expect = m.and(vars[2], vars[3]);
        assert_eq!(g, expect);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rename_rejects_non_monotone_maps() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let f = m.and(x, y);
        let _ = m.rename(f, &[(0, 1), (1, 0)]);
    }

    #[test]
    fn restrict_cofactors() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let f = m.xor(x, y);
        let f_x1 = m.restrict(f, 0, true);
        let ny = m.not(y);
        assert_eq!(f_x1, ny);
        let f_x0 = m.restrict(f, 0, false);
        assert_eq!(f_x0, y);
    }

    #[test]
    fn sat_count_small() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let z = m.new_var();
        let f = m.and(x, y);
        assert_eq!(m.sat_count(f, 3), 2.0); // z free
        let g = m.or_all([x, y, z]);
        assert_eq!(m.sat_count(g, 3), 7.0);
        assert_eq!(m.sat_count(Bdd::TRUE, 3), 8.0);
        assert_eq!(m.sat_count(Bdd::FALSE, 3), 0.0);
    }

    #[test]
    fn sat_one_satisfies() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let z = m.new_var();
        let nx = m.not(x);
        let f = m.and_all([nx, y, z]);
        let cube = m.sat_one(f).unwrap();
        let mut assignment = vec![false; 3];
        for (v, val) in cube {
            assignment[v as usize] = val;
        }
        assert!(m.eval(f, &assignment));
        assert!(m.sat_one(Bdd::FALSE).is_none());
    }

    #[test]
    fn eval_matches_semantics_exhaustively() {
        // Build a nontrivial function and compare against direct evaluation.
        let mut m = BddManager::new();
        let vs: Vec<Bdd> = (0..5).map(|_| m.new_var()).collect();
        let t1 = m.and(vs[0], vs[1]);
        let t2 = m.xor(vs[2], vs[3]);
        let t3 = m.implies(vs[4], t1);
        let part = m.or(t1, t2);
        let f = m.and(part, t3);
        for bits in 0..32u8 {
            let a: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let spec = {
                let t1 = a[0] && a[1];
                let t2 = a[2] ^ a[3];
                let t3 = !a[4] || t1;
                (t1 || t2) && t3
            };
            assert_eq!(m.eval(f, &a), spec, "bits={bits:05b}");
        }
    }

    #[test]
    fn size_reports_reachable_nodes() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let f = m.and(x, y);
        assert_eq!(m.size(f), 4); // two decision nodes + two constants
        assert_eq!(m.size(Bdd::TRUE), 2);
    }

    // ----- Reordering, node limits, cache bounds ------------------------

    /// Builds `(x0∧x1) ∨ (x2∧x3) ∨ (x4∧x5)` — linear-sized under the
    /// natural order, exponential under the interleaved-pairs order
    /// `[0, 2, 4, 1, 3, 5]`. The classic sifting benchmark function.
    fn chain_of_ands(m: &mut BddManager) -> Bdd {
        let vs: Vec<Bdd> = (0..6).map(|_| m.new_var()).collect();
        let a = m.and(vs[0], vs[1]);
        let b = m.and(vs[2], vs[3]);
        let c = m.and(vs[4], vs[5]);
        let ab = m.or(a, b);
        m.or(ab, c)
    }

    #[test]
    fn reorder_preserves_semantics_and_collects_garbage() {
        let mut m = BddManager::new();
        let f = chain_of_ands(&mut m);
        // Pile up garbage nodes the reorder should drop.
        for i in 0..6u32 {
            for j in 0..6u32 {
                let (a, b) = (m.var(i), m.var(j));
                let x = m.xor(a, b);
                let _ = m.ite(x, f, a);
            }
        }
        let before = m.node_count();
        // A deliberately bad order: pairs split across the halves.
        let roots = m.reorder(&[0, 2, 4, 1, 3, 5], &[f]);
        let f2 = roots[0];
        assert!(m.node_count() < before, "reorder must garbage-collect");
        for bits in 0..64u32 {
            let a: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            let spec = (a[0] && a[1]) || (a[2] && a[3]) || (a[4] && a[5]);
            assert_eq!(m.eval(f2, &a), spec, "bits={bits:06b}");
        }
        // And back to the identity order.
        let roots = m.reorder(&[0, 1, 2, 3, 4, 5], &[f2]);
        for bits in 0..64u32 {
            let a: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            let spec = (a[0] && a[1]) || (a[2] && a[3]) || (a[4] && a[5]);
            assert_eq!(m.eval(roots[0], &a), spec);
        }
        assert_eq!(m.stats().reorders, 2);
        assert!(m.stats().sift_nodes_before >= m.stats().sift_nodes_after);
    }

    #[test]
    fn operations_stay_correct_under_non_identity_order() {
        let mut m = BddManager::new();
        let f = chain_of_ands(&mut m);
        let roots = m.reorder(&[5, 3, 1, 4, 2, 0], &[f]);
        let f = roots[0];
        // ite / and / or against fresh literals under the new order.
        let x0 = m.var(0);
        let g = m.and(f, x0);
        for bits in 0..64u32 {
            let a: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            let spec = ((a[0] && a[1]) || (a[2] && a[3]) || (a[4] && a[5])) && a[0];
            assert_eq!(m.eval(g, &a), spec);
        }
        // Quantification under the new order.
        let vs = m.var_set([0u32, 1]);
        let e = m.exists(f, vs);
        for bits in 0..64u32 {
            let a: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            // ∃x0,x1. f — compute the spec by brute force over the
            // quantified bits:
            let mut any = false;
            for b0 in [false, true] {
                for b1 in [false, true] {
                    let mut a2 = a.clone();
                    a2[0] = b0;
                    a2[1] = b1;
                    any |= (a2[0] && a2[1]) || (a2[2] && a2[3]) || (a2[4] && a2[5]);
                }
            }
            assert_eq!(m.eval(e, &a), any);
        }
        // Rename under the new order: must preserve relative level order.
        // Variables 0 and 1 sit at levels 5 and 2; map each one step.
        let h = m.and(x0, f);
        let _ = h;
        // sat_count is order-independent.
        assert_eq!(m.sat_count(f, 6), {
            let mut n = 0u32;
            for bits in 0..64u32 {
                let a: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
                if (a[0] && a[1]) || (a[2] && a[3]) || (a[4] && a[5]) {
                    n += 1;
                }
            }
            n as f64
        });
    }

    #[test]
    fn sift_shrinks_badly_ordered_function() {
        let mut m = BddManager::new();
        let f = chain_of_ands(&mut m);
        // Force the pathological order first: 0,2,4 above 1,3,5.
        let roots = m.reorder(&[0, 2, 4, 1, 3, 5], &[f]);
        let f = roots[0];
        let bad = m.size(f);
        let blocks: Vec<Vec<u32>> = (0..6).map(|v| vec![v]).collect();
        let out = m.sift(&[f], &blocks, 6);
        let f = out.roots[0];
        assert!(
            m.size(f) < bad,
            "sift should beat the pathological order: {} vs {bad}",
            m.size(f)
        );
        for bits in 0..64u32 {
            let a: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            let spec = (a[0] && a[1]) || (a[2] && a[3]) || (a[4] && a[5]);
            assert_eq!(m.eval(f, &a), spec);
        }
        assert!(out.nodes_after <= out.nodes_before);
        assert!(m.stats().reorders >= 2);
    }

    #[test]
    fn sift_respects_blocks() {
        let mut m = BddManager::new();
        let f = chain_of_ands(&mut m);
        let blocks: Vec<Vec<u32>> = vec![vec![0, 1], vec![2, 3], vec![4, 5]];
        let out = m.sift(&[f], &blocks, 3);
        // Block members must stay adjacent in the final order.
        let order = m.current_order();
        for block in &blocks {
            let positions: Vec<usize> = block
                .iter()
                .map(|&v| order.iter().position(|&x| x == v).unwrap())
                .collect();
            let (lo, hi) = (
                *positions.iter().min().unwrap(),
                *positions.iter().max().unwrap(),
            );
            assert_eq!(hi - lo, block.len() - 1, "block {block:?} split: {order:?}");
        }
        for bits in 0..64u32 {
            let a: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            let spec = (a[0] && a[1]) || (a[2] && a[3]) || (a[4] && a[5]);
            assert_eq!(m.eval(out.roots[0], &a), spec);
        }
    }

    #[test]
    fn node_limit_poisons_promptly_and_stays_sticky() {
        let mut m = BddManager::new();
        for _ in 0..32 {
            m.new_var();
        }
        m.set_node_limit(Some(64));
        assert!(!m.limit_exceeded());
        // A function whose BDD is far larger than 64 nodes: the ceiling
        // must trip during construction, not after.
        let mut acc = Bdd::FALSE;
        for i in 0..16u32 {
            let a = m.var(2 * i);
            let b = m.var(2 * i + 1);
            let t = m.and(a, b);
            acc = m.or(acc, t);
            if m.limit_exceeded() {
                break;
            }
        }
        assert!(m.limit_exceeded(), "ceiling of 64 nodes must trip");
        assert!(
            m.node_count() <= 64 + 2,
            "arena must not blow past the ceiling: {}",
            m.node_count()
        );
        // Sticky: further operations short-circuit to ⊥.
        let x = m.var(0);
        assert_eq!(m.and(x, Bdd::TRUE), Bdd::FALSE);
        assert!(m.limit_exceeded());
    }

    #[test]
    fn expired_deadline_poisons_mid_construction() {
        let mut m = BddManager::new();
        for _ in 0..40 {
            m.new_var();
        }
        m.set_deadline(Some(Instant::now()));
        assert!(
            !m.deadline_exceeded(),
            "arming alone must not poison — only an allocation poll does"
        );
        // Keep constructing until one poll interval of mk_node calls has
        // passed; the expired deadline must trip *inside* the work,
        // bounding total allocations near the poll granularity.
        let mut acc = Bdd::FALSE;
        for round in 0..100_000u32 {
            let x = m.var(round % 40);
            let y = m.var((round + 7) % 40);
            let t = m.and(x, y);
            acc = m.xor(acc, t);
            if m.deadline_exceeded() {
                break;
            }
        }
        assert!(m.deadline_exceeded(), "expired deadline must trip");
        assert!(m.poisoned());
        assert!(!m.limit_exceeded(), "distinct cause from the node ceiling");
        assert!(
            m.node_count() <= 2 * DEADLINE_POLL_INTERVAL as usize,
            "poison must land within a poll interval or two: {}",
            m.node_count()
        );
        // Sticky, exactly like the ceiling.
        let x = m.var(0);
        assert_eq!(m.or(x, Bdd::FALSE), Bdd::FALSE);
        // A comfortable future deadline never fires.
        let mut fresh = BddManager::new();
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        fresh.set_deadline(Some(far));
        let a = fresh.new_var();
        let b = fresh.new_var();
        let f = fresh.and(a, b);
        assert!(!fresh.poisoned());
        assert_ne!(f, Bdd::FALSE);
    }

    #[test]
    fn node_limit_trips_inside_and_exists() {
        let mut m = BddManager::new();
        for _ in 0..40 {
            m.new_var();
        }
        // Build the operands within a generous ceiling, then tighten it so
        // only the fused product can trip it.
        let mut f = Bdd::TRUE;
        for i in 0..10u32 {
            let a = m.var(i);
            let b = m.var(i + 20);
            let t = m.iff(a, b);
            f = m.and(f, t);
        }
        let mut g = Bdd::TRUE;
        for i in 10..20u32 {
            let a = m.var(i);
            let b = m.var(i + 20);
            let t = m.xor(a, b);
            g = m.and(g, t);
        }
        assert!(!m.limit_exceeded());
        m.set_node_limit(Some(m.node_count() + 8));
        let vs = m.var_set(0..20u32);
        let r = m.and_exists(f, g, vs);
        assert!(m.limit_exceeded(), "and_exists must hit the tight ceiling");
        assert_eq!(r, Bdd::FALSE, "poisoned result collapses to ⊥");
    }

    #[test]
    fn caches_are_bounded() {
        // White-box: CACHE_CAP is too large to hit in a unit test, so this
        // only checks the clear accounting plumbing via stats and relies
        // on the cap constant for the bound itself.
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let _ = m.and(x, y);
        assert_eq!(m.stats().cache_clears, 0);
    }

    #[test]
    fn reorder_keeps_varsets_valid() {
        let mut m = BddManager::new();
        let f = chain_of_ands(&mut m);
        let vs = m.var_set([0u32, 2, 4]);
        let e1 = m.exists(f, vs);
        let semantics = |m: &BddManager, e: Bdd| {
            let mut out = Vec::new();
            for bits in 0..64u32 {
                let a: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
                out.push(m.eval(e, &a));
            }
            out
        };
        let sem1 = semantics(&m, e1);
        let roots = m.reorder(&[4, 5, 0, 1, 2, 3], &[f]);
        let f = roots[0];
        // Same VarSet handle, new order: must still quantify {0, 2, 4}.
        let e2 = m.exists(f, vs);
        assert_eq!(semantics(&m, e2), sem1);
    }
}
