//! Case study 2: latency-based load balancer + ECMP (paper §3.3 / §4.2).
//!
//! The Fig. 3 scenario: three servers behind four routers, two
//! applications with two replicas each:
//!
//! * `p1` (app a) on `s1`, routed over link `R1–R2`;
//! * `p2` (app a) on `s2`, routed over link `R3–R2`;
//! * `p3` (app b) on `s2`, routed over link `R1–R2` (shares it with `p1`);
//! * `p4` (app b) on `s3`, routed over link `R1–R4` (hit by the one-time
//!   external traffic).
//!
//! ECMP path choices are hard-coded exactly as in the paper ("we
//! hard-code ECMP path selections described in the example"). The load
//! balancer is "smart": on its turn for an app it compares the replicas'
//! response times *as they would be after the candidate weight change*
//! and routes all of the app's traffic (weights are 0/1) to the better
//! replica. Server latency is linear in server load with per-app slope
//! and intercept; link latency is linear in link load with a shared slope
//! and intercept; the paper's symbolic parameters.
//!
//! **Linearity substitution** (documented in DESIGN.md): the paper leaves
//! both traffic volumes and latency coefficients symbolic, making latency
//! terms *products* of unknowns — outside QF_LRA. Here the traffic
//! volumes `t_a`, `t_b`, `e` are concrete rationals from the spec while
//! all six latency coefficients stay symbolic reals, keeping every
//! response time linear and the headline result intact: the checker
//! synthesizes latency-parameter values plus a lasso-shaped execution
//! that oscillates forever after the external-traffic event.

use verdict_logic::Rational;
use verdict_ts::{Expr, Ltl, System, VarId};

/// Concrete traffic volumes (the linearized inputs).
#[derive(Clone, Debug)]
pub struct LbSpec {
    /// App a's input traffic.
    pub t_a: Rational,
    /// App b's input traffic.
    pub t_b: Rational,
    /// The one-time external traffic volume on link R1–R4.
    pub external: Rational,
}

impl Default for LbSpec {
    fn default() -> Self {
        LbSpec {
            t_a: Rational::integer(1),
            t_b: Rational::integer(1),
            external: Rational::integer(2),
        }
    }
}

/// The constructed model with handles to its pieces.
pub struct LbModel {
    /// The transition system (real-valued: use the SMT engines).
    pub system: System,
    /// `wa`: app a served by `p1` (true) or `p2` (false).
    pub wa: VarId,
    /// `wb`: app b served by `p3` (true) or `p4` (false).
    pub wb: VarId,
    /// External traffic active.
    pub ext: VarId,
    /// Weights unchanged since the previous step.
    pub stable: Expr,
    /// The LB would keep the current weights (a true fixed point).
    pub equilibrium: Expr,
    /// `F G stable`.
    pub liveness: Ltl,
    /// `equilibrium → F G stable` (the paper's second, more interesting
    /// check: an initially-stable system must re-stabilize).
    pub conditional_liveness: Ltl,
}

/// `ite(cond, slope·t, 0)` — the linear latency contribution of one
/// traffic source when active.
fn scaled_if(cond: Expr, slope: VarId, t: Rational) -> Expr {
    Expr::ite(cond, Expr::var(slope).scale(t), Expr::real(Rational::ZERO))
}

impl LbModel {
    /// Builds the Fig. 3 model.
    pub fn build(spec: &LbSpec) -> LbModel {
        let mut sys = System::new("lb-ecmp");
        let (t_a, t_b, e) = (spec.t_a, spec.t_b, spec.external);

        // Symbolic latency coefficients (frozen reals, all positive).
        let ma = sys.real_param("m_a"); // app a server-latency slope
        let mb = sys.real_param("m_b"); // app b server-latency slope
        let ml = sys.real_param("m_link"); // link-latency slope (shared)
        let la = sys.real_param("l_a"); // app a server-latency intercept
        let lb = sys.real_param("l_b"); // app b server-latency intercept
        let ll = sys.real_param("l_link"); // link-latency intercept
        for p in [ma, mb, ml, la, lb, ll] {
            sys.add_init(Expr::var(p).gt(Expr::real(Rational::ZERO)));
        }

        // Control state.
        let wa = sys.bool_var("wa_p1"); // app a -> p1?
        let wb = sys.bool_var("wb_p3"); // app b -> p3?
        let prev_wa = sys.bool_var("prev_wa");
        let prev_wb = sys.bool_var("prev_wb");
        let turn_a = sys.bool_var("turn_a"); // whose turn the LB takes
        let ext = sys.bool_var("external_traffic");

        // Response times as functions of hypothetical weights. `wae`/`wbe`
        // are the weight expressions to evaluate under; `exte` the
        // external-traffic indicator.
        let resp_p1 = |wae: Expr, wbe: Expr| -> Expr {
            // server s1 (app a) + link R1–R2
            Expr::sum([
                scaled_if(wae.clone(), ma, t_a),
                Expr::var(la),
                scaled_if(wae, ml, t_a),
                scaled_if(wbe, ml, t_b),
                Expr::var(ll),
            ])
        };
        let resp_p2 = |wae: Expr, wbe: Expr| -> Expr {
            // server s2 (app a view: s2 load = (1-wa)·t_a + wb·t_b) + link R3–R2
            Expr::sum([
                scaled_if(wae.clone().not(), ma, t_a),
                scaled_if(wbe, ma, t_b),
                Expr::var(la),
                scaled_if(wae.not(), ml, t_a),
                Expr::var(ll),
            ])
        };
        let resp_p3 = |wae: Expr, wbe: Expr| -> Expr {
            // server s2 (app b view) + link R1–R2
            Expr::sum([
                scaled_if(wae.clone().not(), mb, t_a),
                scaled_if(wbe.clone(), mb, t_b),
                Expr::var(lb),
                scaled_if(wae, ml, t_a),
                scaled_if(wbe, ml, t_b),
                Expr::var(ll),
            ])
        };
        let resp_p4 = |wbe: Expr, exte: Expr| -> Expr {
            // server s3 (app b) + link R1–R4 (external traffic lands here)
            Expr::sum([
                scaled_if(wbe.clone().not(), mb, t_b),
                Expr::var(lb),
                scaled_if(wbe.not(), ml, t_b),
                scaled_if(exte, ml, e),
                Expr::var(ll),
            ])
        };

        // The LB's "smart" decisions: candidate assignments evaluated with
        // the *other* app's weight held at its current value.
        let decide_a = resp_p1(Expr::tt(), Expr::var(wb)).le(resp_p2(Expr::ff(), Expr::var(wb)));
        let decide_b = resp_p3(Expr::var(wa), Expr::tt()).le(resp_p4(Expr::ff(), Expr::var(ext)));

        // INIT: no external traffic yet; weights free; history matches so
        // step 0 is not spuriously "unstable".
        sys.add_init(Expr::var(ext).not());
        sys.add_init(Expr::var(prev_wa).iff(Expr::var(wa)));
        sys.add_init(Expr::var(prev_wb).iff(Expr::var(wb)));

        // TRANS: alternating turns; the acting app adopts its decision,
        // the other keeps its weights; history shifts; external traffic
        // latches on at a nondeterministic point.
        sys.add_trans(Expr::next(turn_a).eq(Expr::var(turn_a).not()));
        sys.add_trans(Expr::ite(
            Expr::var(turn_a),
            Expr::next(wa)
                .iff(decide_a.clone())
                .and(Expr::next(wb).iff(Expr::var(wb))),
            Expr::next(wb)
                .iff(decide_b.clone())
                .and(Expr::next(wa).iff(Expr::var(wa))),
        ));
        sys.add_trans(Expr::next(prev_wa).iff(Expr::var(wa)));
        sys.add_trans(Expr::next(prev_wb).iff(Expr::var(wb)));
        sys.add_trans(Expr::var(ext).implies(Expr::next(ext)));

        let stable = Expr::var(wa)
            .iff(Expr::var(prev_wa))
            .and(Expr::var(wb).iff(Expr::var(prev_wb)));
        let equilibrium = decide_a.iff(Expr::var(wa)).and(decide_b.iff(Expr::var(wb)));

        let liveness = Ltl::atom(stable.clone()).always().eventually();
        let conditional_liveness =
            Ltl::atom(equilibrium.clone()).implies(Ltl::atom(stable.clone()).always().eventually());

        let model = LbModel {
            system: sys,
            wa,
            wb,
            ext,
            stable,
            equilibrium,
            liveness,
            conditional_liveness,
        };
        model.system.check().expect("lb model type-checks");
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_mc::prelude::*;
    use verdict_mc::Stats;

    /// SMT-BMC LTL check through the engine registry.
    fn smt_ltl(sys: &System, phi: &Ltl, opts: &CheckOptions) -> CheckResult {
        engine(EngineKind::SmtBmc)
            .check_ltl(sys, phi, opts, &mut Stats::default())
            .unwrap()
    }
    use verdict_ts::Value;

    #[test]
    fn builds_and_type_checks() {
        let m = LbModel::build(&LbSpec::default());
        assert!(m.system.has_real_vars());
        assert!(m.system.check().is_ok());
    }

    #[test]
    fn fg_stable_is_violated() {
        // The paper: "the model checker finds a counter-example where the
        // system is unstable even before the sudden external traffic."
        let m = LbModel::build(&LbSpec::default());
        let r = smt_ltl(&m.system, &m.liveness, &CheckOptions::with_depth(10));
        let t = r.trace().expect("F G stable must fail");
        assert!(t.loop_back.is_some(), "lasso expected:\n{t}");
    }

    #[test]
    fn initially_stable_system_can_oscillate_forever() {
        // The paper's refined check: stable → F G stable also fails — an
        // equilibrium exists from which the system starts oscillating
        // (after the external-traffic event) and never re-stabilizes.
        let m = LbModel::build(&LbSpec::default());
        let r = smt_ltl(
            &m.system,
            &m.conditional_liveness,
            &CheckOptions::with_depth(12),
        );
        let t = r.trace().expect("equilibrium → F G stable must fail");
        let l = t.loop_back.expect("lasso");
        // The loop must contain weight flapping: some state in the loop
        // is unstable.
        let unstable_in_loop = (l..t.len()).any(|step| {
            let wa = t.value(step, "wa_p1").unwrap();
            let pwa = t.value(step, "prev_wa").unwrap();
            let wb = t.value(step, "wb_p3").unwrap();
            let pwb = t.value(step, "prev_wb").unwrap();
            wa != pwa || wb != pwb
        });
        assert!(unstable_in_loop, "loop must flap weights:\n{t}");
    }

    #[test]
    fn counterexample_parameters_are_positive() {
        let m = LbModel::build(&LbSpec::default());
        let r = smt_ltl(&m.system, &m.liveness, &CheckOptions::with_depth(10));
        let t = r.trace().unwrap();
        for name in ["m_a", "m_b", "m_link", "l_a", "l_b", "l_link"] {
            let Value::Real(v) = t.value(0, name).unwrap() else {
                panic!("{name} should be real")
            };
            assert!(v.is_positive(), "{name} = {v} must be positive");
        }
    }

    #[test]
    fn turns_alternate_and_history_shifts() {
        let m = LbModel::build(&LbSpec::default());
        let r = smt_ltl(&m.system, &m.liveness, &CheckOptions::with_depth(10));
        let t = r.trace().unwrap();
        for step in 0..t.len() - 1 {
            assert_ne!(
                t.value(step, "turn_a"),
                t.value(step + 1, "turn_a"),
                "turns must alternate"
            );
            assert_eq!(
                t.value(step + 1, "prev_wa"),
                t.value(step, "wa_p1"),
                "history must shift"
            );
        }
    }
}
