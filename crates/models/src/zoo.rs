//! The controller zoo: transition-system builders for the controllers
//! behind the scenario factory's incident patterns.
//!
//! `k8s` models the three §3 failure modes individually; this module
//! fills in the controllers the incident study needs beyond them
//! (ROADMAP item 4 / the paper's §5 "library of models"):
//!
//! * [`canary_rollout`] — a canary/progressive-rollout controller whose
//!   bake time races the observability of a bad config (the
//!   config-canary incident pattern).
//! * [`cluster_autoscaler`] — a node autoscaler against a bin-packing
//!   descheduler, the closed loop behind autoscaler oscillation
//!   incidents.
//! * [`mesh_split_brain`] — service-mesh routing during a partition:
//!   each side's mesh keeps routing writes to its local primary, so a
//!   quorum misconfiguration yields two write targets at once.
//! * [`pdb_eviction`] — a PodDisruptionBudget-aware eviction loop: a
//!   rolling drain either honors `minAvailable` or (with PDBs ignored)
//!   cuts below it.
//!
//! Every builder returns the [`K8sModel`] pairing of system +
//! distinguished property, same as the `k8s` module, so callers can
//! hand them to any engine uniformly. These are the programmatic twins
//! of the `.vd` templates in `verdict-scenarios`: same transition
//! structure, built through the typed `verdict-ts` API instead of the
//! DSL.

use verdict_ts::{EnumSort, Expr, Ltl, Sort, System, VarKind};

use crate::k8s::{K8sModel, K8sProperty};

/// Integer ceiling division for strictly positive `b`.
fn ceil_div(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

/// Canary/progressive rollout controller (config-canary pattern).
///
/// A new config bakes on the canary until tick `promote_at`, then ships
/// fleet-wide; a bad config only becomes observable from tick
/// `detect_after`. The distinguished invariant — a bad config is never
/// promoted — holds iff `detect_after <= promote_at`.
pub fn canary_rollout(promote_at: i64, detect_after: i64) -> K8sModel {
    let window = promote_at + 2;
    let phase_sort = EnumSort::new("rollout_phase", &["canary", "promoted", "rolledback"]);
    let c = |i: u32| Expr::Const(verdict_ts::Value::Enum(phase_sort.clone(), i));
    let (canary, promoted, rolledback) = (c(0), c(1), c(2));

    let mut sys = System::new("zoo-canary-rollout");
    let phase = sys.add_var("phase", Sort::Enum(phase_sort), VarKind::State);
    let t = sys.int_var("t", 0, window);
    let bad = sys.bool_var("bad");

    sys.add_init(Expr::var(phase).eq(canary.clone()));
    sys.add_init(Expr::var(t).eq(Expr::int(0)));
    // `bad` is a frozen environment bit: free at init, constant after.
    sys.add_trans(Expr::next(bad).iff(Expr::var(bad)));
    sys.add_trans(Expr::next(t).eq(Expr::ite(
        Expr::var(t).lt(Expr::int(window)),
        Expr::var(t).add(Expr::int(1)),
        Expr::var(t),
    )));
    let detected = Expr::var(bad).and(Expr::var(t).ge(Expr::int(detect_after)));
    let bake_done = Expr::var(t).ge(Expr::int(promote_at));
    sys.add_trans(Expr::next(phase).eq(Expr::ite(
        Expr::var(phase).eq(canary.clone()),
        Expr::ite(
            detected,
            rolledback,
            Expr::ite(bake_done, promoted.clone(), canary),
        ),
        Expr::var(phase),
    )));

    let property = K8sProperty::Invariant(Expr::var(phase).eq(promoted).and(Expr::var(bad)).not());
    let model = K8sModel {
        system: sys,
        property,
    };
    model.system.check().expect("canary model type-checks");
    model
}

/// Cluster autoscaler × descheduler closed loop (oscillation pattern).
///
/// The autoscaler adds a node while per-node load exceeds `grow` units
/// and the descheduler's bin-packing removes one while it is under
/// `shrink` units, clamped to `[lo, hi]` nodes. With `shrink > grow`
/// no node count satisfies both controllers and the fleet oscillates;
/// the distinguished invariant bounds the direction-flip count at 2.
pub fn cluster_autoscaler(
    lo: i64,
    hi: i64,
    load: i64,
    grow: i64,
    shrink: i64,
    n0: i64,
) -> K8sModel {
    let step = |n: i64| -> i64 {
        if load > n * grow {
            (n + 1).min(hi)
        } else if load < n * shrink {
            (n - 1).max(lo)
        } else {
            n
        }
    };
    let mut sys = System::new("zoo-cluster-autoscaler");
    let nodes = sys.int_var("nodes", lo, hi);
    let grew = sys.bool_var("grew");
    let flips = sys.int_var("flips", 0, 4);

    sys.add_init(Expr::var(nodes).eq(Expr::int(n0)));
    sys.add_init(Expr::var(grew).not());
    sys.add_init(Expr::var(flips).eq(Expr::int(0)));

    // target = the controllers' combined step function, unrolled over
    // each concrete node count (the same closed form the simulator and
    // the scenario template use).
    let mut target = Expr::int(step(hi));
    for n in (lo..hi).rev() {
        target = Expr::ite(
            Expr::var(nodes).eq(Expr::int(n)),
            Expr::int(step(n)),
            target,
        );
    }
    let grows = target.clone().gt(Expr::var(nodes));
    let shrinks = target.clone().lt(Expr::var(nodes));
    let flip = Expr::var(grew)
        .and(shrinks.clone())
        .or(Expr::var(grew).not().and(grows.clone()));
    sys.add_trans(Expr::next(nodes).eq(target));
    sys.add_trans(Expr::next(grew).iff(Expr::ite(
        grows,
        Expr::tt(),
        Expr::ite(shrinks, Expr::ff(), Expr::var(grew)),
    )));
    sys.add_trans(Expr::next(flips).eq(Expr::ite(
        flip.and(Expr::var(flips).lt(Expr::int(4))),
        Expr::var(flips).add(Expr::int(1)),
        Expr::var(flips),
    )));

    let property = K8sProperty::Invariant(Expr::var(flips).le(Expr::int(2)));
    let model = K8sModel {
        system: sys,
        property,
    };
    model.system.check().expect("autoscaler model type-checks");
    model
}

/// Service-mesh routing during a partition (split-brain pattern).
///
/// A partition splits `members` sidecars into `side_a` and the rest for
/// `horizon` ticks; each side's mesh elects (and routes writes to) a
/// local primary iff the side holds `quorum` votes. The distinguished
/// invariant — at most one write target at a time — is violated exactly
/// when both sides reach quorum (a quorum misconfigured at or below
/// half the membership).
pub fn mesh_split_brain(members: i64, side_a: i64, quorum: i64) -> K8sModel {
    let horizon = 4i64;
    let pa = side_a >= quorum;
    let pb = (members - side_a) >= quorum;
    let mut sys = System::new("zoo-mesh-split-brain");
    let t = sys.int_var("t", 0, horizon);
    let a_primary = sys.bool_var("a_primary");
    let b_primary = sys.bool_var("b_primary");

    sys.add_init(Expr::var(t).eq(Expr::int(0)));
    sys.add_init(Expr::var(a_primary));
    sys.add_init(Expr::var(b_primary).not());
    sys.add_trans(Expr::next(t).eq(Expr::ite(
        Expr::var(t).lt(Expr::int(horizon)),
        Expr::var(t).add(Expr::int(1)),
        Expr::var(t),
    )));
    let healing = Expr::var(t).ge(Expr::int(horizon - 1));
    sys.add_trans(Expr::next(a_primary).iff(Expr::ite(
        healing.clone(),
        Expr::tt(),
        Expr::bool(pa),
    )));
    sys.add_trans(Expr::next(b_primary).iff(Expr::ite(healing, Expr::ff(), Expr::bool(pb))));

    let property = K8sProperty::Invariant(Expr::var(a_primary).and(Expr::var(b_primary)).not());
    let model = K8sModel {
        system: sys,
        property,
    };
    model.system.check().expect("mesh model type-checks");
    model
}

/// PodDisruptionBudget-aware eviction (rollout × LB pattern).
///
/// A rolling drain cycles the fleet between `replicas` and
/// `replicas - batch` healthy instances. With `respect_pdb` the
/// eviction loop refuses to disrupt below `min_available`; without it
/// the drain ignores the budget. The distinguished invariant — at
/// least `min_available` instances stay up — holds iff the budget is
/// respected or the batch never cuts below it anyway. The paired LTL
/// obligation (the fleet always returns to full strength) holds either
/// way; [`K8sModel`] carries the invariant and the LTL is returned
/// alongside.
pub fn pdb_eviction(
    replicas: i64,
    batch: i64,
    min_available: i64,
    respect_pdb: bool,
) -> (K8sModel, Ltl) {
    let unconstrained = replicas - batch;
    let floor = if respect_pdb {
        unconstrained.max(min_available)
    } else {
        unconstrained
    };
    let mut sys = System::new("zoo-pdb-eviction");
    let up = sys.int_var("up", 0, replicas);
    let draining = sys.bool_var("draining");

    sys.add_init(Expr::var(up).eq(Expr::int(replicas)));
    sys.add_init(Expr::var(draining));
    sys.add_trans(Expr::next(up).eq(Expr::ite(
        Expr::var(draining),
        Expr::ite(
            Expr::var(up).gt(Expr::int(floor)),
            Expr::var(up).sub(Expr::int(1)),
            Expr::var(up),
        ),
        Expr::ite(
            Expr::var(up).lt(Expr::int(replicas)),
            Expr::var(up).add(Expr::int(1)),
            Expr::var(up),
        ),
    )));
    sys.add_trans(Expr::next(draining).iff(Expr::ite(
        Expr::var(draining),
        Expr::var(up).sub(Expr::int(1)).gt(Expr::int(floor)),
        Expr::var(up).add(Expr::int(1)).ge(Expr::int(replicas)),
    )));

    let property = K8sProperty::Invariant(Expr::var(up).ge(Expr::int(min_available)));
    let recovers = Ltl::atom(Expr::var(up).eq(Expr::int(replicas)))
        .eventually()
        .always();
    let model = K8sModel {
        system: sys,
        property,
    };
    model.system.check().expect("pdb model type-checks");
    (model, recovers)
}

/// Closed-form safety of [`pdb_eviction`]'s invariant, for tests and
/// sweeps: the drain floor stays at or above the budget.
pub fn pdb_eviction_safe(replicas: i64, batch: i64, min_available: i64, respect_pdb: bool) -> bool {
    let floor = if respect_pdb {
        (replicas - batch).max(min_available)
    } else {
        replicas - batch
    };
    floor >= min_available && replicas >= min_available
}

/// Closed-form capacity need shared by the drain models (`ceil(load /
/// cap)` healthy instances to carry `load`).
pub fn capacity_need(load: i64, cap: i64) -> i64 {
    ceil_div(load, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_mc::prelude::*;
    use verdict_mc::Stats;

    fn invariant_verdict(model: &K8sModel, depth: usize) -> CheckResult {
        let K8sProperty::Invariant(p) = &model.property else {
            panic!("expected invariant property");
        };
        engine(EngineKind::KInduction)
            .check_invariant(
                &model.system,
                p,
                &CheckOptions::with_depth(depth),
                &mut Stats::default(),
            )
            .unwrap()
    }

    #[test]
    fn canary_detects_before_promotion_iff_window_allows() {
        assert!(invariant_verdict(&canary_rollout(4, 2), 16).holds());
        let late = invariant_verdict(&canary_rollout(3, 5), 16);
        assert!(late.trace().is_some(), "late detection promotes bad config");
    }

    #[test]
    fn autoscaler_flips_bounded_iff_thresholds_compatible() {
        // grow 4 / shrink 2 over load 10: settles at 3 nodes.
        assert!(invariant_verdict(&cluster_autoscaler(1, 8, 10, 4, 2, 1), 32).holds());
        // shrink 4 > grow 3: the 3↔4 oscillation flips forever.
        let osc = invariant_verdict(&cluster_autoscaler(1, 6, 10, 3, 4, 2), 32);
        assert!(osc.trace().is_some(), "oscillation must exceed flip budget");
    }

    #[test]
    fn mesh_split_brain_iff_double_quorum() {
        assert!(invariant_verdict(&mesh_split_brain(5, 2, 3), 16).holds());
        let split = invariant_verdict(&mesh_split_brain(5, 2, 2), 16);
        assert!(split.trace().is_some(), "quorum 2 of 5 double-elects");
    }

    #[test]
    fn pdb_protects_availability() {
        // Drain of 3/4 would cut below minAvailable 2 — the PDB refuses.
        let (honored, _) = pdb_eviction(4, 3, 2, true);
        assert!(invariant_verdict(&honored, 16).holds());
        assert!(pdb_eviction_safe(4, 3, 2, true));
        // Same drain with PDBs ignored violates the budget.
        let (ignored, _) = pdb_eviction(4, 3, 2, false);
        assert!(invariant_verdict(&ignored, 16).trace().is_some());
        assert!(!pdb_eviction_safe(4, 3, 2, false));
    }

    #[test]
    fn pdb_drain_always_recovers() {
        let (model, recovers) = pdb_eviction(4, 2, 2, true);
        let r = engine(EngineKind::Bdd)
            .check_ltl(
                &model.system,
                &recovers,
                &CheckOptions::default(),
                &mut Stats::default(),
            )
            .unwrap();
        assert!(r.holds(), "{r}");
    }
}
