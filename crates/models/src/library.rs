//! The "library of common control system and environment models" the
//! paper's §4.1 envisions, beyond the two case studies:
//!
//! * [`autoscaler`] — a horizontal autoscaler reacting to a free-moving
//!   load signal, with its minimum-replica floor as the synthesizable
//!   parameter.
//! * [`rate_limiter_retry`] — a rate limiter in front of clients that
//!   retry rejected requests: the classic metastable amplification loop
//!   (§2 lists the rate limiter among the service-layer controllers).
//! * [`bigquery_router_18037`] — an abstract model of Google ticket
//!   #18037 (§3.1): request memory pressure drives garbage-collection
//!   CPU, which a load balancer's abuse heuristic misreads, cutting the
//!   router's capacity until requests are rejected.
//!
//! Each builder returns the system plus the property whose violation is
//! the failure mode under study, ready for any engine in `verdict-mc`.

use verdict_ts::{Expr, System, VarId};

/// A built library model: system + property + interesting handles.
pub struct LibraryModel {
    /// The transition system.
    pub system: System,
    /// The safety property body (check `G property`).
    pub property: Expr,
    /// The synthesizable configuration parameter, if the model has one.
    pub parameter: Option<VarId>,
}

/// A horizontal autoscaler with replica range `1..=max_replicas`:
/// adds one replica under high load, removes one under low load, never
/// below the configured floor. Property: the serving floor of 2 replicas
/// is never breached — safe iff `min_replicas ≥ 2`.
pub fn autoscaler(max_replicas: i64) -> LibraryModel {
    assert!(max_replicas >= 2);
    let mut sys = System::new("autoscaler");
    let replicas = sys.int_var("replicas", 1, max_replicas);
    let load = sys.int_var("load", 0, 2); // environment: low/normal/high
    let min_replicas = sys.int_param("min_replicas", 1, 3);

    sys.add_init(Expr::var(replicas).eq(Expr::int(max_replicas / 2)));
    let up = Expr::ite(
        Expr::var(replicas).lt(Expr::int(max_replicas)),
        Expr::var(replicas).add(Expr::int(1)),
        Expr::var(replicas),
    );
    let down = Expr::ite(
        Expr::var(replicas).gt(Expr::var(min_replicas)),
        Expr::var(replicas).sub(Expr::int(1)),
        Expr::var(replicas),
    );
    sys.add_trans(Expr::next(replicas).eq(Expr::ite(
        Expr::var(load).eq(Expr::int(2)),
        up,
        Expr::ite(Expr::var(load).eq(Expr::int(0)), down, Expr::var(replicas)),
    )));

    let property = Expr::var(replicas).ge(Expr::int(2));
    let model = LibraryModel {
        system: sys,
        property,
        parameter: Some(min_replicas),
    };
    model.system.check().expect("autoscaler type-checks");
    model
}

/// A rate limiter feeding a retry loop: offered load is fresh demand plus
/// retries of previously rejected requests (every rejected request — by
/// the limiter or by a saturated backend — retries next round). The
/// limiter admits up to `limit`; the backend serves up to `capacity`.
///
/// The failure mode is an *under-provisioned limiter*: with
/// `limit < demand`, every round rejects `demand − limit` requests whose
/// retries add to the next round's offered load, so the backlog grows
/// without bound — the limiter meant to protect the backend starves
/// legitimate traffic into a retry storm. Property:
/// `G(retries ≤ demand_max)` — the backlog stays bounded by one round of
/// demand. Safe iff `limit ≥ demand_max` (the backend itself is
/// provisioned for peak demand here, `capacity ≥ demand_max`).
pub fn rate_limiter_retry(capacity: i64, demand_max: i64) -> LibraryModel {
    let qmax = 4 * demand_max;
    let mut sys = System::new("rate-limiter-retry");
    let demand = sys.int_var("demand", 0, demand_max); // environment
    let retries = sys.int_var("retries", 0, qmax);
    let limit = sys.int_param("limit", 1, capacity + 2);

    sys.add_init(Expr::var(retries).eq(Expr::int(0)));

    // offered = demand + retries; admitted = min(offered, limit);
    // served = min(admitted, capacity); rejected = offered - served.
    let offered = Expr::var(demand).add(Expr::var(retries));
    let admitted = Expr::ite(
        offered.clone().le(Expr::var(limit)),
        offered.clone(),
        Expr::var(limit),
    );
    let served = Expr::ite(
        admitted.clone().le(Expr::int(capacity)),
        admitted.clone(),
        Expr::int(capacity),
    );
    let rejected = offered.sub(served);
    // Next retries = rejected, clamped to the queue bound.
    let clamped = Expr::ite(
        rejected.clone().le(Expr::int(qmax)),
        rejected,
        Expr::int(qmax),
    );
    sys.add_trans(Expr::next(retries).eq(clamped));

    let property = Expr::var(retries).le(Expr::int(demand_max));
    let model = LibraryModel {
        system: sys,
        property,
        parameter: Some(limit),
    };
    model.system.check().expect("rate limiter type-checks");
    model
}

/// Google ticket #18037 (§3.1), abstracted: BigQuery "router servers"
/// proxy requests; unusually large requests raise memory use; the
/// garbage collector's CPU tracks memory pressure; a load balancer
/// interprets high CPU as abuse and reduces the router's capacity; with
/// capacity below demand, requests are rejected.
///
/// State: `pressure` (memory/GC level, follows the `large_requests`
/// environment flag), `capacity` (LB-controlled). The LB cuts capacity
/// while `pressure ≥ abuse_threshold` and restores it otherwise.
/// Property: `G(capacity ≥ demand)` — no rejected requests. Safe iff
/// the abuse threshold is above any pressure level reachable from
/// legitimate traffic (here: `abuse_threshold ≥ 4`, unreachable).
pub fn bigquery_router_18037(demand: i64) -> LibraryModel {
    let cap_max = demand + 2;
    let mut sys = System::new("bigquery-18037");
    let large_requests = sys.bool_var("large_requests"); // environment
    let pressure = sys.int_var("pressure", 0, 3);
    let capacity = sys.int_var("capacity", 0, cap_max);
    let abuse_threshold = sys.int_param("abuse_threshold", 1, 4);

    sys.add_init(Expr::var(pressure).eq(Expr::int(0)));
    sys.add_init(Expr::var(capacity).eq(Expr::int(cap_max)));

    // Memory/GC pressure rises while large requests flow, decays after.
    sys.add_trans(Expr::next(pressure).eq(Expr::ite(
        Expr::var(large_requests),
        Expr::ite(
            Expr::var(pressure).lt(Expr::int(3)),
            Expr::var(pressure).add(Expr::int(1)),
            Expr::var(pressure),
        ),
        Expr::ite(
            Expr::var(pressure).gt(Expr::int(0)),
            Expr::var(pressure).sub(Expr::int(1)),
            Expr::var(pressure),
        ),
    )));
    // The LB's abuse heuristic: throttle while pressure ≥ threshold.
    sys.add_trans(Expr::next(capacity).eq(Expr::ite(
        Expr::var(pressure).ge(Expr::var(abuse_threshold)),
        Expr::ite(
            Expr::var(capacity).gt(Expr::int(0)),
            Expr::var(capacity).sub(Expr::int(1)),
            Expr::var(capacity),
        ),
        Expr::ite(
            Expr::var(capacity).lt(Expr::int(cap_max)),
            Expr::var(capacity).add(Expr::int(1)),
            Expr::var(capacity),
        ),
    )));

    let property = Expr::var(capacity).ge(Expr::int(demand));
    let model = LibraryModel {
        system: sys,
        property,
        parameter: Some(abuse_threshold),
    };
    model.system.check().expect("18037 model type-checks");
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_mc::params::Property;
    use verdict_mc::prelude::*;
    use verdict_mc::Stats;
    use verdict_ts::Value;

    fn synth(model: &LibraryModel, depth: usize) -> Vec<i64> {
        let verifier = Verifier::new(&model.system).options(CheckOptions::with_depth(depth));
        let result = verifier
            .synthesize_params(
                &[model.parameter.expect("has parameter")],
                &Property::Invariant(model.property.clone()),
            )
            .unwrap();
        result
            .safe()
            .iter()
            .map(|v| match v[0] {
                Value::Int(n) => n,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn autoscaler_floor_synthesis() {
        let model = autoscaler(8);
        assert_eq!(synth(&model, 16), vec![2, 3]);
    }

    #[test]
    fn rate_limiter_safe_iff_limit_covers_demand() {
        // capacity 3, demand up to 2: limit 1 starves legitimate traffic
        // and the retry backlog diverges; limits 2..=5 keep it bounded.
        let model = rate_limiter_retry(3, 2);
        assert_eq!(synth(&model, 24), vec![2, 3, 4, 5]);
    }

    #[test]
    fn rate_limiter_retry_storm_trace() {
        let model = rate_limiter_retry(3, 2);
        let mut sys = model.system.clone();
        sys.add_invar(Expr::var(model.parameter.unwrap()).eq(Expr::int(1)));
        let r = engine(EngineKind::Bmc)
            .check_invariant(
                &sys,
                &model.property,
                &CheckOptions::with_depth(16),
                &mut Stats::default(),
            )
            .unwrap();
        let t = r.trace().expect("retry storm");
        // The retry backlog exceeds a full round of demand.
        let last = t.states.last().unwrap();
        let retries =
            verdict_ts::explicit::eval_state(&Expr::var(sys.var_by_name("retries").unwrap()), last);
        assert!(matches!(retries, Value::Int(n) if n > 2), "{t}");
    }

    #[test]
    fn bigquery_18037_reproduces_and_fixes() {
        // Thresholds 1..=3 are reachable by legitimate pressure: the LB
        // eventually throttles capacity below demand. Threshold 4 is
        // unreachable (pressure caps at 3): safe.
        let model = bigquery_router_18037(3);
        assert_eq!(synth(&model, 32), vec![4]);

        // The violating trace walks the incident's causal chain: large
        // requests -> pressure -> throttling -> capacity < demand.
        let mut sys = model.system.clone();
        sys.add_invar(Expr::var(model.parameter.unwrap()).eq(Expr::int(2)));
        let r = engine(EngineKind::Bmc)
            .check_invariant(
                &sys,
                &model.property,
                &CheckOptions::with_depth(16),
                &mut Stats::default(),
            )
            .unwrap();
        let t = r.trace().expect("incident reproduces");
        let pressure_peaked =
            (0..t.len()).any(|s| matches!(t.value(s, "pressure"), Some(Value::Int(n)) if *n >= 2));
        assert!(pressure_peaked, "{t}");
    }
}
