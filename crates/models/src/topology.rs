//! Network topologies: generic graphs, the paper's 5-node "test" topology
//! (Fig. 5), and the fat-tree family used for the Fig. 6 scalability sweep.

/// An undirected network topology. Nodes are dense indices; links are
/// stored once with `a < b`.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Human-readable name (shows up in benchmark output).
    pub name: String,
    /// Node display names.
    pub nodes: Vec<String>,
    /// Undirected links as `(a, b)` with `a < b`.
    pub links: Vec<(usize, usize)>,
    /// The front-end node distributing requests.
    pub front_end: usize,
    /// Nodes running the service.
    pub service_nodes: Vec<usize>,
}

impl Topology {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Adjacency: links incident to `n`, as `(link index, neighbor)`.
    pub fn incident(&self, n: usize) -> Vec<(usize, usize)> {
        self.links
            .iter()
            .enumerate()
            .filter_map(|(i, &(a, b))| {
                if a == n {
                    Some((i, b))
                } else if b == n {
                    Some((i, a))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Graph diameter via BFS from every node (links all alive). Used to
    /// bound the reachability-expansion depth in the rollout model.
    pub fn diameter(&self) -> usize {
        let n = self.num_nodes();
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &self.links {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut worst = 0;
        for s in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[s] = 0;
            let mut q = std::collections::VecDeque::from([s]);
            while let Some(v) = q.pop_front() {
                for &w in &adj[v] {
                    if dist[w] == usize::MAX {
                        dist[w] = dist[v] + 1;
                        q.push_back(w);
                    }
                }
            }
            for &d in &dist {
                if d != usize::MAX {
                    worst = worst.max(d);
                }
            }
        }
        worst
    }

    /// Validates internal invariants (indices in range, no self-loops,
    /// no duplicate links, front-end not a service node).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_nodes();
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &self.links {
            if a >= b {
                return Err(format!("link ({a},{b}) not normalized"));
            }
            if b >= n {
                return Err(format!("link ({a},{b}) out of range"));
            }
            if !seen.insert((a, b)) {
                return Err(format!("duplicate link ({a},{b})"));
            }
        }
        if self.front_end >= n {
            return Err("front-end out of range".to_string());
        }
        for &s in &self.service_nodes {
            if s >= n {
                return Err(format!("service node {s} out of range"));
            }
            if s == self.front_end {
                return Err("front-end cannot be a service node".to_string());
            }
        }
        Ok(())
    }

    /// The paper's Fig. 5 "test" topology: 5 nodes, 5 links, one
    /// front-end and 4 service nodes (Fig. 6 labels it `test 5,5,4`).
    ///
    /// The exact link layout is not printed in the paper; this layout is
    /// chosen (by exhaustive search over all 5-link graphs) to reproduce
    /// every published outcome: with `p = m = 1, k = 2` the property
    /// fails through the Fig. 5 progression (two cuts bring `available`
    /// to 1, taking that last node down for update brings it to 0), two
    /// cuts alone never zero it, and for `k = 1, m = 1` the safe
    /// non-zero rollout widths are exactly `p ∈ {1, 2}` (§4.2).
    pub fn test_topology() -> Topology {
        // fe=0; service nodes 1..=4. Links: 0-1, 0-2, 0-3, 1-2, 1-4.
        let t = Topology {
            name: "test".to_string(),
            nodes: vec![
                "fe".to_string(),
                "s1".to_string(),
                "s2".to_string(),
                "s3".to_string(),
                "s4".to_string(),
            ],
            links: vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 4)],
            front_end: 0,
            service_nodes: vec![1, 2, 3, 4],
        };
        debug_assert!(t.validate().is_ok());
        t
    }

    /// A `k`-ary fat tree (`k` even): `(k/2)²` core switches, `k` pods of
    /// `k/2` aggregation and `k/2` edge switches each. One edge switch is
    /// the front-end; every other edge switch is a service node — exactly
    /// the Fig. 6 setup ("in each topology one leaf is the front-end and
    /// all other leaves are service nodes").
    ///
    /// Sizes match the paper's labels: fat-tree(4) = 20 nodes / 32 links /
    /// 7 service nodes, fat-tree(12) = 180 / 864 / 71.
    pub fn fat_tree(k: usize) -> Topology {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
        let half = k / 2;
        let num_core = half * half;
        let num_agg = k * half;
        let num_edge = k * half;
        let mut nodes = Vec::with_capacity(num_core + num_agg + num_edge);
        for c in 0..num_core {
            nodes.push(format!("core{c}"));
        }
        for p in 0..k {
            for a in 0..half {
                nodes.push(format!("agg{p}_{a}"));
            }
        }
        for p in 0..k {
            for e in 0..half {
                nodes.push(format!("edge{p}_{e}"));
            }
        }
        let core = |i: usize| i;
        let agg = |pod: usize, i: usize| num_core + pod * half + i;
        let edge = |pod: usize, i: usize| num_core + num_agg + pod * half + i;

        let mut links = Vec::new();
        // Core ↔ aggregation: core (i, j) connects to agg j of every pod.
        for j in 0..half {
            for i in 0..half {
                let c = core(j * half + i);
                for pod in 0..k {
                    let a = agg(pod, j);
                    links.push((c.min(a), c.max(a)));
                }
            }
        }
        // Aggregation ↔ edge, complete bipartite within each pod.
        for pod in 0..k {
            for a in 0..half {
                for e in 0..half {
                    let x = agg(pod, a);
                    let y = edge(pod, e);
                    links.push((x.min(y), x.max(y)));
                }
            }
        }
        links.sort_unstable();
        links.dedup();

        let front_end = edge(0, 0);
        let service_nodes: Vec<usize> = (0..k)
            .flat_map(|pod| (0..half).map(move |e| edge(pod, e)))
            .filter(|&n| n != front_end)
            .collect();
        let t = Topology {
            name: format!("fattree{k}"),
            nodes,
            links,
            front_end,
            service_nodes,
        };
        debug_assert!(t.validate().is_ok(), "{:?}", t.validate());
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_topology_shape() {
        let t = Topology::test_topology();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_links(), 5);
        assert_eq!(t.service_nodes.len(), 4);
        t.validate().unwrap();
        assert_eq!(t.incident(0).len(), 3);
    }

    #[test]
    fn fat_tree_sizes_match_paper_labels() {
        // (k, nodes, links, service) from Fig. 6's captions. The paper
        // prints 265 links for fattree8; the standard construction gives
        // k³/2 = 256 (the 265 is inconsistent with every other size in
        // the figure, see EXPERIMENTS.md).
        let expect = [
            (4usize, 20usize, 32usize, 7usize),
            (6, 45, 108, 17),
            (8, 80, 256, 31),
            (10, 125, 500, 49),
            (12, 180, 864, 71),
        ];
        for (k, nodes, links, service) in expect {
            let t = Topology::fat_tree(k);
            assert_eq!(t.num_nodes(), nodes, "fattree{k} nodes");
            assert_eq!(t.num_links(), links, "fattree{k} links");
            assert_eq!(t.service_nodes.len(), service, "fattree{k} service");
            t.validate().unwrap();
        }
    }

    #[test]
    fn fat_tree_is_connected_with_small_diameter() {
        for k in [2usize, 4, 6] {
            let t = Topology::fat_tree(k);
            let d = t.diameter();
            assert!(d <= 4, "fat-tree diameter is ≤ 4, got {d}");
            // Connectivity: diameter computation covered all nodes; spot
            // check via incident lists being nonempty.
            for n in 0..t.num_nodes() {
                assert!(!t.incident(n).is_empty(), "isolated node {n}");
            }
        }
    }

    #[test]
    fn validate_rejects_bad_graphs() {
        let mut t = Topology::test_topology();
        t.links.push((3, 3));
        assert!(t.validate().is_err());
        let mut t = Topology::test_topology();
        t.links.push((0, 1));
        assert!(t.validate().is_err());
        let mut t = Topology::test_topology();
        t.service_nodes.push(0);
        assert!(t.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_fat_tree_rejected() {
        let _ = Topology::fat_tree(3);
    }
}
