//! Case study 1: update rollout + network partition (paper §4.2).
//!
//! A service runs on the service nodes of a [`Topology`]; the front-end
//! distributes requests. A rollout controller takes service nodes down
//! for update (at most `p` simultaneously, nondeterministic order), and
//! up to `k` links fail at nondeterministic points. A recomputation loop
//! tracks front-end reachability; `converged` holds when its view matches
//! the true topology. The safety property is the paper's
//!
//! ```text
//! G(converged → available ≥ m)
//! ```
//!
//! with `available` = number of service nodes that are up and reachable,
//! and `p`, `k`, `m` frozen (symbolic) configuration parameters.

use verdict_ts::{Expr, System, VarId};

use crate::topology::Topology;

/// Model-construction knobs.
#[derive(Clone, Debug)]
pub struct RolloutSpec {
    /// The network.
    pub topology: Topology,
    /// Upper bound of the `p` parameter's range (`p ∈ 0..=p_max`).
    pub p_max: i64,
    /// Upper bound of the `k` parameter's range.
    pub k_max: i64,
    /// Upper bound of the `m` parameter's range.
    pub m_max: i64,
    /// Model the asynchronous reachability-recomputation loop with
    /// free-running `reach` state variables and a derived `converged`
    /// flag (the paper's model). With `false`, `reach` is definitional
    /// and `converged` is constantly true — a smaller "direct" variant
    /// used for ablation.
    pub recompute_loop: bool,
    /// Limit how many link failures may *newly* occur per transition
    /// (`None` = unbounded, the default). `Some(1)` forces gradual
    /// executions and yields step-by-step counterexamples shaped like the
    /// paper's Fig. 5 storyboard instead of everything-at-once shortest
    /// traces.
    pub max_new_failures_per_step: Option<i64>,
}

impl RolloutSpec {
    /// The paper's configuration for a given topology: parameter ranges
    /// wide enough for the Fig. 5/6 experiments.
    pub fn paper(topology: Topology) -> RolloutSpec {
        let service = topology.service_nodes.len() as i64;
        RolloutSpec {
            topology,
            p_max: 3.min(service),
            k_max: 6,
            m_max: 3.min(service),
            recompute_loop: true,
            max_new_failures_per_step: None,
        }
    }

    /// The paper configuration with gradual failures (at most one new
    /// link failure per step) — produces Fig. 5-storyboard traces.
    pub fn paper_gradual(topology: Topology) -> RolloutSpec {
        RolloutSpec {
            max_new_failures_per_step: Some(1),
            ..RolloutSpec::paper(topology)
        }
    }
}

/// The constructed model: system plus handles to its pieces.
pub struct RolloutModel {
    /// The parametric transition system.
    pub system: System,
    /// Frozen parameter: max nodes simultaneously down.
    pub p: VarId,
    /// Frozen parameter: max link failures.
    pub k: VarId,
    /// Frozen parameter: required available service nodes.
    pub m: VarId,
    /// Per-service-node `down` flags (parallel to
    /// `spec.topology.service_nodes`).
    pub down: Vec<VarId>,
    /// Per-service-node `updated` flags.
    pub updated: Vec<VarId>,
    /// Per-link `failed` flags.
    pub failed: Vec<VarId>,
    /// The `converged` state predicate.
    pub converged: Expr,
    /// The `available` count expression **as the controllers see it**
    /// (through the possibly-lagging reachability view).
    pub available: Expr,
    /// The ground-truth availability (up ∧ actually reachable),
    /// independent of the recomputation loop's lag.
    pub true_available: Expr,
    /// The safety property body: `converged → available ≥ m`.
    pub property: Expr,
}

impl RolloutModel {
    /// Builds the model from a spec.
    ///
    /// Fails with a diagnostic if the topology is malformed (duplicate or
    /// out-of-range links, bad front-end index, ...) or the constructed
    /// system does not type-check, instead of panicking deep inside a
    /// sweep or API caller.
    pub fn build(spec: &RolloutSpec) -> Result<RolloutModel, String> {
        let topo = &spec.topology;
        topo.validate()
            .map_err(|e| format!("invalid topology `{}`: {e}", topo.name))?;
        let mut sys = System::new(&format!("rollout-{}", topo.name));

        let p = sys.int_param("p", 0, spec.p_max);
        let k = sys.int_param("k", 0, spec.k_max);
        let m = sys.int_param("m", 0, spec.m_max);

        let service = &topo.service_nodes;
        let down: Vec<VarId> = service
            .iter()
            .map(|&n| sys.bool_var(&format!("down_{}", topo.nodes[n])))
            .collect();
        let updated: Vec<VarId> = service
            .iter()
            .map(|&n| sys.bool_var(&format!("updated_{}", topo.nodes[n])))
            .collect();
        let failed: Vec<VarId> = topo
            .links
            .iter()
            .map(|&(a, b)| sys.bool_var(&format!("failed_{}_{}", topo.nodes[a], topo.nodes[b])))
            .collect();

        // True reachability of each node from the front-end, as a layered
        // expansion: reach⁰ = {fe}; reachᵈ⁺¹(i) = reachᵈ(i) ∨
        // (∃ live link (i,j): reachᵈ(j)). A node being updated stops
        // *serving* but keeps *forwarding* (the update restarts the
        // service process, not the switch), so only link failures affect
        // connectivity. Depth n-1 suffices for any residual graph; shared
        // Rc subtrees keep the DAG compact.
        let mut layer: Vec<Expr> = (0..topo.num_nodes())
            .map(|i| Expr::bool(i == topo.front_end))
            .collect();
        for _ in 0..topo.num_nodes().saturating_sub(1) {
            let mut next_layer = Vec::with_capacity(layer.len());
            for i in 0..topo.num_nodes() {
                // Built with the non-flattening pair constructors: the
                // layers form a deep shared DAG and flattening would copy
                // child vectors quadratically.
                let mut grow = Expr::ff();
                for (l, j) in topo.incident(i) {
                    let hop = Expr::and_pair(Expr::var(failed[l]).not(), layer[j].clone());
                    grow = Expr::or_pair(grow, hop);
                }
                next_layer.push(Expr::or_pair(layer[i].clone(), grow));
            }
            layer = next_layer;
        }
        let true_reach: Vec<Expr> = service.iter().map(|&n| layer[n].clone()).collect();

        // INIT: nothing down, nothing updated, nothing failed.
        for &d in &down {
            sys.add_init(Expr::var(d).not());
        }
        for &u in &updated {
            sys.add_init(Expr::var(u).not());
        }
        for &f in &failed {
            sys.add_init(Expr::var(f).not());
        }

        // TRANS: link failures are permanent; rollout state machine.
        for &f in &failed {
            sys.add_trans(Expr::var(f).implies(Expr::next(f)));
        }
        if let Some(max_new) = spec.max_new_failures_per_step {
            // Gradual executions: at most `max_new` fresh failures per
            // transition.
            let fresh = Expr::count_true(
                failed
                    .iter()
                    .map(|&f| Expr::next(f).and(Expr::var(f).not())),
            );
            sys.add_trans(fresh.le(Expr::int(max_new)));
        }
        for i in 0..down.len() {
            let (d, u) = (down[i], updated[i]);
            // Updated nodes stay up and updated.
            sys.add_trans(Expr::var(u).implies(Expr::next(u).and(Expr::next(d).not())));
            // Coming back up completes the update.
            sys.add_trans(
                Expr::next(u).iff(Expr::var(u).or(Expr::var(d).and(Expr::next(d).not()))),
            );
            // Fresh downs only for not-yet-updated nodes.
            sys.add_trans(Expr::next(d).implies(Expr::var(d).or(Expr::var(u).not())));
        }

        // INVAR: rollout width and failure budget.
        let downs = Expr::count_true(down.iter().map(|&d| Expr::var(d)));
        sys.add_invar(downs.le(Expr::var(p)));
        let fails = Expr::count_true(failed.iter().map(|&f| Expr::var(f)));
        sys.add_invar(fails.le(Expr::var(k)));

        // Reachability view and convergence.
        let (converged, reach_view): (Expr, Vec<Expr>) = if spec.recompute_loop {
            let reach_vars: Vec<VarId> = service
                .iter()
                .map(|&n| sys.bool_var(&format!("reach_{}", topo.nodes[n])))
                .collect();
            // The loop starts converged (nothing failed or down yet, and
            // the paper's topologies are connected).
            for (&rv, te) in reach_vars.iter().zip(&true_reach) {
                // INIT: view matches truth in the initial state. Since the
                // initial truth is "connected", and INIT pins all inputs,
                // equate view with the expression directly.
                sys.add_init(Expr::var(rv).iff(te.clone()));
            }
            // No TRANS constraint: the recomputation loop may lag
            // arbitrarily (free-running view).
            let conv = Expr::and_all(
                reach_vars
                    .iter()
                    .zip(&true_reach)
                    .map(|(&rv, te)| Expr::var(rv).iff(te.clone())),
            );
            let view = reach_vars.iter().map(|&rv| Expr::var(rv)).collect();
            (conv, view)
        } else {
            (Expr::tt(), true_reach.clone())
        };

        // available = #{service node : up ∧ reachable-in-view}.
        let available = Expr::count_true(
            down.iter()
                .zip(&reach_view)
                .map(|(&d, rv)| Expr::var(d).not().and(rv.clone())),
        );
        let true_available = Expr::count_true(
            down.iter()
                .zip(&true_reach)
                .map(|(&d, te)| Expr::var(d).not().and(te.clone())),
        );
        let property = converged
            .clone()
            .implies(available.clone().ge(Expr::var(m)));

        let model = RolloutModel {
            system: sys,
            p,
            k,
            m,
            down,
            updated,
            failed,
            converged,
            available,
            true_available,
            property,
        };
        model
            .system
            .check()
            .map_err(|e| format!("rollout model does not type-check: {e}"))?;
        Ok(model)
    }

    /// A copy of the system with `p`, `k`, `m` pinned to concrete values —
    /// the unit of work for the Fig. 6 sweep.
    pub fn pinned(&self, p: i64, k: i64, m: i64) -> System {
        // INVAR (not INIT) so the pin also constrains engines that explore
        // free starting states, like k-induction's step case. For frozen
        // variables the two are equivalent on real executions.
        let mut sys = self.system.clone();
        sys.add_invar(Expr::var(self.p).eq(Expr::int(p)));
        sys.add_invar(Expr::var(self.k).eq(Expr::int(k)));
        sys.add_invar(Expr::var(self.m).eq(Expr::int(m)));
        sys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_mc::prelude::*;
    use verdict_mc::Stats;

    /// Trait dispatch with a scratch stats sink.
    fn inv(kind: EngineKind, sys: &System, p: &Expr, opts: &CheckOptions) -> CheckResult {
        engine(kind)
            .check_invariant(sys, p, opts, &mut Stats::default())
            .unwrap()
    }
    use verdict_ts::Value;

    fn test_model(recompute: bool) -> RolloutModel {
        let mut spec = RolloutSpec::paper(Topology::test_topology());
        spec.recompute_loop = recompute;
        RolloutModel::build(&spec).expect("test topology is valid")
    }

    #[test]
    fn invalid_topology_is_an_error_not_a_panic() {
        let mut topo = Topology::test_topology();
        topo.links.push((0, 99)); // out-of-range endpoint
        let err = match RolloutModel::build(&RolloutSpec::paper(topo)) {
            Err(e) => e,
            Ok(_) => panic!("expected a build error"),
        };
        assert!(err.contains("invalid topology"), "{err}");
    }

    #[test]
    fn builds_and_type_checks() {
        for recompute in [false, true] {
            let m = test_model(recompute);
            assert!(m.system.check().is_ok());
            assert_eq!(m.down.len(), 4);
            assert_eq!(m.failed.len(), 5);
        }
    }

    #[test]
    fn paper_counterexample_p1_k2_m1() {
        // Fig. 5: p = m = 1, k = 2 violates the property.
        let model = test_model(true);
        let sys = model.pinned(1, 2, 1);
        let r = inv(
            EngineKind::Bmc,
            &sys,
            &model.property,
            &CheckOptions::with_depth(8),
        );
        let t = r.trace().expect("violated, as in the paper's Fig. 5");
        // The violating state has fewer available nodes than m = 1.
        let last = t.states.last().unwrap();
        let avail = verdict_ts::explicit::eval_state(&model.available, last);
        assert_eq!(avail, Value::Int(0), "available must be 0:\n{t}");
    }

    #[test]
    fn safe_when_no_failures_and_no_rollout() {
        // p = 0, k = 0, m = 1: no node ever goes down, no link fails;
        // 4 available forever.
        let model = test_model(true);
        let sys = model.pinned(0, 0, 1);
        let r = inv(
            EngineKind::KInduction,
            &sys,
            &model.property,
            &CheckOptions::with_depth(12),
        );
        assert!(r.holds(), "{r}");
    }

    #[test]
    fn direct_variant_matches_loop_variant_on_verdicts() {
        // For pinned (p, k, m), the direct (always-converged) variant and
        // the recompute-loop variant agree on whether the property can be
        // violated: the loop only adds stutter states.
        for (p, k, m, expect_violation) in [
            (1, 2, 1, true),
            (0, 0, 1, false),
            (1, 0, 3, false),
            (2, 0, 3, true),
        ] {
            let with_loop = test_model(true);
            let direct = test_model(false);
            let r1 = inv(
                EngineKind::Bmc,
                &with_loop.pinned(p, k, m),
                &with_loop.property,
                &CheckOptions::with_depth(8),
            );
            let r2 = inv(
                EngineKind::Bmc,
                &direct.pinned(p, k, m),
                &direct.property,
                &CheckOptions::with_depth(8),
            );
            assert_eq!(
                r1.violated(),
                expect_violation,
                "loop variant (p={p},k={k},m={m})"
            );
            assert_eq!(
                r2.violated(),
                expect_violation,
                "direct variant (p={p},k={k},m={m})"
            );
        }
    }

    #[test]
    fn rollout_eventually_updates_under_progress() {
        // Sanity of the rollout state machine: a node that goes down and
        // comes back is updated; updated nodes never go down again.
        let model = test_model(false);
        let sys = model.pinned(1, 0, 0);
        // Violation of "updated_s1 is never true" shows updates do happen.
        let never_updated = Expr::var(model.updated[0]).not();
        let r = inv(
            EngineKind::Bmc,
            &sys,
            &never_updated,
            &CheckOptions::with_depth(6),
        );
        assert!(r.violated(), "s1 can be updated");
        // An updated node that is down again would violate the machine.
        let bad = Expr::var(model.updated[0]).and(Expr::var(model.down[0]));
        let r = inv(
            EngineKind::KInduction,
            &sys,
            &bad.not(),
            &CheckOptions::with_depth(10),
        );
        assert!(r.holds(), "updated implies up: {r}");
    }

    #[test]
    fn gradual_variant_produces_storyboard_trace() {
        // With ≤ 1 new failure per step, the Fig. 5 counterexample
        // unfolds gradually: available degrades over several steps
        // instead of collapsing in one transition.
        let spec = RolloutSpec::paper_gradual(Topology::test_topology());
        let model = RolloutModel::build(&spec).expect("valid topology");
        let sys = model.pinned(1, 2, 1);
        let r = inv(
            EngineKind::Bmc,
            &sys,
            &model.property,
            &CheckOptions::with_depth(8),
        );
        let t = r.trace().expect("still violated, just gradually");
        assert!(t.len() >= 3, "gradual trace has ≥ 2 failure steps:\n{t}");
        // No step introduces more than one new failure.
        for w in t.states.windows(2) {
            let count = |s: &Vec<verdict_ts::Value>| {
                model
                    .failed
                    .iter()
                    .filter(|&&f| s[f.index()] == Value::Bool(true))
                    .count()
            };
            assert!(count(&w[1]) <= count(&w[0]) + 1, "{t}");
        }
    }

    #[test]
    fn synthesis_reproduces_paper_p_in_1_2() {
        // Paper: "say we are interested in finding safe non-zero values
        // for p, given the property and k = 1, m = 1. The system suggests
        // p ∈ {1, 2}." With 4 service nodes, m = 1 needs ≥ 1 available:
        // k = 1 link failure can cut off at most one... (test topology)
        // p ∈ {1, 2} keeps one node up and reachable; p = 3 can leave only
        // one node up which a single failure can then isolate.
        let model = test_model(true);
        let mut sys = model.system.clone();
        sys.add_invar(Expr::var(model.k).eq(Expr::int(1)));
        sys.add_invar(Expr::var(model.m).eq(Expr::int(1)));
        let verifier = verdict_mc::Verifier::new(&sys).options(CheckOptions::with_depth(16));
        let prop = verdict_mc::params::Property::Invariant(model.property.clone());
        let result = verifier.synthesize_params(&[model.p], &prop).unwrap();
        let safe: Vec<i64> = result
            .safe()
            .iter()
            .map(|vals| match vals[0] {
                Value::Int(n) => n,
                _ => unreachable!(),
            })
            .filter(|&n| n > 0)
            .collect();
        assert_eq!(safe, vec![1, 2], "{result}");
    }
}
