//! Kubernetes failure-mode models (paper §3.2 / §3.3).
//!
//! Three finite models of real controller interaction bugs, each returning
//! the system together with the property whose violation exhibits the bug:
//!
//! * [`taint_loop`] — issue #75913: the deployment controller keeps
//!   creating pods that the taint manager keeps evicting, forever.
//! * [`hpa_ruc`] — issue #90461: a rolling-update controller with
//!   `maxSurge = 1` and an HPA that mistakes the surged *current* replica
//!   count for the *expected* count feed each other until the replica
//!   count runs away.
//! * [`descheduler_oscillation`] — §3.3: a `LowNodeUtilization`
//!   descheduler whose eviction threshold (45% CPU) sits below the pod's
//!   request (50%) bounces the pod between two workers forever — the
//!   model-checking twin of the paper's Fig. 2 cluster experiment.

use verdict_ts::{EnumSort, Expr, Ltl, Sort, System, VarKind};

/// A built model plus its property.
pub struct K8sModel {
    /// The transition system.
    pub system: System,
    /// The property expected to be violated (the bug).
    pub property: K8sProperty,
}

/// The property kind per model.
pub enum K8sProperty {
    /// Safety `G p`: violation is a finite trace.
    Invariant(Expr),
    /// Liveness: violation is a lasso.
    Ltl(Ltl),
}

/// Issue #75913: deployment controller × taint manager.
///
/// A deployment wants one replica; the only schedulable node is tainted
/// `NoExecute`. Pod lifecycle: the deployment controller creates a pod
/// (`none → pending`), the scheduler binds it to the tainted node
/// (`pending → running`), the taint manager evicts it
/// (`running → none`), and the controller acts again — a livelock. The
/// violated property is `F G (pod = running)`: the pod never stays up.
pub fn taint_loop() -> K8sModel {
    let phase = EnumSort::new("pod_phase", &["none", "pending", "running"]);
    let c = |i: u32| Expr::Const(verdict_ts::Value::Enum(phase.clone(), i));
    let (none, pending, running) = (c(0), c(1), c(2));

    let mut sys = System::new("k8s-taint-loop");
    let pod = sys.add_var("pod", Sort::Enum(phase.clone()), VarKind::State);
    let node_tainted = sys.bool_var("node_tainted");

    sys.add_init(Expr::var(pod).eq(none.clone()));
    sys.add_init(Expr::var(node_tainted));
    // The taint never goes away (the misconfiguration under study).
    sys.add_trans(Expr::next(node_tainted).iff(Expr::var(node_tainted)));
    // Deployment controller: missing replica -> create.
    sys.add_trans(
        Expr::var(pod)
            .eq(none.clone())
            .implies(Expr::next(pod).eq(pending.clone())),
    );
    // Scheduler binds pending pods (taints do not influence scheduling in
    // the buggy configuration — that is the point of the issue).
    sys.add_trans(
        Expr::var(pod)
            .eq(pending.clone())
            .implies(Expr::next(pod).eq(running.clone())),
    );
    // Taint manager evicts running pods from tainted nodes.
    sys.add_trans(Expr::var(pod).eq(running.clone()).implies(Expr::ite(
        Expr::var(node_tainted),
        Expr::next(pod).eq(none),
        Expr::next(pod).eq(running.clone()),
    )));

    let property = K8sProperty::Ltl(Ltl::atom(Expr::var(pod).eq(running)).always().eventually());
    let model = K8sModel {
        system: sys,
        property,
    };
    model.system.check().expect("taint model type-checks");
    model
}

/// Issue #90461: rolling-update controller (`maxSurge = 1`) × buggy HPA.
///
/// `expected` is the deployment's desired replica count, `current` the
/// live count. During a rollout the RUC may surge `current` up to
/// `expected + maxSurge`. The buggy HPA then reads the surged `current`
/// and stores it back as `expected` ("basically returning the 'expected'
/// number of pods as the 'current' number of pods"). The two feed each
/// other: `G(current ≤ bound)` is violated for any bound below the
/// representable maximum.
pub fn hpa_ruc(max_surge: i64, bound: i64) -> K8sModel {
    let cap = bound + max_surge + 2;
    let mut sys = System::new("k8s-hpa-ruc");
    let expected = sys.int_var("expected", 1, cap);
    let current = sys.int_var("current", 1, cap);
    let rolling = sys.bool_var("rolling_update");

    sys.add_init(Expr::var(expected).eq(Expr::int(1)));
    sys.add_init(Expr::var(current).eq(Expr::int(1)));

    // Rolling update may start/stop nondeterministically (no constraint
    // on `rolling`' — free).
    // RUC: while rolling, current may surge to expected + maxSurge
    // (capped by the domain); otherwise current tracks expected.
    let surged = Expr::var(expected).add(Expr::int(max_surge));
    let clamp = |e: Expr| Expr::ite(e.clone().le(Expr::int(cap)), e, Expr::int(cap));
    sys.add_trans(Expr::ite(
        Expr::var(rolling),
        Expr::next(current)
            .eq(clamp(surged))
            .or(Expr::next(current).eq(Expr::var(expected))),
        Expr::next(current).eq(Expr::var(expected)),
    ));
    // Buggy HPA: expected' = current (reads the surged count as demand).
    sys.add_trans(Expr::next(expected).eq(Expr::var(current)));

    let property = K8sProperty::Invariant(Expr::var(current).le(Expr::int(bound)));
    let model = K8sModel {
        system: sys,
        property,
    };
    model.system.check().expect("hpa model type-checks");
    model
}

/// §3.3 descheduler oscillation (model twin of the Fig. 2 experiment).
///
/// One CPU-heavy pod (request = `request_pct`% of a node) and two equal
/// workers. The scheduler places pending pods on the least-utilized
/// worker; the `LowNodeUtilization` descheduler, running on its own
/// period, evicts pods from any node whose utilization exceeds
/// `evict_threshold_pct`%. With `request > threshold` (the paper's
/// 50% vs 45%) every placement is immediately evictable: the pod bounces
/// between the workers forever and `F G placed-somewhere-steadily` fails.
pub fn descheduler_oscillation(request_pct: i64, evict_threshold_pct: i64) -> K8sModel {
    let loc = EnumSort::new("pod_node", &["pending", "w2", "w3"]);
    let c = |i: u32| Expr::Const(verdict_ts::Value::Enum(loc.clone(), i));
    let (pending, w2, w3) = (c(0), c(1), c(2));

    let mut sys = System::new("k8s-descheduler");
    let pod = sys.add_var("pod", Sort::Enum(loc.clone()), VarKind::State);
    // Which worker the scheduler currently ranks lowest (alternates as
    // utilization moves with the pod).
    let last_evicted_w2 = sys.bool_var("last_evicted_from_w2");

    sys.add_init(Expr::var(pod).eq(pending.clone()));

    // Utilization: the pod is the only load; a worker hosting it sits at
    // `request_pct`, the other at 0. The descheduler evicts iff
    // utilization > threshold.
    let evictable = request_pct > evict_threshold_pct;

    // Scheduler: pending pod goes to the least-utilized worker — the one
    // it was *not* just evicted from (both empty ⇒ pick w2).
    sys.add_trans(Expr::var(pod).eq(pending.clone()).implies(Expr::ite(
        Expr::var(last_evicted_w2),
        Expr::next(pod).eq(w3.clone()),
        Expr::next(pod).eq(w2.clone()),
    )));
    // Descheduler cron: a placed pod on an over-threshold node is evicted
    // on the next tick; otherwise it stays.
    for (here, flag_value) in [(w2.clone(), true), (w3.clone(), false)] {
        if evictable {
            sys.add_trans(
                Expr::var(pod).eq(here.clone()).implies(
                    Expr::next(pod)
                        .eq(pending.clone())
                        .and(Expr::next(last_evicted_w2).eq(Expr::bool(flag_value))),
                ),
            );
        } else {
            sys.add_trans(
                Expr::var(pod)
                    .eq(here.clone())
                    .implies(Expr::next(pod).eq(here)),
            );
        }
    }
    // The eviction memory only changes on eviction.
    sys.add_trans(
        Expr::var(pod)
            .eq(pending.clone())
            .implies(Expr::next(last_evicted_w2).eq(Expr::var(last_evicted_w2))),
    );
    if !evictable {
        sys.add_trans(Expr::next(last_evicted_w2).eq(Expr::var(last_evicted_w2)));
    }

    // Liveness: eventually the pod settles on some worker.
    let settled_w2 = Ltl::atom(Expr::var(pod).eq(w2)).always();
    let settled_w3 = Ltl::atom(Expr::var(pod).eq(w3)).always();
    let property = K8sProperty::Ltl(settled_w2.or(settled_w3).eventually());
    let model = K8sModel {
        system: sys,
        property,
    };
    model.system.check().expect("descheduler model type-checks");
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_mc::prelude::*;
    use verdict_mc::Stats;

    /// Trait dispatch for LTL with a scratch stats sink.
    fn ltl_check(kind: EngineKind, sys: &System, phi: &Ltl, opts: &CheckOptions) -> CheckResult {
        engine(kind)
            .check_ltl(sys, phi, opts, &mut Stats::default())
            .unwrap()
    }

    fn check(model: &K8sModel, opts: &CheckOptions) -> verdict_mc::CheckResult {
        match &model.property {
            K8sProperty::Invariant(p) => engine(EngineKind::Bmc)
                .check_invariant(&model.system, p, opts, &mut Stats::default())
                .unwrap(),
            K8sProperty::Ltl(phi) => ltl_check(EngineKind::Bmc, &model.system, phi, opts),
        }
    }

    #[test]
    fn taint_loop_livelocks() {
        let m = taint_loop();
        let r = check(&m, &CheckOptions::with_depth(10));
        let t = r.trace().expect("pod never stays running");
        assert!(t.loop_back.is_some(), "lasso:\n{t}");
        // The loop cycles through creation and eviction: the pod is
        // `none` somewhere in the loop and `running` somewhere.
        let l = t.loop_back.unwrap();
        let phases: Vec<String> = (l..t.len()).map(|s| t.states[s][0].to_string()).collect();
        assert!(phases.contains(&"none".to_string()), "{phases:?}");
        assert!(phases.contains(&"running".to_string()), "{phases:?}");
    }

    #[test]
    fn taint_loop_fixed_by_untainting() {
        // The same lifecycle without the taint: the pod settles on
        // `running` and BDD proves the liveness property.
        let mut fixed = System::new("k8s-taint-fixed");
        let phase = EnumSort::new("pod_phase", &["none", "pending", "running"]);
        let c = |i: u32| Expr::Const(verdict_ts::Value::Enum(phase.clone(), i));
        let pod = fixed.add_var("pod", Sort::Enum(phase.clone()), VarKind::State);
        fixed.add_init(Expr::var(pod).eq(c(0)));
        fixed.add_trans(Expr::var(pod).eq(c(0)).implies(Expr::next(pod).eq(c(1))));
        fixed.add_trans(Expr::var(pod).eq(c(1)).implies(Expr::next(pod).eq(c(2))));
        fixed.add_trans(Expr::var(pod).eq(c(2)).implies(Expr::next(pod).eq(c(2))));
        let phi = Ltl::atom(Expr::var(pod).eq(c(2))).always().eventually();
        let r = ltl_check(EngineKind::Bdd, &fixed, &phi, &CheckOptions::default());
        assert!(r.holds(), "{r}");
    }

    #[test]
    fn hpa_ruc_replicas_run_away() {
        let m = hpa_ruc(1, 5);
        let r = check(&m, &CheckOptions::with_depth(16));
        let t = r.trace().expect("replica count exceeds 5");
        // Counts must be non-decreasing toward the violation and reach 6.
        let last = t.states.last().unwrap();
        assert_eq!(last[1].to_string(), "6", "{t}");
    }

    #[test]
    fn hpa_ruc_without_surge_is_safe() {
        // maxSurge = 0 removes the feedback: counts stay at 1.
        let m = hpa_ruc(0, 5);
        let K8sProperty::Invariant(p) = &m.property else {
            panic!()
        };
        let r = engine(EngineKind::KInduction)
            .check_invariant(
                &m.system,
                p,
                &CheckOptions::with_depth(12),
                &mut Stats::default(),
            )
            .unwrap();
        assert!(r.holds(), "{r}");
    }

    #[test]
    fn descheduler_oscillates_at_paper_thresholds() {
        // Paper: request 50%, threshold 45% -> permanent oscillation.
        let m = descheduler_oscillation(50, 45);
        let r = check(&m, &CheckOptions::with_depth(12));
        let t = r.trace().expect("pod never settles");
        let l = t.loop_back.expect("lasso");
        let nodes: Vec<String> = (l..t.len()).map(|s| t.states[s][0].to_string()).collect();
        assert!(
            nodes.contains(&"w2".to_string()) && nodes.contains(&"w3".to_string()),
            "pod must bounce between workers: {nodes:?}\n{t}"
        );
    }

    #[test]
    fn descheduler_stable_when_threshold_above_request() {
        // Threshold 60% > request 50%: the pod settles; BDD proves the
        // liveness property.
        let m = descheduler_oscillation(50, 60);
        let K8sProperty::Ltl(phi) = &m.property else {
            panic!()
        };
        let r = ltl_check(EngineKind::Bdd, &m.system, phi, &CheckOptions::default());
        assert!(r.holds(), "{r}");
    }
}
