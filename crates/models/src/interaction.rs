//! The controller/metric interaction graph of the paper's Fig. 1.
//!
//! Fig. 1 is illustrative rather than experimental, but it is the mental
//! model behind the whole verification effort: controllers observe
//! metrics and manipulate system elements that move other metrics other
//! controllers observe. This module encodes that graph as data, with a
//! DOT export for rendering and simple analyses (e.g. feedback-cycle
//! detection — the cycles are where oscillations live).

use std::fmt::Write as _;

/// The kind of a graph node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// A control component (scheduler, load balancer, …).
    Controller,
    /// A quantitative metric (latency, bandwidth, …).
    Metric,
    /// An environment element (node status, …).
    Environment,
}

/// A node in the interaction graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// Display name.
    pub name: String,
    /// Kind.
    pub kind: NodeKind,
}

/// The interaction graph: controllers observe metrics (metric → controller
/// edges) and act on metrics (controller → metric edges).
#[derive(Clone, Debug, Default)]
pub struct InteractionGraph {
    /// Nodes.
    pub nodes: Vec<Node>,
    /// Directed edges `(from, to)` as node indices.
    pub edges: Vec<(usize, usize)>,
}

impl InteractionGraph {
    /// Adds a node, returning its index.
    pub fn add(&mut self, name: &str, kind: NodeKind) -> usize {
        self.nodes.push(Node {
            name: name.to_string(),
            kind,
        });
        self.nodes.len() - 1
    }

    /// Adds a directed edge.
    pub fn connect(&mut self, from: usize, to: usize) {
        self.edges.push((from, to));
    }

    /// The paper's Fig. 1 instance.
    pub fn figure1() -> InteractionGraph {
        let mut g = InteractionGraph::default();
        // Controllers.
        let routing = g.add("Routing/TE", NodeKind::Controller);
        let lb = g.add("Load balancer", NodeKind::Controller);
        let autoscaler = g.add("Autoscaler", NodeKind::Controller);
        let scheduler = g.add("Scheduler", NodeKind::Controller);
        let descheduler = g.add("Descheduler / Rate limiter", NodeKind::Controller);
        let ruc = g.add("Rolling update controller", NodeKind::Controller);
        // Metrics.
        let reach = g.add("Network reachability", NodeKind::Metric);
        let latency = g.add("Latency", NodeKind::Metric);
        let bandwidth = g.add("Bandwidth", NodeKind::Metric);
        let usage = g.add("Resource usage", NodeKind::Metric);
        let replicas = g.add("Number of app replicas", NodeKind::Metric);
        // Environment.
        let node_status = g.add("Node status", NodeKind::Environment);

        // Observations (metric → controller) and actions (controller →
        // metric), following the figure's arrows.
        g.connect(reach, routing);
        g.connect(routing, latency);
        g.connect(routing, bandwidth);
        g.connect(latency, lb);
        g.connect(lb, latency);
        g.connect(lb, bandwidth);
        g.connect(latency, autoscaler);
        g.connect(usage, autoscaler);
        g.connect(autoscaler, replicas);
        g.connect(usage, scheduler);
        g.connect(scheduler, usage);
        g.connect(usage, descheduler);
        g.connect(descheduler, usage);
        g.connect(descheduler, replicas);
        g.connect(replicas, ruc);
        g.connect(ruc, replicas);
        g.connect(node_status, scheduler);
        g.connect(node_status, ruc);
        g.connect(replicas, lb);
        g.connect(bandwidth, routing);
        g
    }

    /// DOT rendering for graphviz.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph interactions {\n  rankdir=LR;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = match n.kind {
                NodeKind::Controller => "box",
                NodeKind::Metric => "ellipse",
                NodeKind::Environment => "diamond",
            };
            let _ = writeln!(out, "  n{i} [label=\"{}\", shape={shape}];", n.name);
        }
        for &(a, b) in &self.edges {
            let _ = writeln!(out, "  n{a} -> n{b};");
        }
        out.push_str("}\n");
        out
    }

    /// Feedback cycles passing through at least two controllers — the
    /// shapes the paper's failure studies keep finding.
    pub fn has_multi_controller_cycle(&self) -> bool {
        // DFS cycle detection remembering controllers on the path.
        fn dfs(
            g: &InteractionGraph,
            v: usize,
            start: usize,
            visited: &mut Vec<bool>,
            controllers: usize,
        ) -> bool {
            for &(a, b) in &g.edges {
                if a != v {
                    continue;
                }
                let c = controllers + usize::from(g.nodes[b].kind == NodeKind::Controller);
                if b == start && c >= 2 {
                    return true;
                }
                if !visited[b] {
                    visited[b] = true;
                    if dfs(g, b, start, visited, c) {
                        return true;
                    }
                }
            }
            false
        }
        (0..self.nodes.len()).any(|start| {
            let mut visited = vec![false; self.nodes.len()];
            visited[start] = true;
            let c = usize::from(self.nodes[start].kind == NodeKind::Controller);
            dfs(self, start, start, &mut visited, c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let g = InteractionGraph::figure1();
        let controllers = g
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Controller)
            .count();
        let metrics = g
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Metric)
            .count();
        assert_eq!(controllers, 6);
        assert_eq!(metrics, 5);
        assert!(!g.edges.is_empty());
    }

    #[test]
    fn figure1_contains_feedback() {
        let g = InteractionGraph::figure1();
        assert!(
            g.has_multi_controller_cycle(),
            "Fig. 1's point is cyclic controller interaction"
        );
    }

    #[test]
    fn dot_is_well_formed() {
        let g = InteractionGraph::figure1();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("Load balancer"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(
            dot.matches("->").count(),
            g.edges.len(),
            "every edge rendered"
        );
    }

    #[test]
    fn acyclic_graph_has_no_cycle() {
        let mut g = InteractionGraph::default();
        let a = g.add("A", NodeKind::Controller);
        let m = g.add("m", NodeKind::Metric);
        let b = g.add("B", NodeKind::Controller);
        g.connect(a, m);
        g.connect(m, b);
        assert!(!g.has_multi_controller_cycle());
        // Close the loop: now there is one.
        g.connect(b, a);
        assert!(g.has_multi_controller_cycle());
    }
}
