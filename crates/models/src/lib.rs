//! Library of infrastructure control-component and environment models.
//!
//! The paper (§4.1) envisions "a library of common control system and
//! environment models"; this crate is that library. Every function builds
//! a `verdict-ts` [`verdict_ts::System`] (plus the property expressions
//! that go with it) ready to hand to the engines in `verdict-mc`:
//!
//! * [`topology`] — network graphs: the 5-node "test" topology of the
//!   paper's Fig. 5 and the fat-tree family of Fig. 6.
//! * [`rollout`] — case study 1: an update-rollout controller over a
//!   service topology with nondeterministic link failures and a
//!   reachability-recomputation loop; safety
//!   `G(converged → available ≥ m)` with frozen parameters `p`, `k`, `m`.
//! * [`lb_ecmp`] — case study 2: the latency-based load balancer over
//!   hard-coded ECMP paths of Fig. 3, with real-valued traffic and
//!   latency parameters and a one-time external-traffic event; liveness
//!   `F G stable` / `stable → F G stable`.
//! * [`k8s`] — finite models of the Kubernetes failure modes of §3.2/§3.3:
//!   the taint-manager × deployment-controller loop (issue #75913), the
//!   HPA × rolling-update replica runaway (issue #90461), and the
//!   scheduler × descheduler threshold oscillation (the model twin of the
//!   Fig. 2 experiment).
//! * [`interaction`] — the controller/metric interaction graph of Fig. 1
//!   as a data structure with DOT export.
//! * [`zoo`] — the controller zoo behind the scenario factory's incident
//!   patterns: canary/progressive rollout, cluster autoscaler,
//!   service-mesh split-brain routing, and PodDisruptionBudget-aware
//!   eviction.
//! * [`library`] — further common controllers from §2/§3.1: an
//!   autoscaler, a rate limiter with retry amplification, and an abstract
//!   model of Google ticket #18037 (router × GC × load balancer).

pub mod interaction;
pub mod k8s;
pub mod lb_ecmp;
pub mod library;
pub mod rollout;
pub mod topology;
pub mod zoo;

pub use rollout::{RolloutModel, RolloutSpec};
pub use topology::Topology;
