//! `verdict` — the command-line interface.
//!
//! ```text
//! verdict check <model.vd> [--prop NAME] [--engine E] [--depth N] [--timeout SECS]
//! verdict table1
//! verdict fig2 [--minutes N]
//! verdict fig1-dot
//! ```

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use verdict_dsl::{parse, CompiledProperty};
use verdict_journal::VerdictTag;
use verdict_mc::{
    certify, CheckOptions, CheckResult, EngineKind, PropertyKind, TraceSink, UnknownReason,
    Verifier, STATS_SCHEMA_VERSION,
};

mod scenarios_cmd;
mod server_cmd;
mod sigint;

const USAGE: &str = "\
verdict — symbolic model checking for self-driving infrastructure control

USAGE:
    verdict check <model.vd> [OPTIONS]   check properties of a .vd model
    verdict synth <model.vd> --params a,b [OPTIONS]
                                         synthesize safe values for frozen params
    verdict blast <model.vd> --event EXPR --metric EXPR [OPTIONS]
                                         worst metric value reachable after event
    verdict serve --socket PATH --wal DIR [--workers N] [--queue N]
                  [--grace SECS] [--segment-bytes N] [--watchdog-grace-ms MS]
                  [--hedge-after-ms MS | --no-hedge] [--quarantine-after N]
                  [--quarantine-ttl SECS] [--fault SPEC | --fault-seed N]
                                         run the verdict daemon: accept jobs over a
                                         Unix-socket JSONL API, journal every
                                         acknowledged job in a group-commit WAL,
                                         recover in-flight jobs on restart, drain
                                         gracefully (exit 0) on SIGTERM/SIGINT.
                                         A watchdog escalates hung workers (stop
                                         flag -> solver poisoning -> abandonment
                                         with a respawned slot), slow jobs get a
                                         hedged second run on a spare worker, and
                                         specs that crash-loop are quarantined
    verdict submit <model.vd> --socket PATH [--synth --params a,b] [--prop NAME]
                  [--engine E] [--depth N] [--deadline SECS] [--certify]
                  [--resilient] [--no-wait] [--events] [--json]
                                         send a job to a running daemon; blocks for
                                         the verdict (check exit codes) unless
                                         --no-wait, which returns once the job is
                                         durably acknowledged. --resilient retries
                                         the submit across reconnects under an
                                         idempotency key (never double-runs)
    verdict unquarantine --socket PATH FINGERPRINT
                                         lift a crash-loop quarantine early (the
                                         fingerprint is printed in the rejection)
    verdict server-stats --socket PATH   print the daemon's stats JSON (schema 2,
                                         including the server and supervision
                                         counter groups)
    verdict scenarios [--pattern P,..] [--seed N] [--samples N] [--list]
                  [--jobs N] [--depth N] [--timeout SECS] [--certify]
                  [--engine E] [--socket PATH] [--json]
                                         generate the incident-driven scenario
                                         matrix (5 control-loop interference
                                         patterns x parameter grid, each instance
                                         with a ground-truth property pack), run
                                         every instance through the engines —
                                         locally on a worker pool, or via a
                                         running daemon with --socket — and score
                                         verdicts against expectations, rolled up
                                         per pattern with the Table 1 incident
                                         ids. --samples N adds seeded random
                                         parameter draws on top of the base grid;
                                         --list only enumerates. Exit codes:
                                         0 all verdicts match, 2 any mismatch,
                                         1 infrastructure failure, 130 interrupted
    verdict schema                       dump the versioned JSON output contract
                                         (field shapes for check/synth/scenarios/
                                         server-stats documents)
    verdict table1                       print the incident-study table (Table 1)
    verdict fig2 [--minutes N]           run the Fig. 2 cluster simulation
    verdict fig1-dot                     print the Fig. 1 interaction graph as DOT

OPTIONS (check/synth):
    --prop NAME        check only the named property (synth: required if
                       the model has several)
    --engine ENGINE    auto | bmc | kind | bdd | explicit | smtbmc | portfolio
                       (portfolio races BMC against the provers in
                       parallel threads and keeps the first verdict)
                                                                    [default: auto]
    --depth N          unrolling depth bound                        [default: 64]
    --timeout SECS     wall-clock budget per property
    --jobs N           worker threads for parallel operations
                       (synth assignment sweep)  [default: all cores]
    --first-safe       synth only: stop at the first SAFE assignment,
                       cancelling the rest of the sweep
    --incremental      synth only: pin assignments with assumption
                       literals over one shared unrolling so each worker
                       keeps one solver for its whole sweep (learned
                       clauses carry over, unsat cores prune parameters
                       that don't matter). Default for invariant
                       properties under the k-induction engine
    --no-incremental   synth only: force the clone-per-assignment sweep
    --no-sharing       disable learnt-clause exchange between portfolio
                       contenders / synthesis workers (verdicts are
                       identical either way; see DESIGN.md §13)
    --bdd-partitioned  symbolic engine: image via per-variable update
                       partitions chained with early quantification
                       (the default; see DESIGN.md §15)
    --bdd-monolithic   symbolic engine: one conjoined transition-relation
                       BDD (baseline; verdicts are identical either way)
    --bdd-no-sift      disable dynamic variable reordering (sifting) in
                       the symbolic engine
    --bdd-sift-threshold N
                       live-node count that triggers the first sift
                       (default: adaptive, 4x the post-encoding size)
    --max-bdd-nodes N  BDD node ceiling: the manager refuses further
                       allocation and the run demotes to UNKNOWN
                       (resource-exhausted) instead of exhausting memory
    --certify          independently validate every verdict: replay
                       counterexamples through the reference interpreter,
                       re-check proofs with fresh proof-logged SAT queries;
                       a failed check demotes the verdict to UNKNOWN
                       (certificate rejected)
    --retries N        re-run assignments/properties that came back
                       unknown for an infrastructure reason
                       (engine-failure, resource-exhausted, timeout) up
                       to N extra times with escalating budgets and
                       jittered backoff                          [default: 0]
    --retry-factor F   budget multiplier between attempts        [default: 2]
    --retry-backoff-ms MS
                       base backoff before a retry               [default: 20]
    --journal PATH     append every decided verdict to a crash-safe
                       (fsync'd, checksummed) journal at PATH; refuses
                       to overwrite an existing journal (resume or
                       delete it)
    --resume PATH      resume from a journal written by --journal:
                       trusted verdicts are skipped, undecided work
                       re-runs, new verdicts append to the same file
    --fault SPEC       deterministic fault injection for testing:
                       site:kind[:hit], comma-separated (kinds: panic,
                       overflow, exhaust; also via env VERDICT_FAULT)
    --fault-seed N     derive a random fault spec from seed N
    --json             machine-readable output on stdout (one JSON
                       document, top-level \"schema\": 2: verdicts,
                       winning engine, certificate status, attempt
                       counts, wall-clock millis)
    --stats            check only: report engine counters (SAT
                       decisions/conflicts, simplex pivots, BDD nodes),
                       per-depth unroll/solve timings, and phase timers
                       per property — as a \"stats\" object under --json,
                       as indented lines otherwise
    --trace FILE       check only: append span/depth/mark events as
                       JSON lines to FILE while solving (one object per
                       line; shared by portfolio contenders)

EXIT CODES (check):
    0   every property holds or is unknown for an honest reason
        (depth-bound, timeout, effort-bound, cancelled)
    2   at least one property is violated
    1   usage, parse, or engine error — including a property left
        unknown by an infrastructure failure (engine-failure,
        resource-exhausted, certificate-rejected, hung-worker)
    130 interrupted (first Ctrl-C drains workers and keeps the
        journal intact; resume with --resume)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("synth") => synth(&args[1..]),
        Some("blast") => blast(&args[1..]),
        Some("serve") => server_cmd::serve(&args[1..]),
        Some("submit") => server_cmd::submit(&args[1..]),
        Some("unquarantine") => server_cmd::unquarantine(&args[1..]),
        Some("server-stats") => server_cmd::server_stats(&args[1..]),
        Some("scenarios") => scenarios_cmd::scenarios(&args[1..]),
        Some("schema") => scenarios_cmd::schema(&args[1..]),
        Some("table1") => {
            print!("{}", verdict_incidents::table1());
            ExitCode::SUCCESS
        }
        Some("fig2") => fig2(&args[1..]),
        Some("fig1-dot") => {
            print!(
                "{}",
                verdict_models::interaction::InteractionGraph::figure1().to_dot()
            );
            ExitCode::SUCCESS
        }
        Some("--help" | "-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Parses the shared engine-budget flags through the unified
/// `verdict_mc::spec` path (a typo'd value is an error, not a silent
/// fallback to the default).
fn options_from(args: &[String]) -> Result<CheckOptions, String> {
    verdict_mc::spec::options_from_args(args)
}

/// Installs the deterministic fault-injection plan from `--fault SPEC`,
/// `--fault-seed N`, or the `VERDICT_FAULT` environment variable
/// (testing only; a no-op when none is given).
fn install_faults(args: &[String]) -> Result<(), String> {
    use verdict_journal::fault;
    if let Some(seed) = flag_value(args, "--fault-seed") {
        if flag_value(args, "--fault").is_some() {
            return Err("--fault and --fault-seed are mutually exclusive".to_string());
        }
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("--fault-seed expects a number, got `{seed}`"))?;
        let plan = fault::FaultPlan::seeded(seed);
        eprintln!("fault injection (seed {seed}): {}", plan.to_spec_string());
        fault::install(&plan);
        return Ok(());
    }
    let spec = flag_value(args, "--fault").or_else(|| std::env::var("VERDICT_FAULT").ok());
    if let Some(spec) = spec {
        let plan = fault::FaultPlan::parse(&spec).map_err(|e| format!("--fault: {e}"))?;
        fault::install(&plan);
    }
    Ok(())
}

/// Journal flags shared by `check` and `synth`: `--resume PATH` implies
/// journaling to the same file.
fn journal_flags(args: &[String]) -> Result<(Option<String>, bool), String> {
    let journal = flag_value(args, "--journal");
    let resume = flag_value(args, "--resume");
    if journal.is_some() && resume.is_some() {
        return Err(
            "--journal and --resume are mutually exclusive (resume appends to the same journal)"
                .to_string(),
        );
    }
    let is_resume = resume.is_some();
    Ok((resume.or(journal), is_resume))
}

/// True for `Unknown` reasons that indicate the infrastructure (not the
/// model) failed — these map to exit code 1 under the check contract.
fn infra_failure(r: &CheckResult) -> bool {
    matches!(
        r,
        CheckResult::Unknown(
            UnknownReason::EngineFailure
                | UnknownReason::ResourceExhausted
                | UnknownReason::CertificateRejected
                | UnknownReason::HungWorker
        )
    )
}

/// What a run concluded, boiled down to the bits the exit-code contract
/// cares about. Shared by `check` and `synth` so the mapping lives in
/// exactly one place.
#[derive(Clone, Copy, Debug, Default)]
struct Outcome {
    /// Ctrl-C arrived (workers drained, journal intact).
    interrupted: bool,
    /// At least one property/assignment is violated (check only).
    violated: bool,
    /// Some verdict is unknown for an infrastructure reason.
    infra_unknown: bool,
}

/// The process exit code for an [`Outcome`]: 130 interrupted, 2
/// violated, 1 infrastructure failure, 0 otherwise (holds or honest
/// unknown). Interruption takes precedence over everything.
fn exit_code(o: &Outcome) -> u8 {
    if o.interrupted {
        130
    } else if o.violated {
        2
    } else if o.infra_unknown {
        1
    } else {
        0
    }
}

/// Minimal JSON string quoting (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The coarse verdict bucket used in JSON output and the exit code —
/// the shared `verdict_mc::spec` mapping, so local and server rows
/// always use the same tags.
fn verdict_tag(r: &CheckResult) -> &'static str {
    verdict_mc::spec::verdict_tag(r)
}

/// Pulls `--flag value` out of an argument list (shared
/// `verdict_mc::spec` helper).
use verdict_mc::spec::flag_value;

fn check(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("check: missing model path\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let model = match parse(&source) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let engine = match flag_value(args, "--engine").as_deref() {
        None | Some("auto") => EngineKind::Auto,
        Some("bmc") => EngineKind::Bmc,
        Some("kind") => EngineKind::KInduction,
        Some("bdd") => EngineKind::Bdd,
        Some("explicit") => EngineKind::Explicit,
        Some("smtbmc") => EngineKind::SmtBmc,
        Some("portfolio") => EngineKind::Portfolio,
        Some(other) => {
            eprintln!("unknown engine `{other}`");
            return ExitCode::FAILURE;
        }
    };
    let mut opts = match options_from(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match flag_value(args, "--trace") {
        Some(p) => match TraceSink::create(Path::new(&p)) {
            Ok(sink) => Some(Arc::new(sink)),
            Err(e) => {
                eprintln!("--trace {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if let Some(sink) = &trace {
        opts = opts.with_trace(sink.clone());
    }
    let stats_on = args.iter().any(|a| a == "--stats");
    if let Err(e) = install_faults(args) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    let opts = opts.with_stop(sigint::install());
    let only = flag_value(args, "--prop");

    let selected: Vec<&(String, CompiledProperty)> = model
        .properties
        .iter()
        .filter(|(name, _)| only.as_deref().is_none_or(|p| p == name))
        .collect();
    if selected.is_empty() {
        eprintln!(
            "no matching properties (model has: {})",
            model
                .properties
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    }

    let (journal_path, resume) = match journal_flags(args) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Fingerprint material: property formulas (not just names), so an
    // edited property body invalidates the journal.
    let prop_specs: Vec<(String, String)> = selected
        .iter()
        .map(|(n, p)| (n.clone(), format!("{p:?}")))
        .collect();
    let (recorder, resumed) = match &journal_path {
        Some(p) => {
            match verdict_mc::durable::start_check_journal(
                Path::new(p),
                resume,
                &model.system,
                &prop_specs,
                &engine.to_string(),
            ) {
                Ok((rec, map)) => (Some(rec), map),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => (None, HashMap::new()),
    };

    let json = args.iter().any(|a| a == "--json");
    let mut any_violated = false;
    let mut infra_unknown = false;
    let mut rows: Vec<String> = Vec::new();
    for (prop_idx, (name, property)) in selected.into_iter().enumerate() {
        // A resumed verdict is reused only without --certify; with it,
        // every property is re-verified (trivially sound). Only decided
        // (safe/unsafe) verdicts are ever resumed — unknowns are
        // filtered out by `start_check_journal` and re-solved here, so
        // `--resume --retries N` can clear a journaled infra failure.
        if !opts.certify {
            if let Some(prev) = resumed.get(name.as_str()) {
                any_violated |= prev.verdict == VerdictTag::Unsafe;
                if json {
                    rows.push(format!(
                        "{{\"name\":{},\"verdict\":{},\"detail\":{},\"engine\":{},\"certificate\":{},\"wall_ms\":0,\"resumed\":true}}",
                        json_str(name),
                        json_str(prev.verdict.tag()),
                        json_str(prev.verdict.tag()),
                        json_str(&prev.engine),
                        json_str("skipped"),
                    ));
                } else {
                    println!(
                        "property `{name}` (resumed from journal, engine {}): {}",
                        prev.engine,
                        prev.verdict.tag()
                    );
                }
                continue;
            }
        }
        let kind = match property {
            CompiledProperty::Invariant(_) => PropertyKind::Invariant,
            CompiledProperty::Ltl(_) => PropertyKind::Ltl,
            CompiledProperty::Ctl(_) => PropertyKind::Ctl,
        };
        let max_attempts = opts.retry.as_ref().map_or(1, |p| p.max_attempts);
        let mut attempt = 1u32;
        let (result, used_engine, wall, mut stats, contenders) = loop {
            // Retries re-run the property with escalated budgets
            // (timeout, clause/node ceilings) per the policy.
            let run_opts = match &opts.retry {
                Some(policy) if attempt > 1 => policy.escalate(&opts, attempt),
                _ => opts.clone(),
            };
            // Every engine dispatches through the report path: portfolio
            // runs report which engine won the race; solo engines report
            // themselves and carry their own stats.
            let verifier = Verifier::new(&model.system)
                .engine(engine)
                .options(run_opts);
            let report = match property {
                CompiledProperty::Invariant(p) => verifier.check_invariant_report(p),
                CompiledProperty::Ltl(f) => verifier.check_ltl_report(f),
                CompiledProperty::Ctl(f) => verifier.check_ctl_report(f),
            };
            let report = match report {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("property `{name}`: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let retryable = matches!(&report.result, CheckResult::Unknown(r) if r.retryable())
                && !sigint::interrupted();
            if retryable && attempt < max_attempts {
                if let Some(policy) = &opts.retry {
                    std::thread::sleep(policy.backoff_for(prop_idx as u64, attempt + 1));
                }
                attempt += 1;
                continue;
            }
            break (
                report.result,
                report.winner,
                report.wall,
                report.stats,
                report.contender_stats,
            );
        };
        stats.retries += u64::from(attempt - 1);
        let cert = certify::status(opts.certify, used_engine, kind, &result);
        any_violated |= result.violated();
        infra_unknown |= infra_failure(&result);
        if let Some(rec) = &recorder {
            rec.record_property(name, &result, &used_engine.to_string());
        }
        if json {
            let stats_field = if stats_on {
                let per_contender: Vec<String> =
                    contenders.iter().map(|(_, s)| s.counters_json()).collect();
                format!(
                    ",\"stats\":{},\"contenders\":[{}]",
                    stats.to_json(),
                    per_contender.join(",")
                )
            } else {
                String::new()
            };
            rows.push(format!(
                "{{\"name\":{},\"verdict\":{},\"detail\":{},\"engine\":{},\"certificate\":{},\"wall_ms\":{}{stats_field}}}",
                json_str(name),
                json_str(verdict_tag(&result)),
                json_str(&result.to_string()),
                json_str(&used_engine.to_string()),
                json_str(&cert.to_string()),
                wall.as_millis()
            ));
        } else {
            let cert_note = if opts.certify {
                format!("  [certificate: {cert}]")
            } else {
                String::new()
            };
            println!("property `{name}` ({wall:.2?}, engine {used_engine}): {result}{cert_note}");
            if stats_on {
                print_stats_text(&stats, &contenders);
            }
        }
    }
    if let Some(sink) = &trace {
        if let Err(e) = sink.flush() {
            eprintln!("--trace: {e}");
        }
    }
    // Interruption takes precedence over the verdict-derived code, and
    // the JSON document must report the code the process actually exits
    // with.
    let code = exit_code(&Outcome {
        interrupted: sigint::interrupted(),
        violated: any_violated,
        infra_unknown,
    });
    if json {
        println!(
            "{{\"schema\":{STATS_SCHEMA_VERSION},\"command\":\"check\",\"model\":{},\"properties\":[{}],\"exit_code\":{code}}}",
            json_str(path),
            rows.join(",")
        );
    }
    ExitCode::from(code)
}

/// Human-readable `--stats` rendering: one indented block per property
/// with the counter groups that actually fired, plus phase timers and —
/// for portfolio runs — a one-line summary per contender.
fn print_stats_text(stats: &verdict_mc::Stats, contenders: &[(EngineKind, verdict_mc::Stats)]) {
    use verdict_mc::stats::Phase;
    if !stats.sat.is_zero() {
        println!(
            "  sat: {} decisions, {} propagations, {} conflicts, {} restarts, {} learnt clauses",
            stats.sat.decisions,
            stats.sat.propagations,
            stats.sat.conflicts,
            stats.sat.restarts,
            stats.sat.learnt_clauses
        );
    }
    if !stats.smt.is_zero() {
        println!(
            "  smt: {} pivots, {} bound flips, {} overflow poisonings",
            stats.smt.pivots, stats.smt.bound_flips, stats.smt.overflow_poisonings
        );
    }
    if !stats.bdd.is_zero() {
        println!(
            "  bdd: {} nodes, {:.1}% ite cache hits, {} peak live, {} partition(s), \
             {} sift(s) ({} -> {} nodes), {} cache clears",
            stats.bdd.nodes_allocated,
            stats.bdd.ite_hit_rate() * 100.0,
            stats.bdd.peak_live_nodes,
            stats.bdd.partitions,
            stats.bdd.sifts,
            stats.bdd.sift_nodes_before,
            stats.bdd.sift_nodes_after,
            stats.bdd.cache_clears
        );
    }
    if stats.fixpoint_iterations > 0 || stats.states_visited > 0 {
        println!(
            "  search: {} fixpoint iterations, {} states visited",
            stats.fixpoint_iterations, stats.states_visited
        );
    }
    if !stats.server.is_zero() {
        println!(
            "  server: {} accepted, {} rejected, {} completed, {} recovered; \
             wal {} appends in {} group commits ({} fsyncs, {} rotations)",
            stats.server.jobs_accepted,
            stats.server.jobs_rejected,
            stats.server.jobs_completed,
            stats.server.jobs_recovered,
            stats.server.wal_appends,
            stats.server.wal_group_commits,
            stats.server.wal_fsyncs,
            stats.server.wal_rotations
        );
    }
    if !stats.supervision.is_zero() {
        println!(
            "  supervision: {} heartbeats, {} escalations, {} hung workers \
             ({} respawned); hedges {} launched ({} won, {} lost, {} wasted); \
             quarantine {} armed, {} hits",
            stats.supervision.heartbeats,
            stats.supervision.escalations,
            stats.supervision.hung_workers,
            stats.supervision.workers_respawned,
            stats.supervision.hedges_launched,
            stats.supervision.hedges_won,
            stats.supervision.hedges_lost,
            stats.supervision.hedges_wasted,
            stats.supervision.quarantined,
            stats.supervision.quarantine_hits
        );
    }
    println!(
        "  phases: encode {}us, solve {}us, certify {}us, replay {}us; {} depth samples",
        stats.phase_nanos(Phase::Encode) / 1_000,
        stats.phase_nanos(Phase::Solve) / 1_000,
        stats.phase_nanos(Phase::Certify) / 1_000,
        stats.phase_nanos(Phase::Replay) / 1_000,
        stats.depths.len()
    );
    if contenders.len() > 1 {
        for (kind, s) in contenders {
            println!(
                "  contender {kind}: sat {} conflicts, smt {} pivots, bdd {} nodes, {} states",
                s.sat.conflicts, s.smt.pivots, s.bdd.nodes_allocated, s.states_visited
            );
        }
    }
}

fn synth(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("synth: missing model path\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let model = match parse(&source) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(param_list) = flag_value(args, "--params") else {
        eprintln!("synth: --params a,b,... is required");
        return ExitCode::FAILURE;
    };
    let mut params = Vec::new();
    for name in param_list.split(',') {
        match model.system.var_by_name(name.trim()) {
            Some(v) => params.push(v),
            None => {
                eprintln!("unknown parameter `{name}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let only = flag_value(args, "--prop");
    let selected: Vec<&(String, CompiledProperty)> = model
        .properties
        .iter()
        .filter(|(name, _)| only.as_deref().is_none_or(|p| p == name))
        .collect();
    let [(name, property)] = selected.as_slice() else {
        eprintln!(
            "synth needs exactly one property (use --prop); model has: {}",
            model
                .properties
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    };
    let prop = match property {
        CompiledProperty::Invariant(p) => verdict_mc::params::Property::Invariant(p.clone()),
        CompiledProperty::Ltl(f) => verdict_mc::params::Property::Ltl(f.clone()),
        CompiledProperty::Ctl(_) => {
            eprintln!("synth supports invariant and ltl properties");
            return ExitCode::FAILURE;
        }
    };
    let opts = match options_from(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = install_faults(args) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    let opts = opts.with_stop(sigint::install());
    let json = args.iter().any(|a| a == "--json");
    let verifier = Verifier::new(&model.system).options(opts.clone());
    let first_safe = args.iter().any(|a| a == "--first-safe");

    let (journal_path, resume) = match journal_flags(args) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let journal = match &journal_path {
        Some(p) => {
            let engine = verifier.synthesis_engine(&prop);
            match verdict_mc::durable::start_sweep_journal(
                Path::new(p),
                resume,
                &model.system,
                &params,
                &prop,
                engine,
                &opts,
            ) {
                Ok(pair) => Some(pair),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let durability = match &journal {
        Some((recorder, state)) => {
            if resume && !state.is_empty() {
                eprintln!(
                    "resumed {} decided assignment(s) from {}",
                    state.len(),
                    journal_path.as_deref().unwrap_or("journal")
                );
            }
            verdict_mc::Durability {
                recorder: Some(recorder),
                resume: Some(state),
            }
        }
        None => verdict_mc::Durability::none(),
    };

    let started = std::time::Instant::now();
    let synthesis = if first_safe {
        verifier.synthesize_params_first_safe_durable(&params, &prop, &durability)
    } else {
        verifier.synthesize_params_durable(&params, &prop, &durability)
    };
    match synthesis {
        Ok(result) => {
            if json {
                let rows: Vec<String> = result
                    .verdicts
                    .iter()
                    .map(|v| {
                        let vals: Vec<String> =
                            v.values.iter().map(|x| json_str(&x.to_string())).collect();
                        let reason = match &v.result {
                            CheckResult::Unknown(r) => json_str(r.tag()),
                            _ => "null".to_string(),
                        };
                        format!(
                            "{{\"values\":[{}],\"verdict\":{},\"detail\":{},\"attempts\":{},\"reason\":{}}}",
                            vals.join(","),
                            json_str(verdict_tag(&v.result)),
                            json_str(&v.result.to_string()),
                            v.attempts,
                            reason
                        )
                    })
                    .collect();
                let names: Vec<String> = result.param_names.iter().map(|n| json_str(n)).collect();
                println!(
                    "{{\"schema\":{STATS_SCHEMA_VERSION},\"command\":\"synth\",\"model\":{},\"property\":{},\"params\":[{}],\"verdicts\":[{}],\"wall_ms\":{}}}",
                    json_str(path),
                    json_str(name),
                    names.join(","),
                    rows.join(","),
                    started.elapsed().as_millis()
                );
            } else {
                println!("property `{name}`:");
                print!("{result}");
            }
            // Unsafe assignments are an answer here, not a failure: the
            // sweep's job is to map the safe region, so only
            // interruption changes the exit code.
            ExitCode::from(exit_code(&Outcome {
                interrupted: sigint::interrupted(),
                ..Outcome::default()
            }))
        }
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn blast(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("blast: missing model path\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let model = match parse(&source) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (Some(event_src), Some(metric_src)) =
        (flag_value(args, "--event"), flag_value(args, "--metric"))
    else {
        eprintln!("blast: --event EXPR and --metric EXPR are required");
        return ExitCode::FAILURE;
    };
    let event = match model.compile_bool_expr(&event_src) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("--event: {e}");
            return ExitCode::FAILURE;
        }
    };
    let metric = match model.compile_int_expr(&metric_src) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("--metric: {e}");
            return ExitCode::FAILURE;
        }
    };
    let opts = match options_from(args) {
        Ok(o) => o.max_depth_defaulted(16),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match verdict_mc::blast::worst_case_after(&model.system, &event, &metric, &opts) {
        Ok(Some(r)) => {
            println!(
                "worst `{metric_src}` at-or-after `{event_src}` within {} steps: {} (range {}..={})",
                opts.max_depth, r.worst, r.range.0, r.range.1
            );
            println!("witness:\n{}", r.witness);
            ExitCode::SUCCESS
        }
        Ok(None) => {
            println!(
                "event `{event_src}` not reachable within {} steps",
                opts.max_depth
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("blast failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn fig2(args: &[String]) -> ExitCode {
    let minutes: u64 = flag_value(args, "--minutes")
        .and_then(|m| m.parse().ok())
        .unwrap_or(30);
    let metrics = verdict_ksim::ClusterSpec::figure2().run(minutes * 60);
    println!("pod placement over {minutes} minutes (descheduler every 2 min):");
    println!("  time   node");
    for (t, node) in metrics.placement_changes("app-") {
        println!("  {t:>5}  {node}");
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_code_table() {
        // (interrupted, violated, infra_unknown) -> code. Interruption
        // beats violation beats infrastructure failure.
        let table: [(bool, bool, bool, u8); 8] = [
            (false, false, false, 0),
            (false, false, true, 1),
            (false, true, false, 2),
            (false, true, true, 2),
            (true, false, false, 130),
            (true, false, true, 130),
            (true, true, false, 130),
            (true, true, true, 130),
        ];
        for (interrupted, violated, infra_unknown, want) in table {
            let got = exit_code(&Outcome {
                interrupted,
                violated,
                infra_unknown,
            });
            assert_eq!(
                got, want,
                "exit_code(interrupted={interrupted}, violated={violated}, infra={infra_unknown})"
            );
        }
    }
}
