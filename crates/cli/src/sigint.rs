//! Cooperative SIGINT/SIGTERM handling without external crates.
//!
//! The first signal must not kill the process mid-write: engines poll a
//! shared stop flag, workers drain, and the verdict journal keeps every
//! fsync'd record. SIGTERM (the fleet manager's polite shutdown) and
//! SIGINT (Ctrl-C) route into the same flag, so `verdict serve` drains
//! identically whether an operator or an init system asks it to stop.
//! The handler itself only stores to a process-global atomic
//! (async-signal-safe) and restores the default dispositions so a
//! second signal hard-kills; a watcher thread bridges the atomic into
//! the `Arc<AtomicBool>` the engines actually poll.
//!
//! This is the one place the workspace's `unsafe_code = "deny"` lint is
//! overridden: registering a handler needs `signal(2)`, declared here
//! directly rather than through an external binding crate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;
const SIG_DFL: usize = 0;

#[allow(unsafe_code)]
mod ffi {
    extern "C" {
        pub fn signal(signum: i32, handler: usize) -> usize;
    }
}

extern "C" fn on_stop_signal(_sig: i32) {
    INTERRUPTED.store(true, Ordering::SeqCst);
    // Restore the default dispositions: a second SIGINT/SIGTERM kills
    // immediately instead of being swallowed by a stuck drain.
    #[allow(unsafe_code)]
    unsafe {
        ffi::signal(SIGINT, SIG_DFL);
        ffi::signal(SIGTERM, SIG_DFL);
    }
}

/// Installs SIGINT+SIGTERM handlers and returns the stop flag they
/// raise. Wire the flag into [`verdict_mc::CheckOptions::with_stop`];
/// interrupted engines report `Unknown(Cancelled)`, which is never
/// journaled, so a resumed run re-checks exactly the undecided
/// assignments.
pub fn install() -> Arc<AtomicBool> {
    install_with_message(
        "interrupted: draining workers, journal stays intact (Ctrl-C again to kill)",
    )
}

/// Like [`install`], with a caller-chosen first-signal message — the
/// daemon prints a drain notice instead of the CLI's journal notice.
pub fn install_with_message(message: &'static str) -> Arc<AtomicBool> {
    let stop = Arc::new(AtomicBool::new(false));
    #[allow(unsafe_code)]
    unsafe {
        ffi::signal(SIGINT, on_stop_signal as extern "C" fn(i32) as usize);
        ffi::signal(SIGTERM, on_stop_signal as extern "C" fn(i32) as usize);
    }
    let flag = stop.clone();
    std::thread::spawn(move || loop {
        if INTERRUPTED.load(Ordering::SeqCst) {
            eprintln!("{message}");
            flag.store(true, Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    });
    stop
}

/// True once the first SIGINT/SIGTERM has been seen.
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}
