//! Cooperative SIGINT handling without external crates.
//!
//! The first Ctrl-C must not kill the process mid-write: engines poll a
//! shared stop flag, workers drain, and the verdict journal keeps every
//! fsync'd record. The handler itself only stores to a process-global
//! atomic (async-signal-safe) and restores the default disposition so a
//! second Ctrl-C hard-kills; a watcher thread bridges the atomic into
//! the `Arc<AtomicBool>` the engines actually poll.
//!
//! This is the one place the workspace's `unsafe_code = "deny"` lint is
//! overridden: registering a handler needs `signal(2)`, declared here
//! directly rather than through an external binding crate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIG_DFL: usize = 0;

#[allow(unsafe_code)]
mod ffi {
    extern "C" {
        pub fn signal(signum: i32, handler: usize) -> usize;
    }
}

extern "C" fn on_sigint(_sig: i32) {
    INTERRUPTED.store(true, Ordering::SeqCst);
    // Restore the default disposition: a second Ctrl-C kills immediately
    // instead of being swallowed by a stuck drain.
    #[allow(unsafe_code)]
    unsafe {
        ffi::signal(SIGINT, SIG_DFL);
    }
}

/// Installs the handler and returns the stop flag it raises. Wire the
/// flag into [`verdict_mc::CheckOptions::with_stop`]; interrupted
/// engines report `Unknown(Cancelled)`, which is never journaled, so a
/// resumed run re-checks exactly the undecided assignments.
pub fn install() -> Arc<AtomicBool> {
    let stop = Arc::new(AtomicBool::new(false));
    #[allow(unsafe_code)]
    unsafe {
        ffi::signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
    let flag = stop.clone();
    std::thread::spawn(move || loop {
        if INTERRUPTED.load(Ordering::SeqCst) {
            eprintln!("interrupted: draining workers, journal stays intact (Ctrl-C again to kill)");
            flag.store(true, Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    });
    stop
}

/// True once the first Ctrl-C has been seen.
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}
