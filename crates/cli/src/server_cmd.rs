//! `verdict serve` / `verdict submit` / `verdict server-stats` — the
//! CLI face of the verdict-as-a-service daemon.

use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

use verdict_server::{Client, ClientError, JobKind, JobSpec, Server, ServerConfig};

use crate::{exit_code, flag_value, sigint, Outcome};

/// `verdict serve --socket PATH --wal DIR [--workers N] [--queue N]
/// [--grace SECS] [--segment-bytes N] [--watchdog-grace-ms MS]
/// [--hedge-after-ms MS | --no-hedge] [--quarantine-after N]
/// [--quarantine-ttl SECS] [--fault SPEC | --fault-seed N]`: run the
/// daemon until SIGTERM/SIGINT, then drain gracefully and exit 0.
pub fn serve(args: &[String]) -> ExitCode {
    if let Err(e) = crate::install_faults(args) {
        eprintln!("serve: {e}");
        return ExitCode::FAILURE;
    }
    let parsed = (|| -> Result<ServerConfig, String> {
        let socket = flag_value(args, "--socket").ok_or("serve: missing --socket PATH")?;
        let wal = flag_value(args, "--wal").ok_or("serve: missing --wal DIR")?;
        let mut cfg = ServerConfig::new(socket, wal);
        if let Some(w) = flag_value(args, "--workers") {
            cfg.workers = w
                .parse()
                .ok()
                .filter(|&w: &usize| w >= 1)
                .ok_or_else(|| format!("--workers expects a positive number, got `{w}`"))?;
        }
        if let Some(q) = flag_value(args, "--queue") {
            cfg.queue_capacity = q
                .parse()
                .ok()
                .filter(|&q: &usize| q >= 1)
                .ok_or_else(|| format!("--queue expects a positive number, got `{q}`"))?;
        }
        if let Some(g) = flag_value(args, "--grace") {
            let secs: u64 = g
                .parse()
                .map_err(|_| format!("--grace expects seconds, got `{g}`"))?;
            cfg.grace = Duration::from_secs(secs);
        }
        if let Some(s) = flag_value(args, "--segment-bytes") {
            cfg.segment_bytes = s
                .parse()
                .ok()
                .filter(|&b: &u64| b >= 1)
                .ok_or_else(|| format!("--segment-bytes expects bytes, got `{s}`"))?;
        }
        if let Some(ms) = flag_value(args, "--watchdog-grace-ms") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("--watchdog-grace-ms expects millis, got `{ms}`"))?;
            cfg.watchdog_grace = Duration::from_millis(ms.max(1));
        }
        let no_hedge = args.iter().any(|a| a == "--no-hedge");
        if let Some(ms) = flag_value(args, "--hedge-after-ms") {
            if no_hedge {
                return Err("--hedge-after-ms and --no-hedge are mutually exclusive".to_string());
            }
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("--hedge-after-ms expects millis, got `{ms}`"))?;
            cfg.hedge_after = Some(Duration::from_millis(ms.max(1)));
        } else if no_hedge {
            cfg.hedge_after = None;
        }
        if let Some(n) = flag_value(args, "--quarantine-after") {
            cfg.quarantine_after = n.parse().map_err(|_| {
                format!("--quarantine-after expects a count, got `{n}` (0 disables)")
            })?;
        }
        if let Some(s) = flag_value(args, "--quarantine-ttl") {
            let secs: u64 = s
                .parse()
                .map_err(|_| format!("--quarantine-ttl expects seconds, got `{s}`"))?;
            cfg.quarantine_ttl = Duration::from_secs(secs.max(1));
        }
        Ok(cfg)
    })();
    let cfg = match parsed {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let (server, recovery) = match Server::open(cfg) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if recovery.wal.tail.truncated {
        let seg = recovery
            .wal
            .truncated_segment
            .clone()
            .unwrap_or_else(|| "wal".to_string());
        eprintln!(
            "warning: {}",
            recovery.wal.tail.describe(std::path::Path::new(&seg))
        );
    }
    eprintln!(
        "verdict serve: recovered {} trusted, {} requeued, {} cancelled job(s) from {} WAL segment(s)",
        recovery.jobs_trusted, recovery.jobs_requeued, recovery.jobs_cancelled,
        recovery.wal.segments.max(1)
    );

    // SIGTERM and SIGINT route into the daemon's stop flag: stop
    // admitting, drain, exit 0.
    let stop = server.stop_flag();
    let sig = sigint::install_with_message(
        "verdict serve: stop signal received, draining (signal again to kill)",
    );
    std::thread::spawn(move || loop {
        if sig.load(Ordering::SeqCst) {
            stop.store(true, Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    });

    match server.run() {
        Ok(report) => {
            eprintln!(
                "verdict serve: drained clean ({} completed, {} abandoned-but-journaled, \
                 {} WAL appends in {} group commits)",
                report.jobs_completed,
                report.jobs_abandoned,
                report.wal.appends,
                report.wal.group_commits
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `verdict submit <model.vd> --socket PATH [--synth --params a,b]
/// [--prop NAME] [--engine E] [--depth N] [--deadline SECS]
/// [--certify] [--resilient] [--no-wait] [--events] [--json]`: send a
/// job to a running daemon. By default blocks until the verdict and
/// maps it to the standard check exit codes; `--no-wait` prints the
/// job id and returns as soon as the submit is durably acknowledged.
/// `--resilient` rides out daemon restarts and socket timeouts by
/// reconnecting and resubmitting under an idempotency key.
pub fn submit(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("submit: missing model path");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("submit: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(socket) = flag_value(args, "--socket") else {
        eprintln!("submit: missing --socket PATH");
        return ExitCode::FAILURE;
    };

    let kind = if args.iter().any(|a| a == "--synth") {
        JobKind::Synth
    } else {
        JobKind::Check
    };
    let spec = match JobSpec::from_cli_args(kind, &source, args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("submit: {e}");
            return ExitCode::FAILURE;
        }
    };
    if kind == JobKind::Synth && spec.params.is_empty() {
        eprintln!("submit: --synth requires --params a,b,\u{2026}");
        return ExitCode::FAILURE;
    }
    let json = args.iter().any(|a| a == "--json");
    let no_wait = args.iter().any(|a| a == "--no-wait");
    let events = args.iter().any(|a| a == "--events");
    let resilient = args.iter().any(|a| a == "--resilient");

    let mut client = match Client::connect(&socket) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("submit: cannot connect to {socket}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let submitted = if resilient {
        client.submit_resilient(&spec, Duration::from_secs(10))
    } else {
        client.submit(&spec)
    };
    let job = match submitted {
        Ok(job) => job,
        Err(ClientError::Rejected(r)) => {
            if json {
                println!("{}", r.to_json());
            } else {
                eprintln!("submit: rejected: {}", r.reason);
                if let Some(d) = &r.detail {
                    eprintln!("  {d}");
                }
                if let (Some(q), Some(c)) = (r.queued, r.capacity) {
                    eprintln!("  queue {q}/{c} full");
                }
                if let Some(fp) = &r.fingerprint {
                    let after = r
                        .retry_after_ms
                        .map(|ms| format!(" (retry in {ms}ms)"))
                        .unwrap_or_default();
                    eprintln!(
                        "  lift early with: verdict unquarantine --socket <PATH> {fp}{after}"
                    );
                }
            }
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("submit: {e}");
            return ExitCode::FAILURE;
        }
    };
    if no_wait {
        if json {
            println!("{{\"schema\":2,\"command\":\"submit\",\"job\":{job},\"acknowledged\":true}}");
        } else {
            println!("job {job} acknowledged (durably journaled)");
        }
        return ExitCode::SUCCESS;
    }

    let outcome = match client.wait(job, |ev| {
        if events {
            eprintln!("{ev}");
        }
    }) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("submit: waiting for job {job} failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut out = Outcome {
        interrupted: outcome.state == "cancelled",
        ..Outcome::default()
    };
    for row in &outcome.verdicts {
        match row.verdict.as_str() {
            // For synth, unsafe *assignments* are a normal sweep
            // outcome (the answer, not a failure) — same as `verdict
            // synth` locally.
            "unsafe" => out.violated = spec.kind == JobKind::Check,
            "unknown" => {
                if matches!(
                    row.reason.as_deref(),
                    Some(
                        "engine-failure"
                            | "resource-exhausted"
                            | "certificate-rejected"
                            | "hung-worker"
                    )
                ) {
                    out.infra_unknown = true;
                }
            }
            _ => {}
        }
    }
    if json {
        let rows: Vec<String> = outcome
            .verdicts
            .iter()
            .map(|r| r.to_json().to_string())
            .collect();
        println!(
            "{{\"schema\":2,\"command\":\"submit\",\"job\":{job},\"state\":{},\"recovered\":{},\"verdicts\":[{}],\"exit_code\":{}}}",
            crate::json_str(&outcome.state),
            outcome.recovered,
            rows.join(","),
            exit_code(&out)
        );
    } else {
        for row in &outcome.verdicts {
            let reason = row
                .reason
                .as_ref()
                .map(|r| format!(" ({r})"))
                .unwrap_or_default();
            println!(
                "{}: {}{} [{}]",
                row.name,
                row.verdict.to_uppercase(),
                reason,
                row.engine
            );
        }
        if outcome.state == "cancelled" {
            println!("job {job}: cancelled");
        }
    }
    ExitCode::from(exit_code(&out))
}

/// `verdict unquarantine --socket PATH FINGERPRINT`: lift a crash-loop
/// quarantine early. The fingerprint is the 16-digit hex string printed
/// in `quarantined` rejections.
pub fn unquarantine(args: &[String]) -> ExitCode {
    let Some(socket) = flag_value(args, "--socket") else {
        eprintln!("unquarantine: missing --socket PATH");
        return ExitCode::FAILURE;
    };
    let fp = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--") && args.get(i.wrapping_sub(1)).is_none_or(|p| p != "--socket")
        })
        .map(|(_, a)| a.clone())
        .next();
    let Some(fp) = fp else {
        eprintln!("unquarantine: missing FINGERPRINT (16-digit hex, from the rejection)");
        return ExitCode::FAILURE;
    };
    let mut client = match Client::connect(&socket) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("unquarantine: cannot connect to {socket}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match client.unquarantine(&fp) {
        Ok(true) => {
            println!("quarantine on {fp} lifted");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!("no active quarantine on {fp}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("unquarantine: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `verdict server-stats --socket PATH`: print the daemon's schema-2
/// stats document (engine counters plus the `server` and `supervision`
/// groups) to stdout.
pub fn server_stats(args: &[String]) -> ExitCode {
    let Some(socket) = flag_value(args, "--socket") else {
        eprintln!("server-stats: missing --socket PATH");
        return ExitCode::FAILURE;
    };
    let mut client = match Client::connect(&socket) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("server-stats: cannot connect to {socket}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match client.stats() {
        Ok(stats) => {
            println!("{stats}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("server-stats: {e}");
            ExitCode::FAILURE
        }
    }
}
