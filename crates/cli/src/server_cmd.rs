//! `verdict serve` / `verdict submit` / `verdict server-stats` — the
//! CLI face of the verdict-as-a-service daemon.

use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

use verdict_server::{Client, ClientError, JobKind, JobSpec, Server, ServerConfig};

use crate::{exit_code, flag_value, sigint, Outcome};

/// `verdict serve --socket PATH --wal DIR [--workers N] [--queue N]
/// [--grace SECS] [--segment-bytes N]`: run the daemon until
/// SIGTERM/SIGINT, then drain gracefully and exit 0.
pub fn serve(args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<ServerConfig, String> {
        let socket = flag_value(args, "--socket").ok_or("serve: missing --socket PATH")?;
        let wal = flag_value(args, "--wal").ok_or("serve: missing --wal DIR")?;
        let mut cfg = ServerConfig::new(socket, wal);
        if let Some(w) = flag_value(args, "--workers") {
            cfg.workers = w
                .parse()
                .ok()
                .filter(|&w: &usize| w >= 1)
                .ok_or_else(|| format!("--workers expects a positive number, got `{w}`"))?;
        }
        if let Some(q) = flag_value(args, "--queue") {
            cfg.queue_capacity = q
                .parse()
                .ok()
                .filter(|&q: &usize| q >= 1)
                .ok_or_else(|| format!("--queue expects a positive number, got `{q}`"))?;
        }
        if let Some(g) = flag_value(args, "--grace") {
            let secs: u64 = g
                .parse()
                .map_err(|_| format!("--grace expects seconds, got `{g}`"))?;
            cfg.grace = Duration::from_secs(secs);
        }
        if let Some(s) = flag_value(args, "--segment-bytes") {
            cfg.segment_bytes = s
                .parse()
                .ok()
                .filter(|&b: &u64| b >= 1)
                .ok_or_else(|| format!("--segment-bytes expects bytes, got `{s}`"))?;
        }
        Ok(cfg)
    })();
    let cfg = match parsed {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let (server, recovery) = match Server::open(cfg) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if recovery.wal.tail.truncated {
        let seg = recovery
            .wal
            .truncated_segment
            .clone()
            .unwrap_or_else(|| "wal".to_string());
        eprintln!(
            "warning: {}",
            recovery.wal.tail.describe(std::path::Path::new(&seg))
        );
    }
    eprintln!(
        "verdict serve: recovered {} trusted, {} requeued, {} cancelled job(s) from {} WAL segment(s)",
        recovery.jobs_trusted, recovery.jobs_requeued, recovery.jobs_cancelled,
        recovery.wal.segments.max(1)
    );

    // SIGTERM and SIGINT route into the daemon's stop flag: stop
    // admitting, drain, exit 0.
    let stop = server.stop_flag();
    let sig = sigint::install_with_message(
        "verdict serve: stop signal received, draining (signal again to kill)",
    );
    std::thread::spawn(move || loop {
        if sig.load(Ordering::SeqCst) {
            stop.store(true, Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    });

    match server.run() {
        Ok(report) => {
            eprintln!(
                "verdict serve: drained clean ({} completed, {} abandoned-but-journaled, \
                 {} WAL appends in {} group commits)",
                report.jobs_completed,
                report.jobs_abandoned,
                report.wal.appends,
                report.wal.group_commits
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `verdict submit <model.vd> --socket PATH [--synth --params a,b]
/// [--prop NAME] [--engine E] [--depth N] [--deadline SECS]
/// [--no-wait] [--events] [--json]`: send a job to a running daemon.
/// By default blocks until the verdict and maps it to the standard
/// check exit codes; `--no-wait` prints the job id and returns as soon
/// as the submit is durably acknowledged.
pub fn submit(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("submit: missing model path");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("submit: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(socket) = flag_value(args, "--socket") else {
        eprintln!("submit: missing --socket PATH");
        return ExitCode::FAILURE;
    };

    let mut spec = JobSpec::check(&source);
    if args.iter().any(|a| a == "--synth") {
        spec.kind = JobKind::Synth;
        let Some(params) = flag_value(args, "--params") else {
            eprintln!("submit: --synth requires --params a,b,…");
            return ExitCode::FAILURE;
        };
        spec.params = params
            .split(',')
            .map(|p| p.trim().to_string())
            .filter(|p| !p.is_empty())
            .collect();
    }
    spec.prop = flag_value(args, "--prop");
    if let Some(engine) = flag_value(args, "--engine") {
        spec.engine = engine;
    }
    if let Some(d) = flag_value(args, "--depth") {
        match d.parse() {
            Ok(d) => spec.depth = Some(d),
            Err(_) => {
                eprintln!("--depth expects a number, got `{d}`");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(t) = flag_value(args, "--deadline") {
        match t.parse::<u64>() {
            Ok(secs) => spec.deadline_ms = Some(secs * 1000),
            Err(_) => {
                eprintln!("--deadline expects seconds, got `{t}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let json = args.iter().any(|a| a == "--json");
    let no_wait = args.iter().any(|a| a == "--no-wait");
    let events = args.iter().any(|a| a == "--events");

    let mut client = match Client::connect(&socket) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("submit: cannot connect to {socket}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let job = match client.submit(&spec) {
        Ok(job) => job,
        Err(ClientError::Rejected(r)) => {
            if json {
                println!("{}", r.to_json());
            } else {
                eprintln!("submit: rejected: {}", r.reason);
                if let Some(d) = &r.detail {
                    eprintln!("  {d}");
                }
                if let (Some(q), Some(c)) = (r.queued, r.capacity) {
                    eprintln!("  queue {q}/{c} full");
                }
            }
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("submit: {e}");
            return ExitCode::FAILURE;
        }
    };
    if no_wait {
        if json {
            println!("{{\"schema\":2,\"command\":\"submit\",\"job\":{job},\"acknowledged\":true}}");
        } else {
            println!("job {job} acknowledged (durably journaled)");
        }
        return ExitCode::SUCCESS;
    }

    let outcome = match client.wait(job, |ev| {
        if events {
            eprintln!("{ev}");
        }
    }) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("submit: waiting for job {job} failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut out = Outcome {
        interrupted: outcome.state == "cancelled",
        ..Outcome::default()
    };
    for row in &outcome.verdicts {
        match row.verdict.as_str() {
            // For synth, unsafe *assignments* are a normal sweep
            // outcome (the answer, not a failure) — same as `verdict
            // synth` locally.
            "unsafe" => out.violated = spec.kind == JobKind::Check,
            "unknown" => {
                if matches!(
                    row.reason.as_deref(),
                    Some("engine-failure" | "resource-exhausted" | "certificate-rejected")
                ) {
                    out.infra_unknown = true;
                }
            }
            _ => {}
        }
    }
    if json {
        let rows: Vec<String> = outcome
            .verdicts
            .iter()
            .map(|r| r.to_json().to_string())
            .collect();
        println!(
            "{{\"schema\":2,\"command\":\"submit\",\"job\":{job},\"state\":{},\"recovered\":{},\"verdicts\":[{}],\"exit_code\":{}}}",
            crate::json_str(&outcome.state),
            outcome.recovered,
            rows.join(","),
            exit_code(&out)
        );
    } else {
        for row in &outcome.verdicts {
            let reason = row
                .reason
                .as_ref()
                .map(|r| format!(" ({r})"))
                .unwrap_or_default();
            println!(
                "{}: {}{} [{}]",
                row.name,
                row.verdict.to_uppercase(),
                reason,
                row.engine
            );
        }
        if outcome.state == "cancelled" {
            println!("job {job}: cancelled");
        }
    }
    ExitCode::from(exit_code(&out))
}

/// `verdict server-stats --socket PATH`: print the daemon's schema-2
/// stats document (engine counters plus the `server` group) to stdout.
pub fn server_stats(args: &[String]) -> ExitCode {
    let Some(socket) = flag_value(args, "--socket") else {
        eprintln!("server-stats: missing --socket PATH");
        return ExitCode::FAILURE;
    };
    let mut client = match Client::connect(&socket) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("server-stats: cannot connect to {socket}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match client.stats() {
        Ok(stats) => {
            println!("{stats}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("server-stats: {e}");
            ExitCode::FAILURE
        }
    }
}
