//! `verdict scenarios` — sweep the incident-driven scenario matrix —
//! and `verdict schema` — dump the machine-readable output contract.
//!
//! The scenario sweep enumerates the `verdict_scenarios` pattern×
//! parameter×property matrix, runs every instance through the unified
//! `verdict_mc::spec::execute` path (locally on a worker pool, or
//! remotely by submitting each instance to a running daemon with
//! `--socket`), and scores each engine verdict against the generator's
//! ground-truth expectation. Because both modes execute the *same*
//! [`JobSpec`] through the same function, local and server sweeps
//! cannot disagree except through infrastructure failures — which is
//! exactly what the exit-code contract surfaces.

use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use verdict_mc::spec::{flag_value, ExecContext, JobSpec, VerdictRow};
use verdict_mc::{EngineKind, STATS_SCHEMA_VERSION};
use verdict_scenarios::{generate, incident_ids, GenConfig, Pattern, Scenario};

use crate::{exit_code, json_str, sigint, Outcome};

/// One property of one instance, scored against its expectation.
struct Scored {
    name: &'static str,
    kind: &'static str,
    expected: &'static str,
    verdict: String,
    engine: String,
    detail: String,
    reason: Option<String>,
}

impl Scored {
    /// The engine verdict equals the generator's ground truth.
    fn matched(&self) -> bool {
        self.verdict == self.expected
    }

    /// Unknown for an infrastructure reason (or the transport to the
    /// daemon failed) — exit code 1, not a model mismatch.
    fn infra(&self) -> bool {
        matches!(
            self.reason.as_deref(),
            Some(
                "engine-failure"
                    | "resource-exhausted"
                    | "certificate-rejected"
                    | "hung-worker"
                    | "client-error"
            )
        )
    }
}

/// Per-pattern rollup for the report.
#[derive(Default)]
struct Rollup {
    instances: usize,
    properties: usize,
    matched: usize,
    mismatched: usize,
    infra: usize,
}

/// Sweep configuration parsed from the command line.
struct SweepConfig {
    gen_cfg: GenConfig,
    depth: Option<usize>,
    timeout: Option<Duration>,
    engine: Option<String>,
    certify: bool,
    jobs: usize,
    socket: Option<String>,
    json: bool,
    list: bool,
}

fn parse_args(args: &[String]) -> Result<SweepConfig, String> {
    let mut patterns = Vec::new();
    if let Some(list) = flag_value(args, "--pattern") {
        for tag in list.split(',') {
            let tag = tag.trim();
            match Pattern::from_tag(tag) {
                Some(p) => patterns.push(p),
                None => {
                    let known: Vec<&str> = Pattern::ALL.iter().map(|p| p.tag()).collect();
                    return Err(format!(
                        "unknown pattern `{tag}` (known: {})",
                        known.join(", ")
                    ));
                }
            }
        }
    }
    let seed = match flag_value(args, "--seed") {
        Some(s) => s
            .parse()
            .map_err(|_| format!("--seed expects a number, got `{s}`"))?,
        None => 0,
    };
    let samples = match flag_value(args, "--samples") {
        Some(s) => s
            .parse()
            .map_err(|_| format!("--samples expects a number, got `{s}`"))?,
        None => 0,
    };
    let depth = match flag_value(args, "--depth") {
        Some(d) => Some(
            d.parse()
                .map_err(|_| format!("--depth expects a number, got `{d}`"))?,
        ),
        None => None,
    };
    let timeout = match flag_value(args, "--timeout") {
        Some(t) => {
            let secs: f64 = t
                .parse()
                .map_err(|_| format!("--timeout expects seconds, got `{t}`"))?;
            if !secs.is_finite() || secs <= 0.0 {
                return Err(format!("--timeout expects a positive number, got `{t}`"));
            }
            Some(Duration::from_secs_f64(secs))
        }
        None => None,
    };
    let engine = flag_value(args, "--engine");
    if let Some(e) = &engine {
        if EngineKind::from_tag(e).is_none() {
            return Err(format!("unknown engine `{e}`"));
        }
    }
    let jobs = match flag_value(args, "--jobs") {
        Some(j) => {
            let n: usize = j
                .parse()
                .map_err(|_| format!("--jobs expects a number, got `{j}`"))?;
            if n == 0 {
                return Err("--jobs expects a positive number".to_string());
            }
            n
        }
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    Ok(SweepConfig {
        gen_cfg: GenConfig {
            seed,
            samples,
            patterns,
        },
        depth,
        timeout,
        engine,
        certify: args.iter().any(|a| a == "--certify"),
        jobs,
        socket: flag_value(args, "--socket"),
        json: args.iter().any(|a| a == "--json"),
        list: args.iter().any(|a| a == "--list"),
    })
}

/// The spec one scenario instance runs as — shared verbatim by the
/// local pool and the daemon submission, so the two paths execute the
/// identical job.
fn spec_for(s: &Scenario, cfg: &SweepConfig) -> JobSpec {
    let mut spec = JobSpec::check(&s.source);
    spec.depth = cfg.depth;
    spec.certify = cfg.certify;
    if let Some(e) = &cfg.engine {
        spec.engine = e.clone();
    }
    spec.deadline_ms = cfg.timeout.map(|t| t.as_millis() as u64);
    spec
}

/// Runs every scenario on a local worker pool: workers pull the next
/// undone instance from a shared cursor, so large instances don't
/// convoy behind a static partition. Ctrl-C raises the shared stop
/// flag; engines exit cooperatively and undone slots stay `None`.
fn run_local(scenarios: &[Scenario], cfg: &SweepConfig) -> Vec<Option<Vec<VerdictRow>>> {
    let stop = sigint::install();
    let ctx = ExecContext {
        stop: Some(stop.clone()),
        timeout: cfg.timeout,
        jobs: 1,
        ..ExecContext::default()
    };
    let specs: Vec<JobSpec> = scenarios.iter().map(|s| spec_for(s, cfg)).collect();
    let results: Mutex<Vec<Option<Vec<VerdictRow>>>> =
        Mutex::new((0..specs.len()).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);
    let workers = cfg.jobs.min(specs.len()).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= specs.len() || stop.load(Ordering::Relaxed) {
                    break;
                }
                let (rows, _) = verdict_mc::spec::execute(&specs[i], &ctx);
                results.lock().expect("results lock")[i] = Some(rows);
            });
        }
    });
    results.into_inner().expect("results lock")
}

/// Runs every scenario through a daemon: submit, then block for the
/// verdict. A transport failure marks that instance's properties as
/// `client-error` infra rows instead of aborting the sweep, so the
/// report stays complete and the exit code still says "infrastructure".
fn run_server(
    scenarios: &[Scenario],
    cfg: &SweepConfig,
    socket: &str,
) -> Result<Vec<Option<Vec<VerdictRow>>>, String> {
    let mut client = verdict_server::Client::connect(socket)
        .map_err(|e| format!("cannot connect to {socket}: {e}"))?;
    sigint::install();
    let mut results = Vec::with_capacity(scenarios.len());
    for s in scenarios {
        if sigint::interrupted() {
            results.push(None);
            continue;
        }
        let spec = spec_for(s, cfg);
        let outcome = client
            .submit(&spec)
            .and_then(|job| client.wait(job, |_| {}));
        match outcome {
            Ok(out) => results.push(Some(out.verdicts)),
            Err(e) => {
                eprintln!("scenarios: {}: {e}", s.id);
                let rows = s
                    .properties
                    .iter()
                    .map(|p| VerdictRow {
                        name: p.name.to_string(),
                        verdict: "unknown".to_string(),
                        reason: Some("client-error".to_string()),
                        engine: spec.engine.clone(),
                        detail: e.to_string(),
                    })
                    .collect();
                results.push(Some(rows));
            }
        }
    }
    Ok(results)
}

/// Scores one scenario's verdict rows against its property pack. A
/// missing row (sweep interrupted before this instance ran) scores as
/// an honest `cancelled`.
fn score(s: &Scenario, rows: Option<&Vec<VerdictRow>>) -> Vec<Scored> {
    s.properties
        .iter()
        .map(|p| {
            let row = rows.and_then(|rows| rows.iter().find(|r| r.name == p.name));
            match row {
                Some(r) => Scored {
                    name: p.name,
                    kind: p.kind.tag(),
                    expected: p.expected.tag(),
                    verdict: r.verdict.clone(),
                    engine: r.engine.clone(),
                    detail: r.detail.clone(),
                    reason: r.reason.clone(),
                },
                None => Scored {
                    name: p.name,
                    kind: p.kind.tag(),
                    expected: p.expected.tag(),
                    verdict: "cancelled".to_string(),
                    engine: String::new(),
                    detail: "not run (sweep interrupted)".to_string(),
                    reason: Some("cancelled".to_string()),
                },
            }
        })
        .collect()
}

/// The `verdict scenarios` entry point.
pub fn scenarios(args: &[String]) -> ExitCode {
    let cfg = match parse_args(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("scenarios: {e}");
            return ExitCode::FAILURE;
        }
    };
    let matrix = generate(&cfg.gen_cfg);
    if matrix.is_empty() {
        eprintln!("scenarios: empty matrix (pattern filter too narrow?)");
        return ExitCode::FAILURE;
    }
    if cfg.list {
        return list(&matrix, &cfg);
    }

    let mode = if cfg.socket.is_some() {
        "server"
    } else {
        "local"
    };
    let results = match &cfg.socket {
        Some(socket) => match run_server(&matrix, &cfg, socket) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("scenarios: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => run_local(&matrix, &cfg),
    };

    // Score and roll up per pattern (Pattern::ALL order, filtered to
    // what actually ran).
    let scored: Vec<Vec<Scored>> = matrix
        .iter()
        .zip(&results)
        .map(|(s, rows)| score(s, rows.as_ref()))
        .collect();
    let mut any_mismatch = false;
    let mut any_infra = false;
    let mut scenario_docs: Vec<String> = Vec::new();
    let mut rollups: Vec<(Pattern, Rollup)> = Vec::new();
    for (s, props) in matrix.iter().zip(&scored) {
        if rollups.last().map(|(p, _)| *p) != Some(s.pattern) {
            rollups.push((s.pattern, Rollup::default()));
        }
        let (_, roll) = rollups.last_mut().expect("rollup for current pattern");
        roll.instances += 1;
        let mut lines: Vec<String> = Vec::new();
        for p in props {
            roll.properties += 1;
            if p.matched() {
                roll.matched += 1;
            } else if p.infra() {
                roll.infra += 1;
                any_infra = true;
            } else {
                roll.mismatched += 1;
                any_mismatch = true;
            }
            if cfg.json {
                let reason = match &p.reason {
                    Some(r) => json_str(r),
                    None => "null".to_string(),
                };
                lines.push(format!(
                    "{{\"name\":{},\"kind\":{},\"expected\":{},\"verdict\":{},\"match\":{},\"engine\":{},\"reason\":{},\"detail\":{}}}",
                    json_str(p.name),
                    json_str(p.kind),
                    json_str(p.expected),
                    json_str(&p.verdict),
                    p.matched(),
                    json_str(&p.engine),
                    reason,
                    json_str(&p.detail)
                ));
            } else if !p.matched() {
                println!(
                    "  {} / {}: expected {}, got {} ({})",
                    s.id, p.name, p.expected, p.verdict, p.detail
                );
            }
        }
        if cfg.json {
            let params: Vec<String> = s
                .params
                .iter()
                .map(|(k, v)| format!("{}:{v}", json_str(k)))
                .collect();
            scenario_docs.push(format!(
                "{{\"id\":{},\"pattern\":{},\"params\":{{{}}},\"properties\":[{}]}}",
                json_str(&s.id),
                json_str(s.pattern.tag()),
                params.join(","),
                lines.join(",")
            ));
        } else {
            let ok = props.iter().filter(|p| p.matched()).count();
            println!("{}: {ok}/{} match", s.id, props.len());
        }
    }

    let code = exit_code(&Outcome {
        interrupted: sigint::interrupted(),
        violated: any_mismatch,
        infra_unknown: any_infra,
    });
    if cfg.json {
        let pattern_docs: Vec<String> = rollups
            .iter()
            .map(|(p, r)| {
                let incidents: Vec<String> =
                    incident_ids(*p).into_iter().map(json_str).collect();
                format!(
                    "{{\"pattern\":{},\"incidents\":[{}],\"instances\":{},\"properties\":{},\"matched\":{},\"mismatched\":{},\"infra\":{}}}",
                    json_str(p.tag()),
                    incidents.join(","),
                    r.instances,
                    r.properties,
                    r.matched,
                    r.mismatched,
                    r.infra
                )
            })
            .collect();
        println!(
            "{{\"schema\":{STATS_SCHEMA_VERSION},\"command\":\"scenarios\",\"mode\":{},\"seed\":{},\"samples\":{},\"certify\":{},\"scenarios\":[{}],\"patterns\":[{}],\"exit_code\":{code}}}",
            json_str(mode),
            cfg.gen_cfg.seed,
            cfg.gen_cfg.samples,
            cfg.certify,
            scenario_docs.join(","),
            pattern_docs.join(",")
        );
    } else {
        println!("---");
        for (p, r) in &rollups {
            let ids = incident_ids(*p);
            println!(
                "{}: {} instance(s), {}/{} verdicts match expectation{}{} \
                 (incidents: {})",
                p.tag(),
                r.instances,
                r.matched,
                r.properties,
                if r.mismatched > 0 {
                    format!(", {} MISMATCHED", r.mismatched)
                } else {
                    String::new()
                },
                if r.infra > 0 {
                    format!(", {} infra-failed", r.infra)
                } else {
                    String::new()
                },
                ids.join(", ")
            );
        }
    }
    ExitCode::from(code)
}

/// `--list`: enumerate the matrix without running anything.
fn list(matrix: &[Scenario], cfg: &SweepConfig) -> ExitCode {
    if cfg.json {
        let docs: Vec<String> = matrix
            .iter()
            .map(|s| {
                let params: Vec<String> = s
                    .params
                    .iter()
                    .map(|(k, v)| format!("{}:{v}", json_str(k)))
                    .collect();
                let props: Vec<String> = s
                    .properties
                    .iter()
                    .map(|p| {
                        format!(
                            "{{\"name\":{},\"kind\":{},\"expected\":{}}}",
                            json_str(p.name),
                            json_str(p.kind.tag()),
                            json_str(p.expected.tag())
                        )
                    })
                    .collect();
                format!(
                    "{{\"id\":{},\"pattern\":{},\"summary\":{},\"params\":{{{}}},\"properties\":[{}]}}",
                    json_str(&s.id),
                    json_str(s.pattern.tag()),
                    json_str(&s.summary),
                    params.join(","),
                    props.join(",")
                )
            })
            .collect();
        println!(
            "{{\"schema\":{STATS_SCHEMA_VERSION},\"command\":\"scenarios\",\"mode\":\"list\",\"seed\":{},\"samples\":{},\"scenarios\":[{}]}}",
            cfg.gen_cfg.seed,
            cfg.gen_cfg.samples,
            docs.join(",")
        );
    } else {
        for s in matrix {
            let props: Vec<String> = s
                .properties
                .iter()
                .map(|p| format!("{} ({}, expect {})", p.name, p.kind.tag(), p.expected.tag()))
                .collect();
            println!("{}  [{}]", s.id, props.join("; "));
            println!("    {}", s.summary);
        }
        println!("---");
        println!("{} instance(s)", matrix.len());
    }
    ExitCode::SUCCESS
}

/// `verdict schema` — dump the versioned output contract: the JSON
/// shapes of every machine-readable document the CLI and daemon emit,
/// keyed by command. The document is itself schema-versioned; the
/// compat test in `tests/schema_compat.rs` freezes the schema-2 field
/// sets, so removing or retyping a field without bumping
/// `STATS_SCHEMA_VERSION` fails the gate (additions are fine).
pub fn schema(_args: &[String]) -> ExitCode {
    // Field types use a compact notation: scalar type names, `[T]` for
    // arrays, `{K:V}` for maps, `T?` for optional/conditional fields,
    // and `a|b` for closed enums.
    println!(
        "{{\"schema\":{STATS_SCHEMA_VERSION},\"command\":\"schema\",\"commands\":{{\
{},{},{},{}}}}}",
        check_shape(),
        synth_shape(),
        scenarios_shape(),
        server_stats_shape()
    );
    ExitCode::SUCCESS
}

fn check_shape() -> String {
    "\"check\":{\"fields\":{\
\"schema\":\"int\",\
\"command\":\"check\",\
\"model\":\"string\",\
\"properties\":\"[property]\",\
\"exit_code\":\"int\"},\
\"property\":{\
\"name\":\"string\",\
\"verdict\":\"safe|unsafe|cancelled|unknown\",\
\"detail\":\"string\",\
\"engine\":\"string\",\
\"certificate\":\"string\",\
\"wall_ms\":\"int\",\
\"resumed\":\"bool?\",\
\"stats\":\"object?\",\
\"contenders\":\"[object]?\"}}"
        .to_string()
}

fn synth_shape() -> String {
    "\"synth\":{\"fields\":{\
\"schema\":\"int\",\
\"command\":\"synth\",\
\"model\":\"string\",\
\"property\":\"string\",\
\"params\":\"[string]\",\
\"verdicts\":\"[assignment]\",\
\"wall_ms\":\"int\"},\
\"assignment\":{\
\"values\":\"[string]\",\
\"verdict\":\"safe|unsafe|cancelled|unknown\",\
\"detail\":\"string\",\
\"attempts\":\"int\",\
\"reason\":\"string?\"}}"
        .to_string()
}

fn scenarios_shape() -> String {
    "\"scenarios\":{\"fields\":{\
\"schema\":\"int\",\
\"command\":\"scenarios\",\
\"mode\":\"local|server|list\",\
\"seed\":\"int\",\
\"samples\":\"int\",\
\"certify\":\"bool\",\
\"scenarios\":\"[scenario]\",\
\"patterns\":\"[pattern]\",\
\"exit_code\":\"int\"},\
\"scenario\":{\
\"id\":\"string\",\
\"pattern\":\"string\",\
\"params\":\"{string:int}\",\
\"properties\":\"[property]\"},\
\"property\":{\
\"name\":\"string\",\
\"kind\":\"invariant|ltl\",\
\"expected\":\"safe|unsafe\",\
\"verdict\":\"safe|unsafe|cancelled|unknown\",\
\"match\":\"bool\",\
\"engine\":\"string\",\
\"reason\":\"string?\",\
\"detail\":\"string\"},\
\"pattern\":{\
\"pattern\":\"string\",\
\"incidents\":\"[string]\",\
\"instances\":\"int\",\
\"properties\":\"int\",\
\"matched\":\"int\",\
\"mismatched\":\"int\",\
\"infra\":\"int\"}}"
        .to_string()
}

fn server_stats_shape() -> String {
    "\"server-stats\":{\"fields\":{\
\"schema\":\"int\",\
\"engine\":\"string\",\
\"sat\":\"object\",\
\"smt\":\"object\",\
\"bdd\":\"object\",\
\"runtime\":\"object\",\
\"server\":\"object\",\
\"supervision\":\"object\",\
\"fixpoint_iterations\":\"int\",\
\"states_visited\":\"int\",\
\"retries\":\"int\",\
\"faults_injected\":\"int\",\
\"depth_samples\":\"int\",\
\"depths\":\"[object]\",\
\"phases\":\"object\"}}"
        .to_string()
}
