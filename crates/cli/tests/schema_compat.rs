//! The output contract, frozen: `verdict schema` documents the shape
//! of every machine-readable JSON document, and this test pins the
//! schema-2 field sets. Removing or retyping a field fails here until
//! `STATS_SCHEMA_VERSION` is bumped (at which point a new baseline
//! must be frozen); *adding* fields is always compatible and passes.

use std::process::Command;

use verdict_journal::json::{parse, Json};

const BIN: &str = env!("CARGO_BIN_EXE_verdict");

/// The frozen schema-2 baseline: (command, section, field, type).
/// Every tuple must exist verbatim in the live `verdict schema` dump.
const BASELINE_V2: &[(&str, &str, &str, &str)] = &[
    // verdict check --json
    ("check", "fields", "schema", "int"),
    ("check", "fields", "command", "check"),
    ("check", "fields", "model", "string"),
    ("check", "fields", "properties", "[property]"),
    ("check", "fields", "exit_code", "int"),
    ("check", "property", "name", "string"),
    (
        "check",
        "property",
        "verdict",
        "safe|unsafe|cancelled|unknown",
    ),
    ("check", "property", "detail", "string"),
    ("check", "property", "engine", "string"),
    ("check", "property", "certificate", "string"),
    ("check", "property", "wall_ms", "int"),
    // verdict synth --json
    ("synth", "fields", "schema", "int"),
    ("synth", "fields", "model", "string"),
    ("synth", "fields", "property", "string"),
    ("synth", "fields", "params", "[string]"),
    ("synth", "fields", "verdicts", "[assignment]"),
    ("synth", "fields", "wall_ms", "int"),
    ("synth", "assignment", "values", "[string]"),
    (
        "synth",
        "assignment",
        "verdict",
        "safe|unsafe|cancelled|unknown",
    ),
    ("synth", "assignment", "attempts", "int"),
    ("synth", "assignment", "reason", "string?"),
    // verdict scenarios --json
    ("scenarios", "fields", "schema", "int"),
    ("scenarios", "fields", "mode", "local|server|list"),
    ("scenarios", "fields", "scenarios", "[scenario]"),
    ("scenarios", "fields", "patterns", "[pattern]"),
    ("scenarios", "fields", "exit_code", "int"),
    ("scenarios", "scenario", "id", "string"),
    ("scenarios", "scenario", "pattern", "string"),
    ("scenarios", "scenario", "properties", "[property]"),
    ("scenarios", "property", "expected", "safe|unsafe"),
    (
        "scenarios",
        "property",
        "verdict",
        "safe|unsafe|cancelled|unknown",
    ),
    ("scenarios", "property", "match", "bool"),
    ("scenarios", "pattern", "incidents", "[string]"),
    ("scenarios", "pattern", "matched", "int"),
    ("scenarios", "pattern", "mismatched", "int"),
    ("scenarios", "pattern", "infra", "int"),
    // verdict server-stats (the daemon's stats document)
    ("server-stats", "fields", "schema", "int"),
    ("server-stats", "fields", "sat", "object"),
    ("server-stats", "fields", "smt", "object"),
    ("server-stats", "fields", "bdd", "object"),
    ("server-stats", "fields", "server", "object"),
    ("server-stats", "fields", "supervision", "object"),
    ("server-stats", "fields", "retries", "int"),
];

#[test]
fn schema_dump_is_backward_compatible_with_the_frozen_baseline() {
    let out = Command::new(BIN)
        .arg("schema")
        .output()
        .expect("schema runs");
    assert!(out.status.success(), "verdict schema exits 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = parse(&stdout).unwrap_or_else(|e| panic!("bad JSON ({e}): {stdout}"));

    // The baseline below freezes schema *2*. A version bump deliberately
    // un-freezes the contract — the bumped schema needs a new baseline,
    // which is the one change this test must not block.
    let version = doc
        .get("schema")
        .and_then(Json::as_int)
        .expect("schema version");
    if version != 2 {
        eprintln!("schema version {version} != 2: baseline not enforced (freeze a new one)");
        return;
    }

    let commands = doc.get("commands").expect("commands object");
    for (command, section, field, ty) in BASELINE_V2 {
        let got = commands
            .get(command)
            .and_then(|c| c.get(section))
            .and_then(|s| s.get(field))
            .and_then(Json::as_str);
        match got {
            None => panic!(
                "schema-2 field removed without a version bump: \
                 {command}.{section}.{field} (expected type `{ty}`)"
            ),
            Some(got) if got != *ty => panic!(
                "schema-2 field retyped without a version bump: \
                 {command}.{section}.{field} is `{got}`, baseline says `{ty}`"
            ),
            Some(_) => {}
        }
    }
}
