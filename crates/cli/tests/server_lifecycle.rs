//! Daemon lifecycle through the real `verdict` binary: concurrent
//! submits, SIGKILL mid-flight, restart recovery to the same verdicts a
//! plain `verdict check` produces, and a SIGTERM drain that exits 0.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use verdict_journal::json::Json;
use verdict_server::{Client, JobSpec};

const BIN: &str = env!("CARGO_BIN_EXE_verdict");

/// A model every engine decides instantly.
const TINY: &str = "\
system tiny {
    var n : 0..7;
    init n = 0;
    trans next(n) = if n < 7 then n + 1 else n;
    invariant in_range: n <= 7;
}
";

/// A model the explicit engine grinds on for >30s but abandons within
/// ~10ms of a cancel or deadline (see crates/server/tests/daemon.rs).
const SLOW: &str = "\
system slow {
    var n : 0..20000;
    init n = 0;
    trans next(n) = if n < 20000 then n + 1 else n;
    invariant nonneg: n >= 0;
}
";

/// Minimal self-cleaning tempdir (no external crates allowed).
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new() -> TempDir {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "verdict-lifecycle-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        TempDir { path }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A daemon subprocess on `dir`'s socket/WAL; killed on drop so a
/// failing test never leaks a process.
struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn spawn(dir: &Path) -> Daemon {
        Daemon::spawn_with(dir, &[])
    }

    fn spawn_with(dir: &Path, extra: &[&str]) -> Daemon {
        let socket = dir.join("verdict.sock");
        let child = Command::new(BIN)
            .args(["serve", "--socket"])
            .arg(&socket)
            .arg("--wal")
            .arg(dir.join("wal"))
            .args(["--workers", "1", "--grace", "5"])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        Daemon { child, socket }
    }

    fn client(&self) -> Client {
        Client::connect_with_retry(&self.socket, Duration::from_secs(10))
            .expect("client connects to daemon")
    }

    /// SIGKILL — the crash under test, not a shutdown path.
    fn sigkill(mut self) {
        self.child.kill().expect("sigkill");
        self.child.wait().expect("reap");
        self.child = spent_child();
    }

    /// SIGTERM, then the daemon's exit code after draining.
    fn sigterm_and_wait(mut self) -> i32 {
        let pid = self.child.id().to_string();
        let ok = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("kill runs")
            .success();
        assert!(ok, "kill -TERM failed");
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                self.child = spent_child();
                return status.code().expect("daemon exits with a code");
            }
            assert!(Instant::now() < deadline, "daemon did not drain in time");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// A reaped placeholder so `Drop` has nothing left to kill.
fn spent_child() -> Child {
    Command::new("true").spawn().expect("placeholder child")
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn wait_until_running(client: &mut Client, job: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = client.status(job).expect("status");
        if s.state == "running" {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "job {job} never started running (state {})",
            s.state
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn slow_spec() -> JobSpec {
    let mut spec = JobSpec::check(SLOW);
    spec.engine = "explicit".into();
    spec.deadline_ms = Some(60_000);
    spec
}

#[test]
fn sigkill_mid_flight_restart_recovers_reference_verdicts() {
    let dir = TempDir::new();

    // Reference verdict from the plain one-shot CLI path.
    let model_path = dir.path.join("tiny.vd");
    std::fs::write(&model_path, TINY).unwrap();
    let reference = Command::new(BIN)
        .arg("check")
        .arg(&model_path)
        .output()
        .expect("reference check runs");
    assert!(reference.status.success(), "reference check exits 0");
    let ref_out = String::from_utf8_lossy(&reference.stdout).to_string();
    assert!(ref_out.contains("HOLDS"), "reference: {ref_out}");

    // Life 1: one completed job, one mid-flight, two queued — then die.
    let daemon = Daemon::spawn(&dir.path);
    let mut client = daemon.client();
    let done_job = client.submit(&JobSpec::check(TINY)).expect("submit");
    let done_life1 = client.wait(done_job, |_| {}).expect("wait");
    assert_eq!(done_life1.state, "done");
    assert_eq!(done_life1.verdicts.len(), 1);
    assert_eq!(done_life1.verdicts[0].name, "in_range");
    // Same answer as the reference run: HOLDS ⇔ safe.
    assert_eq!(done_life1.verdicts[0].verdict, "safe");

    let slow_job = client.submit(&slow_spec()).expect("submit slow");
    wait_until_running(&mut client, slow_job);
    let queued_a = client.submit(&JobSpec::check(TINY)).expect("submit");
    let queued_b = client.submit(&JobSpec::check(TINY)).expect("submit");
    daemon.sigkill();

    // Life 2: every acknowledged job must come back — the decided one
    // with its exact verdicts, the rest re-run to the reference answer.
    let daemon = Daemon::spawn(&dir.path);
    let mut client = daemon.client();
    let recovered = client.status(done_job).expect("status after restart");
    assert_eq!(recovered.state, "done");
    assert!(recovered.recovered, "decided job is trusted, not re-run");
    assert_eq!(recovered.verdicts.len(), done_life1.verdicts.len());
    for (a, b) in recovered.verdicts.iter().zip(&done_life1.verdicts) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.verdict, b.verdict);
    }

    // The interrupted slow job is requeued (running again, since it was
    // first in line); cancel it to free the single worker.
    wait_until_running(&mut client, slow_job);
    client.cancel(slow_job).expect("cancel slow");
    for job in [queued_a, queued_b] {
        let out = client.wait(job, |_| {}).expect("wait requeued");
        assert_eq!(out.state, "done", "job {job} re-ran after the crash");
        assert_eq!(out.verdicts[0].name, "in_range");
        assert_eq!(out.verdicts[0].verdict, "safe");
    }

    // Graceful goodbye: SIGTERM drains and exits 0.
    assert_eq!(daemon.sigterm_and_wait(), 0);
}

#[test]
fn concurrent_submitters_amortize_fsyncs_and_drain_exits_zero() {
    let dir = TempDir::new();
    // Queue big enough that backpressure never rejects the burst — this
    // test measures the WAL, not admission control.
    let daemon = Daemon::spawn_with(&dir.path, &["--queue", "200"]);

    // 4 concurrent submitters, each with its own connection, all
    // appending admission records to the WAL at once.
    let mut handles = Vec::new();
    for _ in 0..4 {
        let socket = daemon.socket.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect_with_retry(&socket, Duration::from_secs(10))
                .expect("submitter connects");
            (0..25)
                .map(|_| client.submit(&JobSpec::check(TINY)).expect("submit"))
                .collect::<Vec<u64>>()
        }));
    }
    let jobs: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("submitter thread"))
        .collect();
    assert_eq!(jobs.len(), 100, "every concurrent submit acknowledged");

    let mut client = daemon.client();
    let stats = client.stats().expect("stats");
    let counter = |name: &str| -> i64 {
        stats
            .get("server")
            .and_then(|s| s.get(name))
            .and_then(Json::as_int)
            .unwrap_or_else(|| panic!("stats missing server.{name}"))
    };
    assert_eq!(counter("jobs_accepted"), 100);
    // The group-commit win: 100 concurrent durable appends took
    // measurably fewer fsyncs than one-per-record.
    assert!(
        counter("wal_fsyncs") < counter("wal_appends"),
        "fsyncs {} !< appends {}",
        counter("wal_fsyncs"),
        counter("wal_appends")
    );

    assert_eq!(daemon.sigterm_and_wait(), 0);
}
