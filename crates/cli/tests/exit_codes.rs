//! Assertion tests over the `verdict` binary's exit-code contract:
//!
//! | code | meaning                                                    |
//! |------|------------------------------------------------------------|
//! | 0    | every property holds or is unknown for an honest reason    |
//! | 2    | at least one property violated                             |
//! | 1    | usage/parse/engine error, or a property left unknown by an |
//! |      | infrastructure failure (engine-failure, resource-exhausted,|
//! |      | certificate-rejected)                                      |

use std::path::PathBuf;
use std::process::{Command, Output};

const SAFE_MODEL: &str = "
system safe {
    var n : 0..7;
    init n = 0;
    trans next(n) = if n < 7 then n + 1 else n;
    invariant bounded: n <= 7;
}
";

const UNSAFE_MODEL: &str = "
system unsafe {
    var n : 0..7;
    init n = 0;
    trans next(n) = if n < 7 then n + 1 else n;
    invariant low: n < 5;
}
";

const SWEEP_MODEL: &str = "
system sweep {
    var n : 0..10;
    param step : 1..3;
    init n = 0;
    trans next(n) = if n <= 7 then n + step else n;
    invariant miss5: n != 5;
}
";

fn write_model(tag: &str, body: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("verdict-exit-{}-{tag}.vd", std::process::id()));
    std::fs::write(&path, body).expect("model written");
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_verdict"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("not signal-killed")
}

#[test]
fn safe_model_exits_zero() {
    let m = write_model("safe", SAFE_MODEL);
    let out = run(&["check", m.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{out:?}");
}

#[test]
fn violated_model_exits_two() {
    let m = write_model("unsafe", UNSAFE_MODEL);
    let out = run(&["check", m.to_str().unwrap()]);
    assert_eq!(code(&out), 2, "{out:?}");
}

#[test]
fn honest_unknown_exits_zero() {
    // BMC cannot prove a holding invariant: depth-bound is an honest
    // Unknown, not an infrastructure failure.
    let m = write_model("honest", SAFE_MODEL);
    let out = run(&[
        "check",
        m.to_str().unwrap(),
        "--engine",
        "bmc",
        "--depth",
        "4",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("UNKNOWN"), "{text}");
}

#[test]
fn parse_error_exits_one() {
    let m = write_model("garbled", "system { nope");
    let out = run(&["check", m.to_str().unwrap()]);
    assert_eq!(code(&out), 1, "{out:?}");
}

#[test]
fn infrastructure_unknown_exits_one() {
    // An injected resource-exhaustion fault leaves the property unknown
    // for an infrastructure reason → exit 1 under the contract.
    let m = write_model("infra", SAFE_MODEL);
    let out = run(&[
        "check",
        m.to_str().unwrap(),
        "--engine",
        "kind",
        "--fault",
        "sat.solve:exhaust:1",
    ]);
    assert_eq!(code(&out), 1, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("UNKNOWN"), "{text}");
}

#[test]
fn retries_recover_infrastructure_failures() {
    let m = write_model("retry", SAFE_MODEL);
    let out = run(&[
        "check",
        m.to_str().unwrap(),
        "--engine",
        "kind",
        "--fault",
        "sat.solve:exhaust:1",
        "--retries",
        "2",
        "--retry-backoff-ms",
        "0",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("HOLDS"), "{text}");
}

#[test]
fn contained_panic_exits_one_not_crash() {
    let m = write_model("panic", SAFE_MODEL);
    let out = run(&[
        "check",
        m.to_str().unwrap(),
        "--engine",
        "kind",
        "--fault",
        "sat.solve:panic:1",
    ]);
    // Contained at the verifier boundary: a clean exit 1, not a signal
    // or a Rust panic abort (101).
    assert_eq!(code(&out), 1, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("engine failure"), "{text}");
}

#[test]
fn synth_json_reports_attempts_and_reasons() {
    let m = write_model("synthjson", SWEEP_MODEL);
    let out = run(&[
        "synth",
        m.to_str().unwrap(),
        "--params",
        "step",
        "--fault",
        "mc.synth.worker:panic:1",
        "--retries",
        "2",
        "--retry-backoff-ms",
        "0",
        "--json",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("\"attempts\":2"),
        "retried assignment: {text}"
    );
    assert!(
        text.contains("\"attempts\":1"),
        "untouched assignment: {text}"
    );
    assert!(text.contains("\"reason\":null"), "{text}");

    // Without retries the injected panic stays visible as a tagged
    // UnknownReason.
    let out = run(&[
        "synth",
        m.to_str().unwrap(),
        "--params",
        "step",
        "--fault",
        "mc.synth.worker:panic:1",
        "--json",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"reason\":\"engine-failure\""), "{text}");
}

#[test]
fn conflicting_flags_exit_one() {
    let m = write_model("flags", SAFE_MODEL);
    for args in [
        ["check", "--journal", "/tmp/a", "--resume", "/tmp/b"].as_slice(),
        ["check", "--fault", "sat.solve:panic", "--fault-seed", "1"].as_slice(),
    ] {
        let mut full = vec![args[0], m.to_str().unwrap()];
        full.extend_from_slice(&args[1..]);
        let out = run(&full);
        assert_eq!(code(&out), 1, "{args:?}: {out:?}");
    }
}
