//! The `verdict scenarios` sweep through the real binary: the local
//! matrix scores clean against its ground truth, `--list` enumerates
//! the acceptance-floor matrix, and a sweep routed through a live
//! daemon produces verdict-for-verdict the same report as the local
//! pool (the unified job-spec guarantee, observed end to end).

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use verdict_journal::json::{parse, Json};
use verdict_server::Client;

const BIN: &str = env!("CARGO_BIN_EXE_verdict");

/// Minimal self-cleaning tempdir (no external crates allowed).
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new() -> TempDir {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "verdict-scenarios-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        TempDir { path }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A daemon subprocess; killed on drop so a failing test never leaks.
struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn spawn(dir: &Path) -> Daemon {
        let socket = dir.join("verdict.sock");
        let child = Command::new(BIN)
            .args(["serve", "--socket"])
            .arg(&socket)
            .arg("--wal")
            .arg(dir.join("wal"))
            .args(["--workers", "2", "--grace", "5"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        // Block until the socket accepts connections.
        drop(
            Client::connect_with_retry(&socket, Duration::from_secs(10)).expect("daemon comes up"),
        );
        Daemon { child, socket }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Runs `verdict scenarios <args> --json` and parses the report.
fn sweep(args: &[&str]) -> (Json, i32) {
    let out = Command::new(BIN)
        .arg("scenarios")
        .args(args)
        .arg("--json")
        .output()
        .expect("scenarios runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = parse(&stdout).unwrap_or_else(|e| panic!("bad JSON ({e}): {stdout}"));
    (doc, out.status.code().expect("exit code"))
}

/// Flattens a report to (scenario id, property, verdict) triples.
fn verdicts(doc: &Json) -> Vec<(String, String, String)> {
    let mut rows = Vec::new();
    for s in doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .expect("scenarios")
    {
        let id = s.get("id").and_then(Json::as_str).expect("id").to_string();
        for p in s
            .get("properties")
            .and_then(Json::as_arr)
            .expect("properties")
        {
            rows.push((
                id.clone(),
                p.get("name")
                    .and_then(Json::as_str)
                    .expect("name")
                    .to_string(),
                p.get("verdict")
                    .and_then(Json::as_str)
                    .expect("verdict")
                    .to_string(),
            ));
        }
    }
    rows
}

#[test]
fn list_enumerates_the_acceptance_floor_matrix() {
    let (doc, code) = sweep(&["--list"]);
    assert_eq!(code, 0);
    assert_eq!(doc.get("schema").and_then(Json::as_int), Some(2));
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .expect("scenarios");
    assert!(
        scenarios.len() >= 40,
        "matrix floor: {} < 40 instances",
        scenarios.len()
    );
    let mut patterns: Vec<&str> = scenarios
        .iter()
        .filter_map(|s| s.get("pattern").and_then(Json::as_str))
        .collect();
    patterns.sort_unstable();
    patterns.dedup();
    assert_eq!(patterns.len(), 5, "all five patterns: {patterns:?}");
}

#[test]
fn local_sweep_scores_clean_and_maps_patterns_to_incidents() {
    let (doc, code) = sweep(&["--pattern", "config-canary,split-brain"]);
    assert_eq!(code, 0, "every verdict matches its expectation");
    assert_eq!(doc.get("exit_code").and_then(Json::as_int), Some(0));
    for s in doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .expect("scenarios")
    {
        for p in s
            .get("properties")
            .and_then(Json::as_arr)
            .expect("properties")
        {
            assert!(
                matches!(p.get("match"), Some(Json::Bool(true))),
                "mismatch in {:?}: {p:?}",
                s.get("id")
            );
        }
    }
    let patterns = doc
        .get("patterns")
        .and_then(Json::as_arr)
        .expect("patterns");
    assert_eq!(patterns.len(), 2);
    for p in patterns {
        let incidents = p
            .get("incidents")
            .and_then(Json::as_arr)
            .expect("incidents");
        assert!(
            !incidents.is_empty(),
            "pattern {:?} maps to no Table 1 incident",
            p.get("pattern")
        );
        assert_eq!(p.get("mismatched").and_then(Json::as_int), Some(0));
        assert_eq!(p.get("infra").and_then(Json::as_int), Some(0));
    }
}

#[test]
fn server_sweep_agrees_with_local_verdict_for_verdict() {
    let dir = TempDir::new();
    let daemon = Daemon::spawn(&dir.path);
    let socket = daemon.socket.to_str().expect("utf-8 socket path");

    let (local, local_code) = sweep(&["--pattern", "config-canary"]);
    let (remote, remote_code) = sweep(&["--pattern", "config-canary", "--socket", socket]);

    assert_eq!(local_code, 0);
    assert_eq!(remote_code, 0);
    assert_eq!(local.get("mode").and_then(Json::as_str), Some("local"));
    assert_eq!(remote.get("mode").and_then(Json::as_str), Some("server"));
    let lv = verdicts(&local);
    let rv = verdicts(&remote);
    assert!(!lv.is_empty());
    assert_eq!(lv, rv, "local and through-server sweeps disagree");
}
