//! Kill-and-resume over the real binary: a journaled sweep killed with
//! SIGKILL (no chance to clean up) or interrupted with SIGINT (graceful
//! drain) must resume to the same verdict map as an uninterrupted run,
//! without re-solving decided assignments.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

/// 64 assignments over a state space big enough that the sweep takes
/// long enough to kill mid-flight, but finishes in well under a minute.
const MODEL: &str = "
system killable {
    var n : 0..120;
    param a : 1..8;
    param b : 1..8;
    init n = 0;
    trans next(n) = if n <= 100 then n + a + b else n;
    invariant miss: n != 37;
}
";

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("verdict-kill-{}-{tag}", std::process::id()))
}

fn write_model(tag: &str) -> PathBuf {
    let path = temp(tag).with_extension("vd");
    std::fs::write(&path, MODEL).expect("model written");
    path
}

fn spawn_sweep(model: &Path, journal: &Path, resume: bool) -> Child {
    let flag = if resume { "--resume" } else { "--journal" };
    Command::new(env!("CARGO_BIN_EXE_verdict"))
        .args([
            "synth",
            model.to_str().unwrap(),
            "--params",
            "a,b",
            flag,
            journal.to_str().unwrap(),
            "--json",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns")
}

/// Wait until the journal holds at least `n` verdict records (the victim
/// is mid-sweep) or the child exits on its own.
fn wait_for_verdicts(journal: &Path, n: usize, child: &mut Child) -> bool {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        let verdicts = std::fs::read_to_string(journal)
            .map(|s| {
                s.lines()
                    .filter(|l| l.contains("\"type\":\"verdict\""))
                    .count()
            })
            .unwrap_or(0);
        if verdicts >= n {
            return true;
        }
        if child.try_wait().expect("try_wait").is_some() {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("sweep never produced {n} verdicts");
}

/// The `"verdicts":[...]` array of a synth `--json` document — the
/// verdict map, with the timing field left out of the comparison.
fn verdict_map(out: &Output) -> String {
    let text = String::from_utf8_lossy(&out.stdout);
    let start = text.find("\"verdicts\":[").expect("json has verdicts");
    let end = text[start..].find("],").expect("array closes") + start;
    text[start..=end].to_string()
}

fn run_clean(model: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_verdict"))
        .args([
            "synth",
            model.to_str().unwrap(),
            "--params",
            "a,b",
            "--json",
        ])
        .output()
        .expect("clean run")
}

#[test]
fn sigkill_then_resume_matches_uninterrupted() {
    let model = write_model("sigkill");
    let journal = temp("sigkill").with_extension("jsonl");
    let _ = std::fs::remove_file(&journal);

    let mut child = spawn_sweep(&model, &journal, false);
    let killed_midway = wait_for_verdicts(&journal, 3, &mut child);
    child.kill().ok();
    child.wait().expect("reaped");

    let before = std::fs::read_to_string(&journal).expect("journal survives SIGKILL");
    let decided_before = before
        .lines()
        .filter(|l| l.contains("\"type\":\"verdict\""))
        .count();
    if killed_midway {
        assert!(decided_before >= 3, "fsync'd records survive the kill");
    }

    let resumed = spawn_sweep(&model, &journal, true)
        .wait_with_output()
        .expect("resumed run");
    assert!(resumed.status.success(), "{resumed:?}");
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    if killed_midway {
        assert!(
            stderr.contains("resumed") && stderr.contains("decided assignment"),
            "resume must skip decided work: {stderr}"
        );
    }
    assert_eq!(
        verdict_map(&resumed),
        verdict_map(&run_clean(&model)),
        "resumed verdict map differs from uninterrupted run"
    );

    let _ = std::fs::remove_file(&model);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn sigint_drains_then_resume_matches_uninterrupted() {
    let model = write_model("sigint");
    let journal = temp("sigint").with_extension("jsonl");
    let _ = std::fs::remove_file(&journal);

    let mut child = spawn_sweep(&model, &journal, false);
    let interrupted_midway = wait_for_verdicts(&journal, 3, &mut child);
    if interrupted_midway {
        let ok = Command::new("kill")
            .args(["-INT", &child.id().to_string()])
            .status()
            .expect("kill runs")
            .success();
        assert!(ok, "SIGINT delivered");
    }
    let out = child.wait_with_output().expect("victim exits");
    if interrupted_midway {
        // Graceful drain: exit 130, not a signal death.
        assert_eq!(out.status.code(), Some(130), "{out:?}");
    }

    let resumed = spawn_sweep(&model, &journal, true)
        .wait_with_output()
        .expect("resumed run");
    assert!(resumed.status.success(), "{resumed:?}");
    assert_eq!(
        verdict_map(&resumed),
        verdict_map(&run_clean(&model)),
        "resumed verdict map differs from uninterrupted run"
    );

    let _ = std::fs::remove_file(&model);
    let _ = std::fs::remove_file(&journal);
}

/// Resuming against a different model must be refused: the journal
/// header fingerprints the system, parameter space, property, and
/// engine.
#[test]
fn resume_refuses_mismatched_model() {
    let model = write_model("fpr");
    let journal = temp("fpr").with_extension("jsonl");
    let _ = std::fs::remove_file(&journal);
    let out = spawn_sweep(&model, &journal, false)
        .wait_with_output()
        .expect("journaled run");
    assert!(out.status.success(), "{out:?}");

    let other = temp("fpr-other").with_extension("vd");
    std::fs::write(&other, MODEL.replace("n != 37", "n != 38")).expect("model written");
    let mismatch = spawn_sweep(&other, &journal, true)
        .wait_with_output()
        .expect("mismatched resume");
    assert_eq!(mismatch.status.code(), Some(1), "{mismatch:?}");
    let stderr = String::from_utf8_lossy(&mismatch.stderr);
    assert!(
        stderr.contains("journal") || stderr.contains("mismatch"),
        "{stderr}"
    );

    let _ = std::fs::remove_file(&model);
    let _ = std::fs::remove_file(&other);
    let _ = std::fs::remove_file(&journal);
}
