//! Shared harness pieces for the table/figure regeneration binaries.
//!
//! One binary per table/figure of the paper (see DESIGN.md's
//! per-experiment index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — incident-study characteristic counts |
//! | `fig2` | Fig. 2 — pod oscillation time series (ksim) |
//! | `fig5` | Fig. 5 — case study 1 counterexample + parameter synthesis |
//! | `fig6` | Fig. 6 — scalability sweep over fat-tree topologies |
//! | `case2` | Case study 2 — LB+ECMP liveness lassos (§4.2) |
//! | `fig1_dot` | Fig. 1 — interaction graph, DOT rendering |
//! | `parallel` | parallel layer: sweep sharding + portfolio racing → `BENCH_parallel.json` |
//! | `synth` | clone vs incremental (assumption-pinned) synthesis sweep → `BENCH_synth.json` |

use std::time::{Duration, Instant};

/// Runs a closure, returning its result and wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration the way the figure tables print it.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 100 {
        format!("{:.0}s", d.as_secs_f64())
    } else if d.as_secs_f64() >= 1.0 {
        format!("{:.1}s", d.as_secs_f64())
    } else {
        format!("{:.0}ms", d.as_secs_f64() * 1e3)
    }
}

/// Simple `--flag value` extraction for the harness binaries.
pub fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// True if a bare `--flag` is present.
pub fn flag_present(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(2.34)), "2.3s");
        assert_eq!(fmt_duration(Duration::from_secs(120)), "120s");
    }

    #[test]
    fn timed_returns_result() {
        let (x, d) = timed(|| 41 + 1);
        assert_eq!(x, 42);
        assert!(d.as_secs() < 5);
    }
}
