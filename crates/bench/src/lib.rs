//! Shared harness pieces for the table/figure regeneration binaries.
//!
//! One binary per table/figure of the paper (see DESIGN.md's
//! per-experiment index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — incident-study characteristic counts |
//! | `fig2` | Fig. 2 — pod oscillation time series (ksim) |
//! | `fig5` | Fig. 5 — case study 1 counterexample + parameter synthesis |
//! | `fig6` | Fig. 6 — scalability sweep over fat-tree topologies |
//! | `case2` | Case study 2 — LB+ECMP liveness lassos (§4.2) |
//! | `fig1_dot` | Fig. 1 — interaction graph, DOT rendering |
//! | `parallel` | parallel layer: sweep sharding + portfolio racing → `BENCH_parallel.json` |
//! | `synth` | clone vs incremental (assumption-pinned) synthesis sweep → `BENCH_synth.json` |

use std::time::{Duration, Instant};

/// Runs a closure, returning its result and wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration the way the figure tables print it.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 100 {
        format!("{:.0}s", d.as_secs_f64())
    } else if d.as_secs_f64() >= 1.0 {
        format!("{:.1}s", d.as_secs_f64())
    } else {
        format!("{:.0}ms", d.as_secs_f64() * 1e3)
    }
}

/// Short git revision of the checkout being measured, or `"unknown"`
/// when the benchmark runs outside a git work tree (e.g. from an
/// unpacked source tarball).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Samples `available_parallelism` right now. The JSON-writing bench
/// binaries call this once at startup (for the banner) and once again
/// after the measured runs: on shared or cgroup-limited hosts the core
/// budget can shrink mid-run, so the provenance object must reflect the
/// worst parallelism observed, not an optimistic startup snapshot.
pub fn sample_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Renders the shared `"host"` provenance object embedded in the bench
/// JSON files: core count, git revision, the widest `--jobs` setting the
/// sweep exercises, and the repetition count. When the host has fewer
/// cores than the widest jobs setting the parallel speedups in the file
/// were physically unattainable, so the object carries
/// `"degraded_host": true` and a loud warning goes to stderr.
pub fn host_provenance_json(cores: usize, max_jobs: usize, reps: usize) -> String {
    let degraded = cores < max_jobs;
    if degraded {
        eprintln!(
            "WARNING: this host exposes {cores} core(s) but the sweep runs up to \
             {max_jobs} jobs; parallel speedups measured here are bounded by the \
             host, not the runtime. The output is tagged \"degraded_host\": true."
        );
    }
    format!(
        "{{\"available_parallelism\": {cores}, \"git_rev\": \"{}\", \
         \"jobs\": {max_jobs}, \"reps\": {reps}, \"degraded_host\": {degraded}}}",
        git_rev()
    )
}

/// Simple `--flag value` extraction for the harness binaries (the
/// shared `verdict_mc::spec` helper over this process's argv).
pub fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    verdict_mc::spec::flag_value(&args, flag)
}

/// Builds [`verdict_mc::result::CheckOptions`] from this process's argv through the unified
/// `verdict_mc::spec` flag surface (`--depth`, `--timeout`, `--jobs`,
/// `--certify`, …), so the harness binaries accept exactly the flags
/// the CLI does.
pub fn options_from_argv() -> Result<verdict_mc::result::CheckOptions, String> {
    let args: Vec<String> = std::env::args().collect();
    verdict_mc::spec::options_from_args(&args)
}

/// True if a bare `--flag` is present.
pub fn flag_present(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(2.34)), "2.3s");
        assert_eq!(fmt_duration(Duration::from_secs(120)), "120s");
    }

    #[test]
    fn host_provenance_shape() {
        let json = host_provenance_json(1, 4, 3);
        for field in [
            "\"available_parallelism\": 1",
            "\"git_rev\": \"",
            "\"jobs\": 4",
            "\"reps\": 3",
            "\"degraded_host\": true",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!(host_provenance_json(8, 4, 1).contains("\"degraded_host\": false"));
        // The revision is either a real short hash or the documented
        // fallback — never an empty string.
        let rev = git_rev();
        assert!(!rev.is_empty());
        assert!(rev == "unknown" || rev.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn timed_returns_result() {
        let (x, d) = timed(|| 41 + 1);
        assert_eq!(x, 42);
        assert!(d.as_secs() < 5);
    }
}
