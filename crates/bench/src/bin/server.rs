//! Measures the verdict-serving daemon and writes `BENCH_server.json`
//! to the repo root.
//!
//! ```text
//! cargo run -p verdict-bench --release --bin server -- \
//!     [--jobs N] [--submitters N] [--per-submitter N] [--out PATH]
//! ```
//!
//! One in-process daemon per scenario (real Unix socket, real WAL on
//! disk), loaded by 1 vs. N concurrent submitter threads, each blocking
//! on the durable acknowledgement of every submit. Reported per
//! scenario:
//!
//! * **jobs/sec** — submit-to-all-done throughput,
//! * **ack p50/p99** — the client-visible latency of a durable submit
//!   (one group-commit fsync away, never more),
//! * **WAL counters** — appends vs. group commits vs. fsyncs.
//!
//! The group-commit claim is asserted, not just printed: with ≥ 4
//! concurrent submitters the WAL must fsync measurably fewer times than
//! it appends (admission + completion records batch while the previous
//! fsync is in flight). A regression that serializes fsyncs again fails
//! the run.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use verdict_bench::{flag_value, host_provenance_json, sample_cores};
use verdict_server::{Client, JobSpec, Server, ServerConfig};

/// Decided instantly by every engine, so the bench measures the daemon
/// and its WAL rather than solver time.
const TINY: &str = "\
system tiny {
    var n : 0..7;
    init n = 0;
    trans next(n) = if n < 7 then n + 1 else n;
    invariant in_range: n <= 7;
}
";

struct Scenario {
    submitters: usize,
    jobs: usize,
    wall: Duration,
    ack_p50: Duration,
    ack_p99: Duration,
    appends: u64,
    group_commits: u64,
    fsyncs: u64,
}

impl Scenario {
    fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_scenario(
    dir: &PathBuf,
    submitters: usize,
    per_submitter: usize,
    workers: usize,
) -> Scenario {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("scenario dir");
    let socket = dir.join("verdict.sock");
    let mut cfg = ServerConfig::new(&socket, dir.join("wal"));
    cfg.workers = workers;
    cfg.queue_capacity = submitters * per_submitter + 1;
    let (server, _recovery) = Server::open(cfg).expect("server opens");
    let stop = server.stop_flag();
    let runner = std::thread::spawn(move || server.run().expect("server runs"));

    let started = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..submitters {
        let socket = socket.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect_with_retry(&socket, Duration::from_secs(10))
                .expect("submitter connects");
            let spec = JobSpec::check(TINY);
            let mut acks = Vec::with_capacity(per_submitter);
            let mut jobs = Vec::with_capacity(per_submitter);
            for _ in 0..per_submitter {
                let t0 = Instant::now();
                jobs.push(client.submit(&spec).expect("submit admitted"));
                acks.push(t0.elapsed());
            }
            for job in jobs {
                let out = client.wait(job, |_| {}).expect("job completes");
                assert_eq!(out.state, "done");
            }
            acks
        }));
    }
    let mut acks: Vec<Duration> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("submitter thread"))
        .collect();
    let wall = started.elapsed();
    acks.sort_unstable();

    stop.store(true, Ordering::Release);
    let report = runner.join().expect("runner joins");
    let _ = std::fs::remove_dir_all(dir);
    Scenario {
        submitters,
        jobs: submitters * per_submitter,
        wall,
        ack_p50: percentile(&acks, 0.50),
        ack_p99: percentile(&acks, 0.99),
        appends: report.wal.appends,
        group_commits: report.wal.group_commits,
        fsyncs: report.wal.fsyncs,
    }
}

fn scenario_json(s: &Scenario) -> String {
    format!(
        "{{\"submitters\": {}, \"jobs\": {}, \"wall_secs\": {:.6}, \
         \"jobs_per_sec\": {:.1}, \"ack_p50_us\": {:.1}, \"ack_p99_us\": {:.1}, \
         \"wal_appends\": {}, \"wal_group_commits\": {}, \"wal_fsyncs\": {}}}",
        s.submitters,
        s.jobs,
        s.wall.as_secs_f64(),
        s.jobs_per_sec(),
        s.ack_p50.as_secs_f64() * 1e6,
        s.ack_p99.as_secs_f64() * 1e6,
        s.appends,
        s.group_commits,
        s.fsyncs,
    )
}

fn main() {
    let workers: usize = flag_value("--jobs")
        .and_then(|j| j.parse().ok())
        .unwrap_or(4);
    let submitters: usize = flag_value("--submitters")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
        .max(4); // the acceptance claim is about ≥ 4 concurrent submitters
    let per_submitter: usize = flag_value("--per-submitter")
        .and_then(|n| n.parse().ok())
        .unwrap_or(100);
    let out: PathBuf = flag_value("--out").map_or_else(
        || {
            PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_server.json"
            ))
        },
        PathBuf::from,
    );
    let cores = sample_cores();
    let dir = std::env::temp_dir().join(format!("verdict-bench-server-{}", std::process::id()));

    println!(
        "verdict-server benchmark ({workers} worker(s), 1 vs {submitters} submitter(s), \
         {per_submitter} jobs each, {cores} core(s))\n"
    );

    let solo = run_scenario(&dir, 1, per_submitter, workers);
    let fleet = run_scenario(&dir, submitters, per_submitter, workers);
    for s in [&solo, &fleet] {
        println!(
            "  {} submitter(s): {:>7.1} jobs/sec, ack p50 {:.0}µs p99 {:.0}µs, \
             {} appends in {} group commits ({} fsyncs)",
            s.submitters,
            s.jobs_per_sec(),
            s.ack_p50.as_secs_f64() * 1e6,
            s.ack_p99.as_secs_f64() * 1e6,
            s.appends,
            s.group_commits,
            s.fsyncs,
        );
    }

    // The acceptance claim: concurrent submitters share fsyncs.
    assert!(
        fleet.fsyncs < fleet.appends,
        "group commit must amortize fsyncs under {} submitters: {} fsyncs for {} appends",
        fleet.submitters,
        fleet.fsyncs,
        fleet.appends
    );
    let amortization = fleet.appends as f64 / fleet.fsyncs.max(1) as f64;
    println!(
        "\ngroup-commit amortization at {} submitters: {amortization:.2} appends/fsync",
        fleet.submitters
    );

    // Re-sample after the measured runs: if the host lost cores mid-run
    // the degraded flag must reflect the worst budget observed.
    let host = host_provenance_json(cores.min(sample_cores()), workers.max(submitters), 1);
    let json = format!(
        "{{\n  \"host\": {host},\n  \"workers\": {workers},\n  \
         \"solo\": {},\n  \"fleet\": {},\n  \
         \"fleet_appends_per_fsync\": {amortization:.3}\n}}\n",
        scenario_json(&solo),
        scenario_json(&fleet),
    );
    std::fs::write(&out, json).expect("write BENCH_server.json");
    println!("wrote {}", out.display());
}
