//! Regenerates **Table 1**: "System features involved in cloud incidents".
//!
//! ```text
//! cargo run -p verdict-bench --release --bin table1
//! ```
//!
//! Paper reference values: Dynamic control 30/8/38 (71/73/72%),
//! Nontrivial interactions 12/7/19 (29/64/36%), Quantitative metrics
//! 20/7/27 (48/64/51%), Cross-layer 21/9/30 (50/82/56%).

fn main() {
    let table = verdict_incidents::table1();
    println!("Table 1: System features involved in cloud incidents\n");
    print!("{table}");
    println!();
    let real = verdict_incidents::INCIDENTS
        .iter()
        .filter(|i| !i.reconstructed)
        .count();
    let total = verdict_incidents::INCIDENTS.len();
    println!(
        "dataset: {total} incidents ({real} documented in the paper verbatim, \
         {} reconstructed to match the published aggregates — see EXPERIMENTS.md)",
        total - real
    );
}
