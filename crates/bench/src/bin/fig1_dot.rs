//! Renders **Figure 1** — the controller/metric interaction graph — as
//! graphviz DOT (pipe through `dot -Tpng` to draw it).
//!
//! ```text
//! cargo run -p verdict-bench --bin fig1_dot
//! ```

fn main() {
    let g = verdict_models::interaction::InteractionGraph::figure1();
    print!("{}", g.to_dot());
    eprintln!(
        "// {} nodes, {} edges; multi-controller feedback cycle present: {}",
        g.nodes.len(),
        g.edges.len(),
        g.has_multi_controller_cycle()
    );
}
