//! Measures the parallel verification layer and writes
//! `BENCH_parallel.json` to the repo root.
//!
//! ```text
//! cargo run -p verdict-bench --release --bin parallel -- \
//!     [--jobs N] [--depth D] [--out PATH]
//! ```
//!
//! Two experiments on case study 1 (rollout + partition, test topology):
//!
//! 1. **Synthesis sweep** — the 16-assignment `(p, k, m)` cross product
//!    (`p ∈ 0..=3`, `k ∈ 0..=1`, `m ∈ 0..=1`), verified by k-induction,
//!    sequentially (`jobs = 1`) vs. sharded over a worker pool
//!    (`jobs = N`), plus the first-safe early-exit mode. Assignments are
//!    independent, so the sharded sweep scales with physical cores; the
//!    early-exit speedup is algorithmic and shows up even on one core.
//! 2. **Portfolio racing** — Fig. 5/6-style configurations checked by the
//!    portfolio engine (BMC vs. k-induction vs. BDD, first definitive
//!    verdict wins), against each engine run alone, with a histogram of
//!    which engine won.
//!
//! The JSON records `available_parallelism` so a reader can tell whether
//! a sweep speedup was even attainable on the measuring host.

use std::fmt::Write as _;
use std::path::PathBuf;

use verdict_bench::{flag_value, fmt_duration, host_provenance_json, sample_cores, timed};
use verdict_mc::params::{synthesize, synthesize_first_safe, Property, SynthesisEngine};
use verdict_mc::prelude::*;
use verdict_mc::Stats;
use verdict_models::{RolloutModel, RolloutSpec, Topology};

fn verdict_str(r: &CheckResult) -> &'static str {
    match r {
        CheckResult::Holds => "holds",
        CheckResult::Violated(_) => "violated",
        CheckResult::Unknown(_) => "unknown",
    }
}

fn main() {
    let jobs: usize = flag_value("--jobs")
        .and_then(|j| j.parse().ok())
        .unwrap_or(4);
    let depth: usize = flag_value("--depth")
        .and_then(|d| d.parse().ok())
        .unwrap_or(10);
    let out: PathBuf = flag_value("--out").map_or_else(
        || {
            PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_parallel.json"
            ))
        },
        PathBuf::from,
    );
    let cores = sample_cores();

    println!("parallel verification benchmark (jobs {jobs}, depth {depth}, {cores} core(s))\n");

    // ---- Experiment 1: the 16-assignment synthesis sweep. -------------
    // fattree4 (Fig. 6's second data point) makes each k-induction run
    // substantial, so pool overhead is negligible next to the work being
    // sharded; pass --topology test for a quick smoke run.
    let topo = match flag_value("--topology").as_deref() {
        Some("test") => Topology::test_topology(),
        _ => Topology::fat_tree(4),
    };
    let spec = RolloutSpec {
        k_max: 1,
        m_max: 1,
        ..RolloutSpec::paper(topo)
    };
    let model = RolloutModel::build(&spec).expect("valid topology");
    let prop = Property::Invariant(model.property.clone());
    let params = [model.p, model.k, model.m];
    let engine = SynthesisEngine::KInduction;

    let seq_opts = CheckOptions::with_depth(depth).with_jobs(1);
    let (seq, seq_wall) =
        timed(|| synthesize(&model.system, &params, &prop, engine, &seq_opts).unwrap());
    let par_opts = CheckOptions::with_depth(depth).with_jobs(jobs);
    let (par, par_wall) =
        timed(|| synthesize(&model.system, &params, &prop, engine, &par_opts).unwrap());
    let (first_safe, fs_wall) =
        timed(|| synthesize_first_safe(&model.system, &params, &prop, engine, &par_opts).unwrap());
    assert_eq!(seq.verdicts.len(), par.verdicts.len());
    for (a, b) in seq.verdicts.iter().zip(&par.verdicts) {
        assert_eq!(a.values, b.values, "sharding must not reorder verdicts");
        assert_eq!(a.result.holds(), b.result.holds());
        assert_eq!(a.result.violated(), b.result.violated());
    }
    let speedup = seq_wall.as_secs_f64() / par_wall.as_secs_f64().max(1e-9);
    let fs_speedup = seq_wall.as_secs_f64() / fs_wall.as_secs_f64().max(1e-9);
    let checked_in_first_safe = first_safe
        .verdicts
        .iter()
        .filter(|v| !matches!(v.result, CheckResult::Unknown(_)))
        .count();

    println!(
        "synthesis sweep ({} assignments, kind, depth {depth}):",
        seq.verdicts.len()
    );
    println!("  jobs 1      {}", fmt_duration(seq_wall));
    println!(
        "  jobs {jobs}      {}   ({speedup:.2}x)",
        fmt_duration(par_wall)
    );
    println!(
        "  first-safe  {}   ({fs_speedup:.2}x, {checked_in_first_safe}/{} assignments checked)\n",
        fmt_duration(fs_wall),
        first_safe.verdicts.len()
    );

    // ---- Experiment 2: portfolio racing on Fig. 5/6 configurations. ---
    let paper_model = RolloutModel::build(&RolloutSpec::paper(Topology::test_topology()))
        .expect("valid topology");
    let configs: [(i64, i64, i64); 6] = [
        (1, 2, 1),
        (0, 0, 1),
        (1, 0, 1),
        (1, 1, 1),
        (2, 0, 3),
        (2, 1, 1),
    ];
    let mut histogram: Vec<(EngineKind, usize)> = Vec::new();
    let mut config_rows = String::new();
    println!("portfolio racing (bmc vs kind vs bdd), per configuration:");
    for (i, &(p, k, m)) in configs.iter().enumerate() {
        let sys = paper_model.pinned(p, k, m);
        let opts = CheckOptions::with_depth(12);
        let report = Verifier::new(&sys)
            .engine(EngineKind::Portfolio)
            .options(opts.clone())
            .check_invariant_report(&paper_model.property)
            .unwrap();
        let (b, b_wall) = timed(|| {
            verdict_mc::engine(EngineKind::Bmc)
                .check_invariant(&sys, &paper_model.property, &opts, &mut Stats::default())
                .unwrap()
        });
        let (ki, k_wall) = timed(|| {
            verdict_mc::engine(EngineKind::KInduction)
                .check_invariant(&sys, &paper_model.property, &opts, &mut Stats::default())
                .unwrap()
        });
        let (bd, d_wall) = timed(|| {
            verdict_mc::engine(EngineKind::Bdd)
                .check_invariant(&sys, &paper_model.property, &opts, &mut Stats::default())
                .unwrap()
        });
        // The portfolio verdict must agree with every definitive
        // sequential verdict.
        for (name, r) in [("bmc", &b), ("kind", &ki), ("bdd", &bd)] {
            if r.holds() || r.violated() {
                assert_eq!(
                    report.result.violated(),
                    r.violated(),
                    "portfolio disagrees with {name} on (p={p},k={k},m={m})"
                );
            }
        }
        match histogram.iter_mut().find(|(e, _)| *e == report.winner) {
            Some((_, n)) => *n += 1,
            None => histogram.push((report.winner, 1)),
        }
        println!(
            "  (p={p},k={k},m={m})  {:<9} won by {:<10?} {:>8}  (solo: bmc {}, kind {}, bdd {})",
            verdict_str(&report.result),
            report.winner,
            fmt_duration(report.wall),
            fmt_duration(b_wall),
            fmt_duration(k_wall),
            fmt_duration(d_wall),
        );
        let _ = write!(
            config_rows,
            "{}    {{\"p\": {p}, \"k\": {k}, \"m\": {m}, \"verdict\": \"{}\", \
             \"winner\": \"{:?}\", \"wall_secs\": {:.6}, \"solo_secs\": \
             {{\"bmc\": {:.6}, \"kind\": {:.6}, \"bdd\": {:.6}}}}}",
            if i == 0 { "" } else { ",\n" },
            verdict_str(&report.result),
            report.winner,
            report.wall.as_secs_f64(),
            b_wall.as_secs_f64(),
            k_wall.as_secs_f64(),
            d_wall.as_secs_f64(),
        );
    }
    let mut hist_json = String::new();
    for (i, (e, n)) in histogram.iter().enumerate() {
        let _ = write!(
            hist_json,
            "{}\"{e:?}\": {n}",
            if i == 0 { "" } else { ", " }
        );
    }
    println!("\nwinner histogram: {hist_json}");

    // Re-sample after the measured runs: if the host lost cores mid-run
    // the degraded flag must reflect the worst budget observed.
    let host = host_provenance_json(cores.min(sample_cores()), jobs, 1);
    let json = format!(
        "{{\n  \"host\": {host},\n  \"sweep\": {{\n    \
         \"model\": \"{}\",\n    \"engine\": \"kind\",\n    \"depth\": {depth},\n    \
         \"assignments\": {},\n    \"wall_secs_jobs1\": {:.6},\n    \
         \"wall_secs_jobs{jobs}\": {:.6},\n    \"speedup_jobs{jobs}\": {speedup:.3},\n    \
         \"first_safe_wall_secs\": {:.6},\n    \"first_safe_speedup\": {fs_speedup:.3},\n    \
         \"first_safe_assignments_checked\": {checked_in_first_safe}\n  }},\n  \
         \"portfolio\": {{\n    \"configs\": [\n{config_rows}\n    ],\n    \
         \"winner_histogram\": {{{hist_json}}}\n  }}\n}}\n",
        model.system.name(),
        seq.verdicts.len(),
        seq_wall.as_secs_f64(),
        par_wall.as_secs_f64(),
        fs_wall.as_secs_f64(),
    );
    std::fs::write(&out, json).expect("write BENCH_parallel.json");
    println!("wrote {}", out.display());
}
