//! Regenerates **Figure 5** and the case-study-1 results (§4.2).
//!
//! ```text
//! cargo run -p verdict-bench --release --bin fig5
//! ```
//!
//! 1. The counterexample for `p = m = 1, k = 2` on the "test" topology,
//!    printed as the paper's `available` progression.
//! 2. Verification of safe configurations.
//! 3. Parameter synthesis: for `k = 1, m = 1`, safe non-zero `p ∈ {1, 2}`.

use verdict_bench::{fmt_duration, timed};
use verdict_mc::params::Property;
use verdict_mc::prelude::*;
use verdict_mc::Stats;
use verdict_models::{RolloutModel, RolloutSpec, Topology};
use verdict_ts::explicit::eval_state;
use verdict_ts::Expr;

fn main() {
    let model = RolloutModel::build(&RolloutSpec::paper(Topology::test_topology()))
        .expect("valid topology");
    println!(
        "Case study 1: update rollout + network partition (test topology: \
         5 nodes, 5 links, 4 service nodes)\n"
    );

    // ---- Fig. 5 counterexample -----------------------------------------
    let sys = model.pinned(1, 2, 1);
    let (result, took) = timed(|| {
        engine(EngineKind::Bmc)
            .check_invariant(
                &sys,
                &model.property,
                &CheckOptions::with_depth(10),
                &mut Stats::default(),
            )
            .unwrap()
    });
    println!("p = 1, k = 2, m = 1  ({}):", fmt_duration(took));
    let trace = result.trace().expect("the paper's Fig. 5 violation");
    // The paper annotates each state with `available`.
    print!("  available:");
    for state in &trace.states {
        let avail = eval_state(&model.available, state);
        print!(" {avail}");
    }
    println!("   (property: converged -> available >= 1)");
    println!("  final state:");
    for &row in &trace.changing_vars() {
        let name = &trace.var_names[row];
        let vals: Vec<String> = trace.states.iter().map(|s| s[row].to_string()).collect();
        println!("    {name:<14} {}", vals.join(" -> "));
    }

    // ---- Fig. 5 storyboard (gradual failures) ----------------------------
    // The paper's figure shows the failure unfolding step by step; with at
    // most one new link failure per transition the counterexample matches
    // that storyboard.
    let gradual = RolloutModel::build(&RolloutSpec::paper_gradual(Topology::test_topology()))
        .expect("valid topology");
    let sys = gradual.pinned(1, 2, 1);
    let (result, took) = timed(|| {
        engine(EngineKind::Bmc)
            .check_invariant(
                &sys,
                &gradual.property,
                &CheckOptions::with_depth(10),
                &mut Stats::default(),
            )
            .unwrap()
    });
    if let Some(trace) = result.trace() {
        print!(
            "\ngradual variant (≤ 1 new failure/step, {}): true availability",
            fmt_duration(took)
        );
        for state in &trace.states {
            print!(" -> {}", eval_state(&gradual.true_available, state));
        }
        println!("   (the paper's 4 … 1 -> 0 storyboard)");
    }

    // ---- verification ----------------------------------------------------
    for (p, k, m) in [(1i64, 0i64, 1i64), (1, 1, 1), (2, 1, 1)] {
        let sys = model.pinned(p, k, m);
        let (result, took) = timed(|| {
            engine(EngineKind::KInduction)
                .check_invariant(
                    &sys,
                    &model.property,
                    &CheckOptions::with_depth(24),
                    &mut Stats::default(),
                )
                .unwrap()
        });
        println!(
            "\np = {p}, k = {k}, m = {m}  ({}): {}",
            fmt_duration(took),
            if result.holds() {
                "HOLDS"
            } else {
                "violated/unknown"
            }
        );
    }

    // ---- parameter synthesis ---------------------------------------------
    let mut pinned = model.system.clone();
    pinned.add_invar(Expr::var(model.k).eq(Expr::int(1)));
    pinned.add_invar(Expr::var(model.m).eq(Expr::int(1)));
    let verifier = Verifier::new(&pinned).options(CheckOptions::with_depth(16));
    let (synth, took) = timed(|| {
        verifier
            .synthesize_params(&[model.p], &Property::Invariant(model.property.clone()))
            .unwrap()
    });
    println!(
        "\nparameter synthesis for k = 1, m = 1 ({}) — paper suggests p ∈ {{1, 2}}:",
        fmt_duration(took)
    );
    print!("{synth}");
}
