//! Regenerates the **case study 2** results (§4.2): load balancer + ECMP
//! liveness over real-valued parameters.
//!
//! ```text
//! cargo run -p verdict-bench --release --bin case2 [-- --depth N]
//! ```
//!
//! Checks `F G stable` (fails even without the external event) and
//! `equilibrium → F G stable` (fails with a lasso that starts oscillating
//! after the one-time external traffic on R1–R4), printing the
//! synthesized latency parameters and the weight-flapping loop.

use verdict_bench::{flag_value, fmt_duration, timed};
use verdict_mc::prelude::*;
use verdict_mc::Stats;
use verdict_models::lb_ecmp::{LbModel, LbSpec};

fn main() {
    let depth: usize = flag_value("--depth")
        .and_then(|d| d.parse().ok())
        .unwrap_or(12);
    let model = LbModel::build(&LbSpec::default());
    println!(
        "Case study 2: LB + ECMP (Fig. 3 topology; traffic t_a = t_b = 1, \
         external e = 2; latency coefficients symbolic)\n"
    );

    for (name, phi) in [
        ("F G stable", &model.liveness),
        ("equilibrium -> F G stable", &model.conditional_liveness),
    ] {
        let (result, took) = timed(|| {
            engine(EngineKind::SmtBmc)
                .check_ltl(
                    &model.system,
                    phi,
                    &CheckOptions::with_depth(depth),
                    &mut Stats::default(),
                )
                .unwrap()
        });
        println!("{name}  ({}):", fmt_duration(took));
        let Some(trace) = result.trace() else {
            println!("  {result}\n");
            continue;
        };
        let l = trace.loop_back.expect("lasso");
        println!("  VIOLATED — lasso of {} states, loop at {l}", trace.len());
        println!("  synthesized parameters:");
        for p in ["m_a", "m_b", "m_link", "l_a", "l_b", "l_link"] {
            println!("    {p:<7} = {}", trace.value(0, p).unwrap());
        }
        println!("  oscillation (wa = app a on p1, wb = app b on p3):");
        for step in 0..trace.len() {
            println!(
                "   {} step {step}: wa={:<5} wb={:<5} ext={}",
                if step == l { "↺" } else { " " },
                trace.value(step, "wa_p1").unwrap().to_string(),
                trace.value(step, "wb_p3").unwrap().to_string(),
                trace.value(step, "external_traffic").unwrap(),
            );
        }
        println!();
    }
}
