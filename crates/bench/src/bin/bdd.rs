//! Measures the partitioned symbolic engine against the monolithic
//! baseline on the fat-tree sweep and writes `BENCH_bdd.json`.
//!
//! ```text
//! cargo run -p verdict-bench --release --bin bdd -- \
//!     [--max-arity K] [--timeout-secs N] [--out PATH]
//! ```
//!
//! For each topology (test, fattree4 … fattree`--max-arity`) the
//! availability invariant is verified at `p = 1, k = 1, m = 1` by the
//! BDD engine twice — once with the monolithic conjoined transition
//! relation, once partitioned with early quantification and sifting —
//! and the JSON records wall-clock, peak live nodes, partition count,
//! and sift activity for both modes. The headline claims the sweep
//! backs: the partitioned image keeps peak live nodes several times
//! below the monolithic run at arity 4, and arities the monolithic
//! relation cannot finish within the timeout verify partitioned.
//!
//! Both modes must agree on every verdict that is not a timeout; the
//! binary asserts this before writing the file.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use verdict_bench::{flag_value, fmt_duration, host_provenance_json, sample_cores, timed};
use verdict_mc::prelude::*;
use verdict_mc::Stats;
use verdict_models::{RolloutModel, RolloutSpec, Topology};

struct Run {
    verdict: &'static str,
    wall: Duration,
    peak_live: u64,
    nodes_allocated: u64,
    partitions: u64,
    sifts: u64,
}

fn verdict_str(r: &CheckResult) -> &'static str {
    match r {
        CheckResult::Holds => "holds",
        CheckResult::Violated(_) => "violated",
        CheckResult::Unknown(_) => "unknown",
    }
}

fn check(model: &RolloutModel, pins: (i64, i64, i64), partitioned: bool, timeout: Duration) -> Run {
    let sys = model.pinned(pins.0, pins.1, pins.2);
    let mut stats = Stats::default();
    let opts = CheckOptions::with_depth(64)
        .with_timeout(timeout)
        .with_bdd_partitioned(partitioned);
    let (res, wall) = timed(|| {
        engine(EngineKind::Bdd)
            .check_invariant(&sys, &model.property, &opts, &mut stats)
            .unwrap()
    });
    Run {
        verdict: verdict_str(&res),
        wall,
        peak_live: stats.bdd.peak_live_nodes,
        nodes_allocated: stats.bdd.nodes_allocated,
        partitions: stats.bdd.partitions,
        sifts: stats.bdd.sifts,
    }
}

fn run_json(r: &Run) -> String {
    format!(
        "{{\"verdict\": \"{}\", \"wall_secs\": {:.6}, \"peak_live_nodes\": {}, \
         \"nodes_allocated\": {}, \"partitions\": {}, \"sifts\": {}}}",
        r.verdict,
        r.wall.as_secs_f64(),
        r.peak_live,
        r.nodes_allocated,
        r.partitions,
        r.sifts,
    )
}

fn main() {
    let max_arity: usize = flag_value("--max-arity")
        .and_then(|k| k.parse().ok())
        .unwrap_or(6);
    let timeout = Duration::from_secs(
        flag_value("--timeout-secs")
            .and_then(|t| t.parse().ok())
            .unwrap_or(120),
    );
    let out: PathBuf = flag_value("--out").map_or_else(
        || PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_bdd.json")),
        PathBuf::from,
    );
    let pins = (
        flag_value("--p").and_then(|v| v.parse().ok()).unwrap_or(1),
        flag_value("--k").and_then(|v| v.parse().ok()).unwrap_or(1),
        flag_value("--m").and_then(|v| v.parse().ok()).unwrap_or(1),
    );
    let cores = sample_cores();

    println!(
        "partitioned vs monolithic symbolic engine (p = {}, k = {}, m = {}, timeout {}s, \
         {cores} core(s))\n",
        pins.0,
        pins.1,
        pins.2,
        timeout.as_secs()
    );
    println!(
        "{:<10} {:>6} | {:>10} {:>12} | {:>10} {:>12} {:>6} {:>6} | {:>10}",
        "topology",
        "nodes",
        "mono wall",
        "mono peak",
        "part wall",
        "part peak",
        "parts",
        "sifts",
        "reduction"
    );

    let topos: Vec<Topology> = std::iter::once(Topology::test_topology())
        .chain((2..=max_arity / 2).map(|h| Topology::fat_tree(2 * h)))
        .collect();

    let mut rows = String::new();
    for (i, topo) in topos.into_iter().enumerate() {
        let name = topo.name.clone();
        let nodes = topo.num_nodes();
        let model = RolloutModel::build(&RolloutSpec::paper(topo)).expect("valid topology");

        let mono = check(&model, pins, false, timeout);
        let part = check(&model, pins, true, timeout);
        if mono.verdict != "unknown" && part.verdict != "unknown" {
            assert_eq!(
                mono.verdict, part.verdict,
                "monolithic and partitioned disagree on {name}"
            );
        }
        let reduction = mono.peak_live as f64 / part.peak_live.max(1) as f64;
        println!(
            "{name:<10} {nodes:>6} | {:>10} {:>12} | {:>10} {:>12} {:>6} {:>6} | {reduction:>9.1}x",
            format!("{} {}", mono.verdict, fmt_duration(mono.wall)),
            mono.peak_live,
            format!("{} {}", part.verdict, fmt_duration(part.wall)),
            part.peak_live,
            part.partitions,
            part.sifts,
        );
        let _ = write!(
            rows,
            "{}    {{\"topology\": \"{name}\", \"nodes\": {nodes}, \
             \"monolithic\": {}, \"partitioned\": {}, \
             \"peak_live_reduction\": {reduction:.3}}}",
            if i == 0 { "" } else { ",\n" },
            run_json(&mono),
            run_json(&part),
        );
    }

    println!(
        "\nshape to compare with the paper: the partitioned image holds peak live \
         nodes several times below the monolithic conjunction, and keeps verifying \
         at arities where the monolithic relation exhausts the timeout."
    );

    // Re-sample after the measured runs: if the host lost cores mid-run
    // the degraded flag must reflect the worst budget observed.
    let host = host_provenance_json(cores.min(sample_cores()), 1, 1);
    let json = format!(
        "{{\n  \"host\": {host},\n  \"config\": {{\"p\": {}, \"k\": {}, \"m\": {}, \
         \"depth\": 64, \"timeout_secs\": {}}},\n  \"cases\": [\n{rows}\n  ]\n}}\n",
        pins.0,
        pins.1,
        pins.2,
        timeout.as_secs()
    );
    std::fs::write(&out, json).expect("write BENCH_bdd.json");
    println!("wrote {}", out.display());
}
