//! Regenerates **Figure 2**: "Oscillation in Kubernetes experiment".
//!
//! ```text
//! cargo run -p verdict-bench --release --bin fig2 [-- --minutes N]
//! ```
//!
//! Runs the simulated 6-VM cluster (2 masters + 3 workers) with the
//! paper's configuration — one pod requesting 50% CPU, descheduler
//! cronjob every 2 minutes with a 45% `LowNodeUtilization` eviction
//! threshold — and plots the pod's worker index over time, the series
//! Fig. 2 shows oscillating between workers 2 and 3.

use verdict_bench::flag_value;
use verdict_ksim::ClusterSpec;

fn main() {
    let minutes: u64 = flag_value("--minutes")
        .and_then(|m| m.parse().ok())
        .unwrap_or(30);
    let metrics = ClusterSpec::figure2().run(minutes * 60);

    println!("Figure 2: pod placement over {minutes} minutes");
    println!("(request 50% CPU, evict above 45%, descheduler every 2 min)\n");

    // The same series the paper plots: worker index vs time.
    println!("{:>8}  {:<8}  plot", "time", "node");
    let mut series = Vec::new();
    for (t, node) in metrics.placement_changes("app-") {
        let idx = match node.as_str() {
            "worker1" => 1,
            "worker2" => 2,
            "worker3" => 3,
            _ => 0,
        };
        series.push((t, idx));
        println!(
            "{:>6} s  {:<8}  {}*",
            t,
            node,
            "      ".repeat(idx as usize)
        );
    }

    let flips = series.windows(2).filter(|w| w[0].1 != w[1].1).count();
    println!(
        "\n{} placements, {flips} worker switches in {minutes} min \
         (paper: sustained w2 <-> w3 oscillation)",
        series.len()
    );
}
