//! Ablation: the cost of modeling the reachability-recomputation loop.
//!
//! ```text
//! cargo run -p verdict-bench --release --bin ablation
//! ```
//!
//! DESIGN.md calls out one deliberate modeling choice in case study 1:
//! the paper models an *asynchronous recomputation loop* (free-running
//! `reach` view + a derived `converged` flag), which multiplies the state
//! space by 2^|service| compared with a "direct" model where the view is
//! definitional. This binary measures what that fidelity costs each
//! engine, and confirms both variants agree on every verdict.

use std::time::Duration;

use verdict_bench::{fmt_duration, timed};
use verdict_mc::prelude::*;
use verdict_mc::Stats;
use verdict_models::{RolloutModel, RolloutSpec, Topology};

fn main() {
    println!("Ablation: recomputation-loop model vs direct model (p=1, m=1)\n");
    println!(
        "{:<10} {:>4} | {:>22} | {:>22}",
        "topology", "k", "with loop (falsify/verify)", "direct (falsify/verify)"
    );
    let timeout = Duration::from_secs(30);
    for (topo, k_fail) in [
        (Topology::test_topology(), 2i64),
        (Topology::fat_tree(4), 2),
        (Topology::fat_tree(6), 3),
    ] {
        let name = topo.name.clone();
        let mut results = Vec::new();
        let mut verdicts = Vec::new();
        for with_loop in [true, false] {
            let mut spec = RolloutSpec::paper(topo.clone());
            spec.recompute_loop = with_loop;
            let model = RolloutModel::build(&spec).expect("valid topology");

            let sys = model.pinned(1, k_fail, 1);
            let opts = CheckOptions::with_depth(8).with_timeout(timeout);
            let (fres, ftime) = timed(|| {
                engine(EngineKind::Bmc)
                    .check_invariant(&sys, &model.property, &opts, &mut Stats::default())
                    .unwrap()
            });

            let sys = model.pinned(1, 0, 1);
            let opts = CheckOptions::with_depth(32).with_timeout(timeout);
            let (vres, vtime) = timed(|| {
                engine(EngineKind::KInduction)
                    .check_invariant(&sys, &model.property, &opts, &mut Stats::default())
                    .unwrap()
            });
            results.push(format!("{} / {}", fmt_duration(ftime), fmt_duration(vtime)));
            verdicts.push((fres.violated(), vres.holds()));
        }
        assert_eq!(
            verdicts[0], verdicts[1],
            "{name}: variants must agree on verdicts"
        );
        println!(
            "{name:<10} {k_fail:>4} | {:>22} | {:>22}",
            results[0], results[1]
        );
    }
    println!(
        "\nboth variants agree on all verdicts; the loop variant pays for the\n\
         extra 2^|service| view states the paper's model carries."
    );
}
