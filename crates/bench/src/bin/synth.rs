//! Clone-per-assignment vs incremental (assumption-pinned) parameter
//! synthesis, writing `BENCH_synth.json` to the repo root.
//!
//! ```text
//! cargo run -p verdict-bench --release --bin synth -- \
//!     [--jobs N] [--depth D] [--reps R] [--topology test] [--out PATH]
//! ```
//!
//! Both case studies run the same sweep twice — once with the original
//! clone path (`CheckOptions::with_incremental(false)`: re-encode the
//! pinned system and build fresh solvers per assignment) and once with
//! the incremental path (assumption literals over one shared unrolling,
//! one solver pair per worker, unsat-core pruning) — at `jobs = 1` and
//! `jobs = N`, asserting the verdict vectors are identical before
//! reporting the speedup:
//!
//! 1. **Rollout synthesis** (case study 1): the 16-assignment `(p, k, m)`
//!    cross product on `fat_tree(4)` (pass `--topology test` for a smoke
//!    run), verified by k-induction.
//! 2. **`step_counter.vd`** (the README's `verdict synth` example): the
//!    3-assignment `step` sweep, parsed through the DSL front end.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use verdict_bench::{flag_value, fmt_duration, host_provenance_json, sample_cores, timed};
use verdict_dsl::{parse, CompiledProperty};
use verdict_mc::params::{synthesize, Property, SynthesisEngine, SynthesisResult};
use verdict_mc::CheckOptions;
use verdict_models::{RolloutModel, RolloutSpec, Topology};
use verdict_ts::{System, VarId};

/// Runs `f` `reps` times and keeps the fastest wall clock (the result is
/// deterministic, so any repetition's output will do).
fn best_of(reps: usize, mut f: impl FnMut() -> SynthesisResult) -> (SynthesisResult, Duration) {
    let (mut out, mut best) = timed(&mut f);
    for _ in 1..reps {
        let (r, wall) = timed(&mut f);
        if wall < best {
            best = wall;
            out = r;
        }
    }
    (out, best)
}

fn assert_same_verdicts(a: &SynthesisResult, b: &SynthesisResult, what: &str) {
    assert_eq!(a.verdicts.len(), b.verdicts.len(), "{what}");
    for (x, y) in a.verdicts.iter().zip(&b.verdicts) {
        assert_eq!(x.values, y.values, "{what}: sweep order changed");
        assert_eq!(
            x.result.holds(),
            y.result.holds(),
            "{what}: verdict mismatch at {:?}",
            x.values
        );
        assert_eq!(
            x.result.violated(),
            y.result.violated(),
            "{what}: verdict mismatch at {:?}",
            x.values
        );
    }
}

struct CaseReport {
    name: String,
    assignments: usize,
    clone_seq: Duration,
    inc_seq: Duration,
    clone_par: Duration,
    inc_par: Duration,
}

#[allow(clippy::too_many_arguments)]
fn run_case(
    name: &str,
    sys: &System,
    params: &[VarId],
    prop: &Property,
    depth: usize,
    jobs: usize,
    reps: usize,
) -> CaseReport {
    let engine = SynthesisEngine::KInduction;
    let opts = |jobs: usize, incremental: bool| {
        CheckOptions::with_depth(depth)
            .with_jobs(jobs)
            .with_incremental(incremental)
    };
    let (clone_r, clone_seq) = best_of(reps, || {
        synthesize(sys, params, prop, engine, &opts(1, false)).unwrap()
    });
    let (inc_r, inc_seq) = best_of(reps, || {
        synthesize(sys, params, prop, engine, &opts(1, true)).unwrap()
    });
    assert_same_verdicts(&clone_r, &inc_r, name);
    let (clone_p, clone_par) = best_of(reps, || {
        synthesize(sys, params, prop, engine, &opts(jobs, false)).unwrap()
    });
    let (inc_p, inc_par) = best_of(reps, || {
        synthesize(sys, params, prop, engine, &opts(jobs, true)).unwrap()
    });
    assert_same_verdicts(&clone_r, &clone_p, name);
    assert_same_verdicts(&clone_r, &inc_p, name);

    let seq_speedup = clone_seq.as_secs_f64() / inc_seq.as_secs_f64().max(1e-9);
    let par_speedup = clone_par.as_secs_f64() / inc_par.as_secs_f64().max(1e-9);
    println!(
        "{name} ({} assignments, kind, depth {depth}):",
        clone_r.verdicts.len()
    );
    println!(
        "  jobs 1      clone {:>8}   incremental {:>8}   ({seq_speedup:.2}x)",
        fmt_duration(clone_seq),
        fmt_duration(inc_seq)
    );
    println!(
        "  jobs {jobs}      clone {:>8}   incremental {:>8}   ({par_speedup:.2}x)\n",
        fmt_duration(clone_par),
        fmt_duration(inc_par)
    );
    CaseReport {
        name: name.to_string(),
        assignments: clone_r.verdicts.len(),
        clone_seq,
        inc_seq,
        clone_par,
        inc_par,
    }
}

fn main() {
    let jobs: usize = flag_value("--jobs")
        .and_then(|j| j.parse().ok())
        .unwrap_or(4);
    let depth: usize = flag_value("--depth")
        .and_then(|d| d.parse().ok())
        .unwrap_or(10);
    let reps: usize = flag_value("--reps")
        .and_then(|r| r.parse().ok())
        .unwrap_or(3)
        .max(1);
    let out: PathBuf = flag_value("--out").map_or_else(
        || {
            PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_synth.json"
            ))
        },
        PathBuf::from,
    );
    let cores = sample_cores();

    println!(
        "incremental synthesis benchmark (jobs {jobs}, depth {depth}, best of {reps}, {cores} core(s))\n"
    );

    // ---- Case study 1: rollout (p, k, m) sweep. -----------------------
    let (topo_name, topo) = match flag_value("--topology").as_deref() {
        Some("test") => ("test", Topology::test_topology()),
        _ => ("fattree4", Topology::fat_tree(4)),
    };
    let spec = RolloutSpec {
        k_max: 1,
        m_max: 1,
        ..RolloutSpec::paper(topo)
    };
    let model = RolloutModel::build(&spec).expect("valid topology");
    let rollout_prop = Property::Invariant(model.property.clone());
    let rollout = run_case(
        &format!("rollout_{topo_name}"),
        &model.system,
        &[model.p, model.k, model.m],
        &rollout_prop,
        depth,
        jobs,
        reps,
    );

    // ---- Case study 2: the step_counter.vd DSL example. ---------------
    let source = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/models/step_counter.vd"
    ));
    let dsl = parse(source).expect("step_counter.vd parses");
    let step = dsl
        .system
        .var_by_name("step")
        .expect("step_counter.vd has a `step` param");
    let (_, CompiledProperty::Invariant(p)) = &dsl.properties[0] else {
        panic!("step_counter.vd's first property is an invariant");
    };
    let counter_prop = Property::Invariant(p.clone());
    let counter = run_case(
        "step_counter",
        &dsl.system,
        &[step],
        &counter_prop,
        depth,
        jobs,
        reps,
    );

    let mut cases = String::new();
    for (i, c) in [&rollout, &counter].into_iter().enumerate() {
        let seq_speedup = c.clone_seq.as_secs_f64() / c.inc_seq.as_secs_f64().max(1e-9);
        let par_speedup = c.clone_par.as_secs_f64() / c.inc_par.as_secs_f64().max(1e-9);
        let _ = write!(
            cases,
            "{}    {{\"name\": \"{}\", \"assignments\": {}, \"depth\": {depth}, \
             \"jobs1\": {{\"clone_secs\": {:.6}, \"incremental_secs\": {:.6}, \
             \"speedup\": {seq_speedup:.3}}}, \
             \"jobs{jobs}\": {{\"clone_secs\": {:.6}, \"incremental_secs\": {:.6}, \
             \"speedup\": {par_speedup:.3}}}}}",
            if i == 0 { "" } else { ",\n" },
            c.name,
            c.assignments,
            c.clone_seq.as_secs_f64(),
            c.inc_seq.as_secs_f64(),
            c.clone_par.as_secs_f64(),
            c.inc_par.as_secs_f64(),
        );
    }
    // Re-sample after the measured runs: if the host lost cores mid-run
    // the degraded flag must reflect the worst budget observed.
    let host = host_provenance_json(cores.min(sample_cores()), jobs, reps);
    let json = format!(
        "{{\n  \"host\": {host},\n  \
         \"reps\": {reps},\n  \"cases\": [\n{cases}\n  ]\n}}\n"
    );
    std::fs::write(&out, json).expect("write BENCH_synth.json");
    println!("wrote {}", out.display());
}
