//! Regenerates **Figure 6**: scalability of case study 1 over fat-tree
//! topologies.
//!
//! ```text
//! cargo run -p verdict-bench --release --bin fig6 -- \
//!     [--timeout-secs N] [--max-size K] [--depth D]
//! ```
//!
//! The paper's sweep: topologies `test, fattree4 … fattree12` with
//! `p = m = 1`; one *property-failure* run per topology (`k` = 2, 2, 3,
//! 4, 5, 6 — enough failures to disconnect the front-end), and
//! *verification* runs with `k = 0, 1, 2`. The paper used a 1000 s
//! timeout on a MacBook Air; the default here is 60 s so the sweep
//! finishes quickly — pass `--timeout-secs 1000` for the full-fidelity
//! run.
//!
//! Expected shape (the paper's headline): falsification takes seconds
//! even where verification is infeasible; verification cost grows
//! exponentially with topology size and with `k`; the largest instances
//! time out. The paper's footnote 6 also notes that for `test` and
//! `fattree4` the `k = 2` "verification" runs actually *fail* the
//! property — reproduced here.

use std::time::Duration;

use verdict_bench::{flag_value, fmt_duration, timed};
use verdict_mc::prelude::*;
use verdict_mc::Stats;
use verdict_models::{RolloutModel, RolloutSpec, Topology};

fn outcome(result: &CheckResult) -> &'static str {
    match result {
        CheckResult::Holds => "holds",
        CheckResult::Violated(_) => "VIOLATED",
        CheckResult::Unknown(_) => "timeout",
    }
}

fn main() {
    let timeout = Duration::from_secs(
        flag_value("--timeout-secs")
            .and_then(|t| t.parse().ok())
            .unwrap_or(60),
    );
    let max_size: usize = flag_value("--max-size")
        .and_then(|t| t.parse().ok())
        .unwrap_or(12);
    let depth: usize = flag_value("--depth")
        .and_then(|t| t.parse().ok())
        .unwrap_or(8);
    // `kind` (default) proves by k-induction — far faster than the
    // paper's BDD engine. `bdd` exhausts the state space like NuXMV's
    // BDD backend and reproduces the paper's exponential verification
    // blowup directly.
    let use_bdd = flag_value("--engine").as_deref() == Some("bdd");

    println!(
        "Figure 6: case study 1 scalability (p = m = 1, timeout {}s, depth {depth}, \
         verification engine: {})\n",
        timeout.as_secs(),
        if use_bdd { "bdd" } else { "k-induction" }
    );
    println!(
        "{:<10} {:>6} {:>6} {:>8} | {:>18} | {:>14} {:>14} {:>14}",
        "topology",
        "nodes",
        "links",
        "service",
        "falsify (k_fail)",
        "verify k=0",
        "verify k=1",
        "verify k=2"
    );

    // (topology builder, k needed to disconnect the front-end)
    let cases: Vec<(Topology, i64)> = [
        (Topology::test_topology(), 2),
        (Topology::fat_tree(4), 2),
        (Topology::fat_tree(6), 3),
        (Topology::fat_tree(8), 4),
        (Topology::fat_tree(10), 5),
        (Topology::fat_tree(12), 6),
    ]
    .into_iter()
    .filter(|(t, _)| t.name == "test" || t.num_nodes() <= 5 * max_size * max_size)
    .collect();

    for (topo, k_fail) in cases {
        let arity_ok = match topo.name.strip_prefix("fattree") {
            Some(a) => a.parse::<usize>().unwrap_or(0) <= max_size,
            None => true,
        };
        if !arity_ok {
            continue;
        }
        let (nodes, links, service) =
            (topo.num_nodes(), topo.num_links(), topo.service_nodes.len());
        let name = topo.name.clone();
        let model = RolloutModel::build(&RolloutSpec::paper(topo)).expect("valid topology");

        // Property-failure run (the paper's blue line): BMC with enough
        // failures allowed to cut off the front-end.
        let sys = model.pinned(1, k_fail, 1);
        let opts = CheckOptions::with_depth(depth).with_timeout(timeout);
        let (res, took) = timed(|| {
            engine(EngineKind::Bmc)
                .check_invariant(&sys, &model.property, &opts, &mut Stats::default())
                .unwrap()
        });
        let falsify = format!("{} {} (k={k_fail})", outcome(&res), fmt_duration(took));

        // Verification runs for k = 0, 1, 2 (k-induction; complete for
        // these finite systems given enough depth/time).
        let mut verify = Vec::new();
        for k in 0..=2i64 {
            let sys = model.pinned(1, k, 1);
            let opts = CheckOptions::with_depth(64).with_timeout(timeout);
            let (res, took) = timed(|| {
                if use_bdd {
                    engine(EngineKind::Bdd)
                        .check_invariant(&sys, &model.property, &opts, &mut Stats::default())
                        .unwrap()
                } else {
                    engine(EngineKind::KInduction)
                        .check_invariant(&sys, &model.property, &opts, &mut Stats::default())
                        .unwrap()
                }
            });
            verify.push(format!("{} {}", outcome(&res), fmt_duration(took)));
        }

        println!(
            "{name:<10} {nodes:>6} {links:>6} {service:>8} | {falsify:>18} | {:>14} {:>14} {:>14}",
            verify[0], verify[1], verify[2]
        );
    }

    println!(
        "\nshape to compare with the paper: falsification is fast (seconds) while \
         verification grows exponentially with size and k; the largest instances \
         time out; `test`/`fattree4` genuinely fail at k = 2 (paper footnote 6)."
    );
}
