//! Microbenchmarks for the solver substrates and engines — the cost
//! model underneath the Fig. 6 numbers.
//!
//! Hand-rolled harness (`harness = false`): the offline build container
//! cannot fetch criterion, so each benchmark is timed with
//! `std::time::Instant` over a fixed iteration budget and reported as
//! the per-iteration median.

use std::time::{Duration, Instant};

use verdict_logic::{Rational, Var};
use verdict_mc::prelude::*;
use verdict_mc::Stats;
use verdict_models::{RolloutModel, RolloutSpec, Topology};
use verdict_sat::Solver;
use verdict_smt::{LinExpr, Rel, SmtSolver};
use verdict_ts::{Expr, System};

/// Runs `f` for `iters` timed iterations (after one warmup) and prints
/// the median per-iteration wall-clock time.
fn bench(name: &str, iters: usize, mut f: impl FnMut()) {
    f(); // warmup
    let mut samples: Vec<Duration> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort();
    let median = samples[samples.len() / 2];
    println!("{name:<28} {:>12.3?}  ({iters} iters)", median);
}

/// Pigeonhole PHP(n+1, n): classic hard-UNSAT family for CDCL.
fn sat_pigeonhole() {
    for holes in [5u32, 6, 7] {
        bench(&format!("sat_pigeonhole/{holes}"), 10, || {
            let pigeons = holes + 1;
            let var = |p: u32, h: u32| Var(p * holes + h);
            let mut s = Solver::new();
            for p in 0..pigeons {
                s.add_clause((0..holes).map(|h| var(p, h).positive()));
            }
            for h in 0..holes {
                for p1 in 0..pigeons {
                    for p2 in (p1 + 1)..pigeons {
                        s.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
                    }
                }
            }
            assert!(s.solve().is_unsat());
        });
    }
}

/// Dense random LRA conjunctions through the full DPLL(T) stack.
fn smt_simplex() {
    bench("smt_lra_chain", 20, || {
        let mut smt = SmtSolver::new();
        let vars: Vec<_> = (0..12).map(|i| smt.real_var(&format!("x{i}"))).collect();
        // Chain: x0 >= 1, x_{i+1} >= x_i + 1/2, sum cap forces UNSAT.
        let mut fs = vec![smt.atom(LinExpr::var(vars[0]), Rel::Ge, Rational::ONE)];
        for w in vars.windows(2) {
            let diff = LinExpr::var(w[1]) - LinExpr::var(w[0]);
            fs.push(smt.atom(diff, Rel::Ge, Rational::new(1, 2)));
        }
        let total = vars
            .iter()
            .fold(LinExpr::zero(), |acc, &v| acc + LinExpr::var(v));
        fs.push(smt.atom(total, Rel::Le, Rational::integer(10)));
        for f in fs {
            smt.assert_formula(f);
        }
        assert!(matches!(smt.solve(), verdict_smt::SmtResult::Unsat));
    });
}

/// BMC unrolling depth sweep on a saturating counter.
fn bmc_depth() {
    for depth in [8usize, 16, 32] {
        let mut sys = System::new("counter");
        let n = sys.int_var("n", 0, depth as i64);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).lt(Expr::int(depth as i64)),
            Expr::var(n).add(Expr::int(1)),
            Expr::var(n),
        )));
        let p = Expr::var(n).lt(Expr::int(depth as i64));
        bench(&format!("bmc_counter_depth/{depth}"), 10, || {
            let r = engine(EngineKind::Bmc)
                .check_invariant(
                    &sys,
                    &p,
                    &CheckOptions::with_depth(depth + 1),
                    &mut Stats::default(),
                )
                .unwrap();
            assert!(r.violated());
        });
    }
}

/// The Fig. 6 unit of work: falsify and verify the rollout property on
/// the test topology.
fn rollout_check() {
    let model = RolloutModel::build(&RolloutSpec::paper(Topology::test_topology()))
        .expect("valid topology");
    let falsify = model.pinned(1, 2, 1);
    bench("rollout_test_falsify", 10, || {
        let r = engine(EngineKind::Bmc)
            .check_invariant(
                &falsify,
                &model.property,
                &CheckOptions::with_depth(8),
                &mut Stats::default(),
            )
            .unwrap();
        assert!(r.violated());
    });
    let verify = model.pinned(1, 1, 1);
    bench("rollout_test_verify", 5, || {
        let r = engine(EngineKind::KInduction)
            .check_invariant(
                &verify,
                &model.property,
                &CheckOptions::with_depth(24),
                &mut Stats::default(),
            )
            .unwrap();
        assert!(r.holds());
    });
}

/// Cluster-simulator throughput: the Fig. 2 run.
fn ksim_fig2() {
    bench("ksim_fig2_30min", 5, || {
        let metrics = verdict_ksim::ClusterSpec::figure2().run(30 * 60);
        assert!(metrics.placement_changes("app-").len() >= 10);
    });
}

fn main() {
    // `cargo test --benches` executes bench targets with no filter work
    // to do; only run the full suite under `cargo bench`.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    sat_pigeonhole();
    smt_simplex();
    bmc_depth();
    rollout_check();
    ksim_fig2();
}
