//! Timed unrolling of a finite-domain [`System`] to CNF.
//!
//! The [`Unroller`] allocates a block of SAT variables per (state variable,
//! step) pair, lowers expressions at a given step through the circuits in
//! [`crate::bits`], and Tseitin-encodes everything into one growing clause
//! database. Bounded model checking, k-induction, and the finite part of
//! the parameter-synthesis loop in `verdict-mc` all drive this type.
//!
//! Encodings:
//! * `bool` variables are one bit;
//! * `enum`/bounded-`int` variables are offset-binary blocks of
//!   `⌈log₂(cardinality)⌉` bits with a domain constraint `value ≤ card-1`;
//! * `real` variables are rejected ([`Unroller::new`] fails) — real-sorted
//!   systems go through the SMT encoder in `verdict-mc` instead.

use verdict_logic::{Clause, Formula, Lit, Var};

use crate::bits::{self, FormulaAlg, Num};
use crate::expr::{Expr, TypeError};
use crate::sorts::{Sort, Value};
use crate::system::{System, VarId, VarKind};

/// Bit width for a finite sort.
fn sort_width(sort: &Sort) -> Result<usize, TypeError> {
    let card = sort
        .cardinality()
        .ok_or_else(|| TypeError("real variable in finite encoder".to_string()))?;
    Ok(64 - (card - 1).leading_zeros() as usize)
}

/// The timed SAT encoder. See the [module docs](self).
pub struct Unroller<'s> {
    sys: &'s System,
    enc: verdict_logic::Tseitin,
    widths: Vec<usize>,
    /// `steps[t][v]` = SAT bit block of variable `v` at step `t`.
    steps: Vec<Vec<Vec<Var>>>,
    drained: usize,
    use_init: bool,
}

impl<'s> Unroller<'s> {
    /// Creates an encoder for a finite-domain system. Fails if the system
    /// has real-sorted variables or does not type-check.
    pub fn new(sys: &'s System) -> Result<Unroller<'s>, TypeError> {
        Unroller::with_init(sys, true)
    }

    /// Like [`Unroller::new`] but does **not** assert `INIT` at step 0:
    /// paths may start in any state satisfying `INVAR`. This is the
    /// encoder k-induction uses for its induction step.
    pub fn new_free(sys: &'s System) -> Result<Unroller<'s>, TypeError> {
        Unroller::with_init(sys, false)
    }

    fn with_init(sys: &'s System, use_init: bool) -> Result<Unroller<'s>, TypeError> {
        sys.check()?;
        let widths = sys
            .var_ids()
            .map(|v| sort_width(sys.sort_of(v)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Unroller {
            sys,
            enc: verdict_logic::Tseitin::new(),
            widths,
            steps: Vec::new(),
            drained: 0,
            use_init,
        })
    }

    /// The underlying system.
    pub fn system(&self) -> &System {
        self.sys
    }

    /// Number of materialized steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Total SAT variables allocated so far.
    pub fn num_sat_vars(&mut self) -> u32 {
        self.enc.cnf_mut().num_vars()
    }

    /// Extends the unrolling to include step `t`, asserting all path
    /// constraints: `INIT` at step 0, `INVAR` and domain constraints at
    /// every step, `TRANS` and frozen-variable equality between every
    /// consecutive pair.
    pub fn extend_to(&mut self, t: usize) {
        while self.steps.len() <= t {
            self.push_step();
        }
    }

    fn push_step(&mut self) {
        let t = self.steps.len();
        // Allocate bit blocks.
        let mut blocks = Vec::with_capacity(self.sys.num_vars());
        for v in self.sys.var_ids() {
            let w = self.widths[v.index()];
            let bits: Vec<Var> = (0..w).map(|_| self.enc.cnf_mut().fresh_var()).collect();
            blocks.push(bits);
        }
        self.steps.push(blocks);
        // Domain constraints.
        for v in self.sys.var_ids() {
            let card = self.sys.sort_of(v).cardinality().expect("finite");
            let w = self.widths[v.index()];
            if w > 0 && !card.is_power_of_two() {
                let bit_forms: Vec<Formula> = self.steps[t][v.index()]
                    .iter()
                    .map(|&b| Formula::var(b))
                    .collect();
                let mut alg = FormulaAlg;
                let dom = bits::unsigned_le_const(&mut alg, &bit_forms, card - 1);
                self.enc.assert(&dom);
            }
        }
        // INVAR at this step.
        for inv in self.sys.invar() {
            let f = self.lower_bool(inv, t);
            self.enc.assert(&f);
        }
        if t == 0 {
            if self.use_init {
                for init in self.sys.init() {
                    let f = self.lower_bool(init, 0);
                    self.enc.assert(&f);
                }
            }
        } else {
            // TRANS between t-1 and t.
            for tr in self.sys.trans() {
                let f = self.lower_bool(tr, t - 1);
                self.enc.assert(&f);
            }
            // Frozen variables keep their value.
            for v in self.sys.var_ids() {
                if self.sys.decl(v).kind == VarKind::Frozen {
                    let f = self.var_bits_equal(v, t - 1, t);
                    self.enc.assert(&f);
                }
            }
        }
    }

    fn var_bits_equal(&mut self, v: VarId, t1: usize, t2: usize) -> Formula {
        let a: Vec<Formula> = self.steps[t1][v.index()]
            .iter()
            .map(|&b| Formula::var(b))
            .collect();
        let b: Vec<Formula> = self.steps[t2][v.index()]
            .iter()
            .map(|&b| Formula::var(b))
            .collect();
        let mut alg = FormulaAlg;
        bits::bits_eq(&mut alg, &a, &b)
    }

    /// The SAT bit block of variable `v` at step `t` (allocating steps up
    /// to `t` if needed). Bit `i` is the `2^i` weight of the offset-binary
    /// encoding; `bool` variables have a single bit, width-0 (singleton)
    /// sorts an empty block.
    pub fn var_bits(&mut self, v: VarId, t: usize) -> Vec<Var> {
        self.extend_to(t);
        self.steps[t][v.index()].clone()
    }

    /// The unsigned offset encoding of `value` under `sort` — the number
    /// whose bits the variable's SAT block carries.
    fn unsigned_encoding(sort: &Sort, value: &Value) -> Result<u64, TypeError> {
        let card = sort
            .cardinality()
            .ok_or_else(|| TypeError("cannot pin a real-sorted value".to_string()))?;
        let u = match (sort, value) {
            (Sort::Bool, Value::Bool(b)) => u64::from(*b),
            (Sort::Int { lo, hi }, Value::Int(n)) if n >= lo && n <= hi => (n - lo) as u64,
            (Sort::Enum(e), Value::Enum(ve, idx)) if e == ve => u64::from(*idx),
            _ => {
                return Err(TypeError(format!(
                    "value {value} does not inhabit sort {sort:?}"
                )))
            }
        };
        debug_assert!(u < card);
        Ok(u)
    }

    /// Assumption literals pinning variable `v` to `value` at step 0 —
    /// one literal per bit of the block, positive where the encoding has a
    /// 1-bit. For frozen variables the per-step equality clauses propagate
    /// the pin to every step, so passing these to
    /// `Solver::solve_with_assumptions` is equivalent to (but reversible,
    /// unlike) asserting `INVAR v = value`.
    pub fn pin_value(&mut self, v: VarId, value: &Value) -> Result<Vec<Lit>, TypeError> {
        let u = Self::unsigned_encoding(self.sys.sort_of(v), value)?;
        Ok(self
            .var_bits(v, 0)
            .into_iter()
            .enumerate()
            .map(|(i, b)| b.lit(u >> i & 1 == 1))
            .collect())
    }

    /// Per-parameter assumption blocks for an assignment: element `i`
    /// holds the literals pinning `params[i]` to `assignment[i]`. Keeping
    /// the blocks separate lets callers map a failed-assumption core back
    /// to the parameters it mentions (unsat-core pruning).
    pub fn assumptions_per_param(
        &mut self,
        params: &[VarId],
        assignment: &[Value],
    ) -> Result<Vec<Vec<Lit>>, TypeError> {
        if params.len() != assignment.len() {
            return Err(TypeError(format!(
                "{} parameters but {} values",
                params.len(),
                assignment.len()
            )));
        }
        params
            .iter()
            .zip(assignment)
            .map(|(&p, v)| self.pin_value(p, v))
            .collect()
    }

    /// Flattened assumption literals pinning `params` to `assignment` —
    /// the list to pass to `Solver::solve_with_assumptions` /
    /// `solve_limited` so one incremental solver can sweep many
    /// assignments over a shared unrolling.
    pub fn assumptions_for(
        &mut self,
        params: &[VarId],
        assignment: &[Value],
    ) -> Result<Vec<Lit>, TypeError> {
        Ok(self
            .assumptions_per_param(params, assignment)?
            .into_iter()
            .flatten()
            .collect())
    }

    /// Formula asserting that the *state* (non-frozen) variables at steps
    /// `i` and `j` are equal — the lasso loop-back condition.
    pub fn states_equal(&mut self, i: usize, j: usize) -> Formula {
        self.extend_to(i.max(j));
        let vars: Vec<VarId> = self
            .sys
            .var_ids()
            .filter(|v| self.sys.decl(*v).kind == VarKind::State)
            .collect();
        let parts: Vec<Formula> = vars
            .into_iter()
            .map(|v| self.var_bits_equal(v, i, j))
            .collect();
        Formula::and_all(parts)
    }

    /// Formula asserting the states at `i` and `j` differ — the simple-path
    /// strengthening used by k-induction.
    pub fn states_differ(&mut self, i: usize, j: usize) -> Formula {
        self.states_equal(i, j).not()
    }

    /// Lowers a boolean expression at step `t` (allocating step `t+1` if
    /// the expression mentions `next()`).
    pub fn lower_bool(&mut self, e: &Expr, t: usize) -> Formula {
        if e.mentions_next() {
            self.extend_to(t + 1);
        } else {
            self.extend_to(t);
        }
        // Per-call pointer memo: expressions are shared DAGs (layered
        // reachability expansions especially) and an unmemoized walk is
        // exponential. The cache must not outlive the call — addresses of
        // dropped expressions could be reused.
        let mut seen = std::collections::HashMap::new();
        self.lower_bool_in(e, t, &mut seen)
    }

    fn lower_bool_in(
        &mut self,
        e: &Expr,
        t: usize,
        seen: &mut std::collections::HashMap<*const Expr, Formula>,
    ) -> Formula {
        let key = e as *const Expr;
        if let Some(hit) = seen.get(&key) {
            return hit.clone();
        }
        let result = self.lower_bool_uncached(e, t, seen);
        seen.insert(key, result.clone());
        result
    }

    fn lower_bool_uncached(
        &mut self,
        e: &Expr,
        t: usize,
        seen: &mut std::collections::HashMap<*const Expr, Formula>,
    ) -> Formula {
        match e {
            Expr::Const(Value::Bool(b)) => Formula::constant(*b),
            Expr::Var(v) => self.bool_bit(*v, t),
            Expr::Next(v) => self.bool_bit(*v, t + 1),
            Expr::Not(a) => self.lower_bool_in(a, t, seen).not(),
            Expr::And(xs) => {
                let mut acc = Formula::tt();
                for x in xs.iter() {
                    let f = self.lower_bool_in(x, t, seen);
                    acc = Formula::and_pair(acc, f);
                }
                acc
            }
            Expr::Or(xs) => {
                let mut acc = Formula::ff();
                for x in xs.iter() {
                    let f = self.lower_bool_in(x, t, seen);
                    acc = Formula::or_pair(acc, f);
                }
                acc
            }
            Expr::Implies(a, b) => {
                let a = self.lower_bool_in(a, t, seen);
                let b = self.lower_bool_in(b, t, seen);
                a.implies(b)
            }
            Expr::Iff(a, b) => {
                let a = self.lower_bool_in(a, t, seen);
                let b = self.lower_bool_in(b, t, seen);
                a.iff(b)
            }
            Expr::Ite(c, a, b) => {
                let c = self.lower_bool_in(c, t, seen);
                let a = self.lower_bool_in(a, t, seen);
                let b = self.lower_bool_in(b, t, seen);
                Formula::ite(c, a, b)
            }
            Expr::Eq(a, b) => {
                let sort = a.sort(self.sys).expect("type-checked system");
                match sort {
                    Sort::Bool => {
                        let a = self.lower_bool_in(a, t, seen);
                        let b = self.lower_bool_in(b, t, seen);
                        a.iff(b)
                    }
                    Sort::Enum(_) => {
                        let a = self.lower_enum_bits(a, t, seen);
                        let b = self.lower_enum_bits(b, t, seen);
                        let mut alg = FormulaAlg;
                        bits::bits_eq(&mut alg, &a, &b)
                    }
                    Sort::Int { .. } => {
                        let a = self.lower_num(a, t, seen);
                        let b = self.lower_num(b, t, seen);
                        let mut alg = FormulaAlg;
                        bits::eq(&mut alg, &a, &b)
                    }
                    Sort::Real => unreachable!("finite encoder"),
                }
            }
            Expr::Le(a, b) => {
                let a = self.lower_num(a, t, seen);
                let b = self.lower_num(b, t, seen);
                let mut alg = FormulaAlg;
                bits::le(&mut alg, &a, &b)
            }
            Expr::Lt(a, b) => {
                let a = self.lower_num(a, t, seen);
                let b = self.lower_num(b, t, seen);
                let mut alg = FormulaAlg;
                bits::lt(&mut alg, &a, &b)
            }
            other => panic!("boolean lowering of non-boolean expr {other}"),
        }
    }

    fn bool_bit(&self, v: VarId, t: usize) -> Formula {
        debug_assert_eq!(*self.sys.sort_of(v), Sort::Bool);
        Formula::var(self.steps[t][v.index()][0])
    }

    fn lower_num(
        &mut self,
        e: &Expr,
        t: usize,
        seen: &mut std::collections::HashMap<*const Expr, Formula>,
    ) -> Num<Formula> {
        let mut alg = FormulaAlg;
        match e {
            Expr::Const(Value::Int(n)) => bits::num_const(&mut alg, *n),
            Expr::Var(v) | Expr::Next(v) => {
                let tt = if matches!(e, Expr::Next(_)) { t + 1 } else { t };
                let sort = self.sys.sort_of(*v).clone();
                let Sort::Int { lo, .. } = sort else {
                    panic!("numeric lowering of non-int var");
                };
                let raw: Vec<Formula> = self.steps[tt][v.index()]
                    .iter()
                    .map(|&b| Formula::var(b))
                    .collect();
                let unsigned = bits::from_unsigned(&mut alg, &raw);
                if lo == 0 {
                    unsigned
                } else {
                    let off = bits::num_const(&mut alg, lo);
                    bits::add(&mut alg, &unsigned, &off)
                }
            }
            Expr::Add(xs) => {
                let mut acc = bits::num_const(&mut alg, 0);
                for x in xs.iter() {
                    let n = self.lower_num(x, t, seen);
                    let mut alg = FormulaAlg;
                    acc = bits::add(&mut alg, &acc, &n);
                }
                acc
            }
            Expr::Sub(a, b) => {
                let a = self.lower_num(a, t, seen);
                let b = self.lower_num(b, t, seen);
                let mut alg = FormulaAlg;
                bits::sub(&mut alg, &a, &b)
            }
            Expr::Neg(a) => {
                let a = self.lower_num(a, t, seen);
                let mut alg = FormulaAlg;
                bits::neg(&mut alg, &a)
            }
            Expr::MulConst(k, a) => {
                assert!(k.is_integer(), "type-checked");
                let a = self.lower_num(a, t, seen);
                let mut alg = FormulaAlg;
                bits::mul_const(&mut alg, &a, k.numer() as i64)
            }
            Expr::CountTrue(xs) => {
                let flags: Vec<Formula> =
                    xs.iter().map(|x| self.lower_bool_in(x, t, seen)).collect();
                let mut alg = FormulaAlg;
                bits::count_true(&mut alg, &flags)
            }
            Expr::Ite(c, a, b) => {
                let c = self.lower_bool_in(c, t, seen);
                let a = self.lower_num(a, t, seen);
                let b = self.lower_num(b, t, seen);
                let mut alg = FormulaAlg;
                bits::mux(&mut alg, &c, &a, &b)
            }
            other => panic!("numeric lowering of non-numeric expr {other}"),
        }
    }

    fn lower_enum_bits(
        &mut self,
        e: &Expr,
        t: usize,
        seen: &mut std::collections::HashMap<*const Expr, Formula>,
    ) -> Vec<Formula> {
        match e {
            Expr::Const(Value::Enum(sort, idx)) => {
                let w = sort_width(&Sort::Enum(sort.clone())).expect("finite");
                (0..w)
                    .map(|i| Formula::constant(idx >> i & 1 == 1))
                    .collect()
            }
            Expr::Var(v) | Expr::Next(v) => {
                let tt = if matches!(e, Expr::Next(_)) { t + 1 } else { t };
                self.steps[tt][v.index()]
                    .iter()
                    .map(|&b| Formula::var(b))
                    .collect()
            }
            Expr::Ite(c, a, b) => {
                let c = self.lower_bool_in(c, t, seen);
                let a = self.lower_enum_bits(a, t, seen);
                let b = self.lower_enum_bits(b, t, seen);
                a.into_iter()
                    .zip(b)
                    .map(|(x, y)| Formula::ite(c.clone(), x, y))
                    .collect()
            }
            other => panic!("enum lowering of unsupported expr {other}"),
        }
    }

    /// Asserts a boolean expression at step `t`.
    pub fn assert_expr(&mut self, e: &Expr, t: usize) {
        let f = self.lower_bool(e, t);
        self.enc.assert(&f);
    }

    /// Asserts a pre-built formula (e.g. loop-back conditions).
    pub fn assert_formula(&mut self, f: &Formula) {
        self.enc.assert(f);
    }

    /// Returns a literal equivalent to the formula, materializing constants
    /// through a constrained fresh variable — suitable as an activation or
    /// assumption literal.
    pub fn literal_for(&mut self, f: &Formula) -> Lit {
        match self.enc.define(f) {
            verdict_logic::cnf::EncodedLit::Lit(l) => l,
            verdict_logic::cnf::EncodedLit::True => {
                let v = self.enc.cnf_mut().fresh_var();
                self.enc.cnf_mut().add_unit(v.positive());
                v.positive()
            }
            verdict_logic::cnf::EncodedLit::False => {
                let v = self.enc.cnf_mut().fresh_var();
                self.enc.cnf_mut().add_unit(v.negative());
                v.positive()
            }
        }
    }

    /// A fresh unconstrained literal (for activation variables).
    pub fn fresh_lit(&mut self) -> Lit {
        self.enc.cnf_mut().fresh_var().positive()
    }

    /// Clauses added since the previous drain (feed these to the solver).
    pub fn drain_clauses(&mut self) -> Vec<Clause> {
        let all = self.enc.cnf_mut().clauses();
        let new: Vec<Clause> = all[self.drained..].to_vec();
        self.drained = all.len();
        new
    }

    /// Decodes the value of variable `v` at step `t` from a SAT model.
    pub fn decode(&self, t: usize, v: VarId, model: &dyn Fn(Var) -> bool) -> Value {
        let bits = &self.steps[t][v.index()];
        let mut u: u64 = 0;
        for (i, &b) in bits.iter().enumerate() {
            if model(b) {
                u |= 1 << i;
            }
        }
        match self.sys.sort_of(v) {
            Sort::Bool => Value::Bool(u == 1),
            Sort::Enum(e) => {
                let idx = (u as u32).min(e.variants.len() as u32 - 1);
                Value::Enum(e.clone(), idx)
            }
            Sort::Int { lo, hi } => Value::Int((*lo + u as i64).min(*hi)),
            Sort::Real => unreachable!("finite encoder"),
        }
    }

    /// Decodes the full state at step `t`.
    pub fn decode_state(&self, t: usize, model: &dyn Fn(Var) -> bool) -> Vec<Value> {
        self.sys
            .var_ids()
            .map(|v| self.decode(t, v, model))
            .collect()
    }

    /// Decodes states `0..len`.
    pub fn decode_trace(&self, len: usize, model: &dyn Fn(Var) -> bool) -> Vec<Vec<Value>> {
        (0..len).map(|t| self.decode_state(t, model)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorts::EnumSort;
    use crate::system::System;
    /// Solves the drained clauses with the real CDCL solver (dev-dependency).
    fn solve_cnf(num_vars: u32, clauses: &[Clause]) -> Option<Vec<bool>> {
        let mut solver = verdict_sat::Solver::new();
        solver.reserve_vars(num_vars);
        for c in clauses {
            solver.add_clause(c.iter().copied());
        }
        solver.solve().model().map(|m| m.as_slice().to_vec())
    }

    fn drain_all(u: &mut Unroller<'_>) -> (u32, Vec<Clause>) {
        let clauses = u.drain_clauses();
        (u.num_sat_vars(), clauses)
    }

    #[test]
    fn counter_reaches_three_and_not_five() {
        // n: 0..7, starts 0, increments by 1 until 7 (stays).
        let mut sys = System::new("counter");
        let n = sys.int_var("n", 0, 7);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).lt(Expr::int(7)),
            Expr::var(n).add(Expr::int(1)),
            Expr::var(n),
        )));

        // Reached n == 3 at step 3?
        let mut u = Unroller::new(&sys).unwrap();
        u.assert_expr(&Expr::var(n).eq(Expr::int(3)), 3);
        let (vars, clauses) = drain_all(&mut u);
        let model = solve_cnf(vars, &clauses).expect("n reaches 3 at step 3");
        let val = u.decode(3, n, &|v| model[v.index()]);
        assert_eq!(val, Value::Int(3));
        // And the whole trace is 0,1,2,3.
        let trace = u.decode_trace(4, &|v| model[v.index()]);
        for (t, st) in trace.iter().enumerate() {
            assert_eq!(st[0], Value::Int(t as i64));
        }

        // n == 5 at step 3 must be UNSAT.
        let mut u = Unroller::new(&sys).unwrap();
        u.assert_expr(&Expr::var(n).eq(Expr::int(5)), 3);
        let (vars, clauses) = drain_all(&mut u);
        assert!(solve_cnf(vars, &clauses).is_none());
    }

    #[test]
    fn frozen_vars_stay_constant() {
        let mut sys = System::new("frozen");
        let p = sys.int_param("p", 0, 3);
        let x = sys.bool_var("x");
        sys.add_trans(Expr::next(x).eq(Expr::var(x).not()));
        let mut u = Unroller::new(&sys).unwrap();
        u.extend_to(3);
        // p at step 0 is 2, p at step 3 must also be 2.
        u.assert_expr(&Expr::var(p).eq(Expr::int(2)), 0);
        u.assert_expr(&Expr::var(p).eq(Expr::int(1)), 3);
        let (vars, clauses) = drain_all(&mut u);
        assert!(solve_cnf(vars, &clauses).is_none(), "frozen var changed");
    }

    #[test]
    fn invar_constrains_every_step() {
        let mut sys = System::new("invar");
        let n = sys.int_var("n", 0, 7);
        sys.add_invar(Expr::var(n).le(Expr::int(5)));
        let mut u = Unroller::new(&sys).unwrap();
        u.assert_expr(&Expr::var(n).eq(Expr::int(6)), 2);
        let (vars, clauses) = drain_all(&mut u);
        assert!(solve_cnf(vars, &clauses).is_none());
    }

    #[test]
    fn enum_transition() {
        let phase = EnumSort::new("phase", &["idle", "busy", "done"]);
        let mut sys = System::new("enum");
        let s = sys.add_var("s", Sort::Enum(phase.clone()), VarKind::State);
        let c = |i: u32| Expr::Const(Value::Enum(phase.clone(), i));
        sys.add_init(Expr::var(s).eq(c(0)));
        // idle -> busy -> done -> done
        sys.add_trans(Expr::and_all([
            Expr::var(s).eq(c(0)).implies(Expr::next(s).eq(c(1))),
            Expr::var(s).eq(c(1)).implies(Expr::next(s).eq(c(2))),
            Expr::var(s).eq(c(2)).implies(Expr::next(s).eq(c(2))),
        ]));
        let mut u = Unroller::new(&sys).unwrap();
        u.assert_expr(&Expr::var(s).eq(c(2)), 2);
        let (vars, clauses) = drain_all(&mut u);
        let model = solve_cnf(vars, &clauses).expect("done reachable at 2");
        assert_eq!(u.decode(1, s, &|v| model[v.index()]), Value::Enum(phase, 1));
    }

    #[test]
    fn enum_domain_constraint_blocks_phantom_value() {
        // 3-variant enum in 2 bits: value 3 must be unreachable.
        let phase = EnumSort::new("phase", &["a", "b", "c"]);
        let mut sys = System::new("enum-dom");
        let s = sys.add_var("s", Sort::Enum(phase.clone()), VarKind::State);
        let mut u = Unroller::new(&sys).unwrap();
        u.extend_to(0);
        // Force both raw bits true via not-equal to each variant.
        let ne_all = Expr::and_all([
            Expr::var(s).ne(Expr::Const(Value::Enum(phase.clone(), 0))),
            Expr::var(s).ne(Expr::Const(Value::Enum(phase.clone(), 1))),
            Expr::var(s).ne(Expr::Const(Value::Enum(phase.clone(), 2))),
        ]);
        u.assert_expr(&ne_all, 0);
        let (vars, clauses) = drain_all(&mut u);
        assert!(solve_cnf(vars, &clauses).is_none());
    }

    #[test]
    fn count_true_guard() {
        // Three flags; invariant: at least 2 set. All-false initial state
        // must be unsat.
        let mut sys = System::new("count");
        let a = sys.bool_var("a");
        let b = sys.bool_var("b");
        let c = sys.bool_var("c");
        let count = Expr::count_true([Expr::var(a), Expr::var(b), Expr::var(c)]);
        sys.add_invar(count.ge(Expr::int(2)));
        let mut u = Unroller::new(&sys).unwrap();
        u.assert_expr(&Expr::and_all([Expr::var(a).not(), Expr::var(b).not()]), 0);
        let (vars, clauses) = drain_all(&mut u);
        assert!(solve_cnf(vars, &clauses).is_none());
    }

    #[test]
    fn states_equal_and_differ() {
        let mut sys = System::new("loop");
        let x = sys.bool_var("x");
        sys.add_trans(Expr::next(x).eq(Expr::var(x).not()));
        sys.add_init(Expr::var(x));
        let mut u = Unroller::new(&sys).unwrap();
        u.extend_to(2);
        // x flips each step: state 0 == state 2, state 0 != state 1.
        let eq02 = u.states_equal(0, 2);
        u.assert_formula(&eq02);
        let df01 = u.states_differ(0, 1);
        u.assert_formula(&df01);
        let (vars, clauses) = drain_all(&mut u);
        assert!(solve_cnf(vars, &clauses).is_some());

        let mut u = Unroller::new(&sys).unwrap();
        let eq01 = u.states_equal(0, 1);
        u.assert_formula(&eq01);
        let (vars, clauses) = drain_all(&mut u);
        assert!(solve_cnf(vars, &clauses).is_none(), "x must flip");
    }

    #[test]
    fn real_vars_rejected() {
        let mut sys = System::new("real");
        sys.real_var("r");
        assert!(Unroller::new(&sys).is_err());
    }

    #[test]
    fn negative_ranges() {
        let mut sys = System::new("neg");
        let n = sys.int_var("n", -4, 3);
        sys.add_init(Expr::var(n).eq(Expr::int(-4)));
        sys.add_trans(Expr::next(n).eq(Expr::var(n).add(Expr::int(1))));
        let mut u = Unroller::new(&sys).unwrap();
        u.assert_expr(&Expr::var(n).eq(Expr::int(-1)), 3);
        let (vars, clauses) = drain_all(&mut u);
        let model = solve_cnf(vars, &clauses).expect("-4 + 3 = -1");
        assert_eq!(u.decode(3, n, &|v| model[v.index()]), Value::Int(-1));
    }

    /// Loads the drained clauses into a fresh solver kept alive by the
    /// caller, for assumption-based queries against one clause set.
    fn load_solver(num_vars: u32, clauses: &[Clause]) -> verdict_sat::Solver {
        let mut solver = verdict_sat::Solver::new();
        solver.reserve_vars(num_vars);
        for c in clauses {
            solver.add_clause(c.iter().copied());
        }
        solver
    }

    #[test]
    fn assumptions_pin_parameters_without_asserting() {
        // Pin p at step 0 via assumptions only; the frozen-variable
        // step-to-step equality must propagate the pin to later steps,
        // and the SAME solver must accept a different pin afterwards
        // (nothing entered the clause database).
        let mut sys = System::new("pin");
        let p = sys.int_param("p", 0, 3);
        let x = sys.bool_var("x");
        sys.add_trans(Expr::next(x).eq(Expr::var(x).not()));
        let mut u = Unroller::new(&sys).unwrap();
        u.extend_to(3);
        let pin2 = u.assumptions_for(&[p], &[Value::Int(2)]).unwrap();
        let pin0 = u.assumptions_for(&[p], &[Value::Int(0)]).unwrap();
        let (vars, clauses) = drain_all(&mut u);
        let mut solver = load_solver(vars, &clauses);
        let m = solver
            .solve_with_assumptions(&pin2)
            .model()
            .map(|m| m.as_slice().to_vec())
            .expect("p = 2 is satisfiable");
        assert_eq!(u.decode(3, p, &|v| m[v.index()]), Value::Int(2));
        let m = solver
            .solve_with_assumptions(&pin0)
            .model()
            .map(|m| m.as_slice().to_vec())
            .expect("same solver accepts a different pin");
        assert_eq!(u.decode(3, p, &|v| m[v.index()]), Value::Int(0));
    }

    #[test]
    fn conflicting_pin_unsat_but_recoverable() {
        // INIT forces p = 1: assuming p = 2 refutes, and the refutation
        // leaves the solver reusable for the consistent pin.
        let mut sys = System::new("pin-conflict");
        let p = sys.int_param("p", 0, 3);
        sys.add_init(Expr::var(p).eq(Expr::int(1)));
        let mut u = Unroller::new(&sys).unwrap();
        u.extend_to(1);
        let bad = u.assumptions_for(&[p], &[Value::Int(2)]).unwrap();
        let good = u.assumptions_for(&[p], &[Value::Int(1)]).unwrap();
        let (vars, clauses) = drain_all(&mut u);
        let mut solver = load_solver(vars, &clauses);
        assert!(solver.solve_with_assumptions(&bad).model().is_none());
        assert!(solver.solve_with_assumptions(&good).model().is_some());
    }

    #[test]
    fn pin_rejects_values_outside_the_sort() {
        let mut sys = System::new("pin-sorts");
        let p = sys.int_param("p", 1, 3);
        let b = sys.bool_var("b");
        let mut u = Unroller::new(&sys).unwrap();
        assert!(u.pin_value(p, &Value::Int(0)).is_err(), "below lo");
        assert!(u.pin_value(p, &Value::Int(4)).is_err(), "above hi");
        assert!(u.pin_value(p, &Value::Bool(true)).is_err(), "wrong sort");
        assert!(u.pin_value(b, &Value::Bool(true)).is_ok());
        let e = EnumSort::new("other", &["a", "b"]);
        assert!(u.pin_value(p, &Value::Enum(e, 0)).is_err());
        // Arity mismatch between params and values.
        assert!(u
            .assumptions_for(&[p], &[Value::Int(1), Value::Int(2)])
            .is_err());
    }
}
