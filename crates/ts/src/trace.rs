//! Counterexample traces.
//!
//! A [`Trace`] is the model checker's evidence: a sequence of states, and —
//! for liveness counterexamples — a lasso loop-back index marking the state
//! the path returns to (the paper's case study 2 produces exactly such a
//! "lasso-shaped execution path").

use std::fmt;

use crate::sorts::Value;
use crate::system::System;

/// A finite or lasso-shaped execution trace with variable names attached.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// One name per variable, in declaration order.
    pub var_names: Vec<String>,
    /// States in execution order.
    pub states: Vec<Vec<Value>>,
    /// For lasso traces: index of the state the last state loops back to.
    pub loop_back: Option<usize>,
}

impl Trace {
    /// Builds a trace, taking variable names from the system.
    pub fn new(sys: &System, states: Vec<Vec<Value>>, loop_back: Option<usize>) -> Trace {
        Trace {
            var_names: sys.var_ids().map(|v| sys.name_of(v).to_string()).collect(),
            states,
            loop_back,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True iff the trace has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Value of the named variable at the given step.
    pub fn value(&self, step: usize, var: &str) -> Option<&Value> {
        let idx = self.var_names.iter().position(|n| n == var)?;
        self.states.get(step).map(|s| &s[idx])
    }

    /// The variables whose value changes at least once — the interesting
    /// rows when printing wide system traces.
    pub fn changing_vars(&self) -> Vec<usize> {
        (0..self.var_names.len())
            .filter(|&i| self.states.windows(2).any(|w| w[0][i] != w[1][i]))
            .collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.states.is_empty() {
            return writeln!(f, "(empty trace)");
        }
        // Column widths.
        let name_w = self
            .var_names
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max(4);
        let mut col_w = vec![0usize; self.states.len()];
        for (t, s) in self.states.iter().enumerate() {
            col_w[t] = s
                .iter()
                .map(|v| v.to_string().len())
                .max()
                .unwrap_or(1)
                .max(format!("{t}").len())
                .max(2);
        }
        // Header.
        write!(f, "{:name_w$}", "step")?;
        for (t, w) in col_w.iter().enumerate() {
            let marker = if Some(t) == self.loop_back { "↺" } else { "" };
            write!(f, " | {marker}{t:>0$}", w - marker.chars().count())?;
        }
        writeln!(f)?;
        write!(f, "{:-<name_w$}", "")?;
        for w in &col_w {
            write!(f, "-+-{:-<w$}", "")?;
        }
        writeln!(f)?;
        // Rows.
        for (i, name) in self.var_names.iter().enumerate() {
            write!(f, "{name:name_w$}")?;
            for (t, s) in self.states.iter().enumerate() {
                write!(f, " | {:>1$}", s[i].to_string(), col_w[t])?;
            }
            writeln!(f)?;
        }
        if let Some(l) = self.loop_back {
            writeln!(f, "(lasso: last state loops back to step {l})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::system::System;

    fn sample() -> Trace {
        let mut sys = System::new("s");
        let n = sys.int_var("n", 0, 3);
        let b = sys.bool_var("flag");
        sys.add_init(Expr::var(n).eq(Expr::int(0)).and(Expr::var(b)));
        Trace::new(
            &sys,
            vec![
                vec![Value::Int(0), Value::Bool(true)],
                vec![Value::Int(1), Value::Bool(true)],
                vec![Value::Int(2), Value::Bool(true)],
            ],
            Some(1),
        )
    }

    #[test]
    fn lookup_by_name() {
        let t = sample();
        assert_eq!(t.value(2, "n"), Some(&Value::Int(2)));
        assert_eq!(t.value(0, "flag"), Some(&Value::Bool(true)));
        assert_eq!(t.value(0, "zzz"), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn changing_vars_filters_constant_rows() {
        let t = sample();
        assert_eq!(t.changing_vars(), vec![0]); // only `n` changes
    }

    #[test]
    fn display_contains_table_and_lasso() {
        let t = sample();
        let shown = t.to_string();
        assert!(shown.contains("n"), "{shown}");
        assert!(shown.contains("flag"), "{shown}");
        assert!(shown.contains("loops back to step 1"), "{shown}");
    }
}
