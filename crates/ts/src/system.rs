//! Transition-system declarations and constraint sections.

use std::fmt;

use crate::expr::{Expr, TypeError};
use crate::sorts::Sort;

/// A variable handle within a [`System`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// How a variable evolves over time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarKind {
    /// Ordinary state: evolves per `TRANS` (unconstrained = nondeterministic).
    State,
    /// Frozen parameter: the model checker picks an initial value and it
    /// never changes — the paper's symbolic configuration parameters
    /// (e.g. `p`, `k`, `m` in case study 1).
    Frozen,
}

/// A declared variable.
#[derive(Clone, Debug)]
pub struct VarDecl {
    /// Display name (unique within the system).
    pub name: String,
    /// The variable's sort.
    pub sort: Sort,
    /// State vs frozen parameter.
    pub kind: VarKind,
}

/// A parametric transition system: the modeling object the paper's
/// workflow (Fig. 4) feeds to the symbolic model checker.
///
/// Semantics: a state is a valuation of all variables. Initial states
/// satisfy every `INIT` and `INVAR` constraint; a transition `(s, s')`
/// is allowed iff every `TRANS` constraint holds over `(s, s')`, `s'`
/// satisfies every `INVAR` constraint, and every frozen variable keeps its
/// value. Fairness constraints restrict infinite paths to those where each
/// constraint holds infinitely often (used by liveness checking).
#[derive(Clone, Debug, Default)]
pub struct System {
    name: String,
    vars: Vec<VarDecl>,
    init: Vec<Expr>,
    trans: Vec<Expr>,
    invar: Vec<Expr>,
    fairness: Vec<Expr>,
}

impl System {
    /// An empty system.
    pub fn new(name: &str) -> System {
        System {
            name: name.to_string(),
            ..System::default()
        }
    }

    /// The system's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a variable.
    ///
    /// # Panics
    /// Panics if the name is already taken (models are built by code; a
    /// duplicate name is a construction bug, not user input).
    pub fn add_var(&mut self, name: &str, sort: Sort, kind: VarKind) -> VarId {
        assert!(
            self.vars.iter().all(|v| v.name != name),
            "duplicate variable name {name}"
        );
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDecl {
            name: name.to_string(),
            sort,
            kind,
        });
        id
    }

    /// Convenience: a boolean state variable.
    pub fn bool_var(&mut self, name: &str) -> VarId {
        self.add_var(name, Sort::Bool, VarKind::State)
    }

    /// Convenience: a bounded-integer state variable.
    pub fn int_var(&mut self, name: &str, lo: i64, hi: i64) -> VarId {
        self.add_var(name, Sort::int(lo, hi), VarKind::State)
    }

    /// Convenience: a frozen bounded-integer parameter.
    pub fn int_param(&mut self, name: &str, lo: i64, hi: i64) -> VarId {
        self.add_var(name, Sort::int(lo, hi), VarKind::Frozen)
    }

    /// Convenience: a real-valued state variable.
    pub fn real_var(&mut self, name: &str) -> VarId {
        self.add_var(name, Sort::Real, VarKind::State)
    }

    /// Convenience: a frozen real-valued parameter.
    pub fn real_param(&mut self, name: &str) -> VarId {
        self.add_var(name, Sort::Real, VarKind::Frozen)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Iterates over variable ids.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> {
        (0..self.vars.len() as u32).map(VarId)
    }

    /// Declaration of a variable.
    pub fn decl(&self, v: VarId) -> &VarDecl {
        &self.vars[v.index()]
    }

    /// Sort of a variable.
    pub fn sort_of(&self, v: VarId) -> &Sort {
        &self.vars[v.index()].sort
    }

    /// Name of a variable.
    pub fn name_of(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// Looks a variable up by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Adds an `INIT` constraint (over current-state variables only).
    pub fn add_init(&mut self, e: Expr) {
        assert!(!e.mentions_next(), "INIT must not mention next()");
        self.init.push(e);
    }

    /// Adds a `TRANS` constraint (over current and next state).
    pub fn add_trans(&mut self, e: Expr) {
        self.trans.push(e);
    }

    /// Adds an `INVAR` constraint (holds in every reachable state).
    pub fn add_invar(&mut self, e: Expr) {
        assert!(!e.mentions_next(), "INVAR must not mention next()");
        self.invar.push(e);
    }

    /// Adds a fairness (justice) constraint: infinite paths must satisfy it
    /// infinitely often.
    pub fn add_fairness(&mut self, e: Expr) {
        assert!(!e.mentions_next(), "fairness must not mention next()");
        self.fairness.push(e);
    }

    /// The `INIT` constraints.
    pub fn init(&self) -> &[Expr] {
        &self.init
    }

    /// The `TRANS` constraints.
    pub fn trans(&self) -> &[Expr] {
        &self.trans
    }

    /// The `INVAR` constraints.
    pub fn invar(&self) -> &[Expr] {
        &self.invar
    }

    /// The fairness constraints.
    pub fn fairness(&self) -> &[Expr] {
        &self.fairness
    }

    /// True iff any variable has sort `Real` (such systems need the SMT
    /// engines; finite engines reject them).
    pub fn has_real_vars(&self) -> bool {
        self.vars.iter().any(|v| v.sort == Sort::Real)
    }

    /// Frozen (parameter) variables.
    pub fn frozen_vars(&self) -> Vec<VarId> {
        self.var_ids()
            .filter(|v| self.decl(*v).kind == VarKind::Frozen)
            .collect()
    }

    /// Renders an expression with variable names substituted for ids.
    pub fn pretty(&self, e: &Expr) -> String {
        fn go(sys: &System, e: &Expr, out: &mut String) {
            use std::fmt::Write as _;
            match e {
                Expr::Var(v) => out.push_str(sys.name_of(*v)),
                Expr::Next(v) => {
                    let _ = write!(out, "next({})", sys.name_of(*v));
                }
                Expr::Const(v) => {
                    let _ = write!(out, "{v}");
                }
                Expr::Not(a) => {
                    out.push('!');
                    go(sys, a, out);
                }
                Expr::Neg(a) => {
                    out.push('-');
                    go(sys, a, out);
                }
                Expr::And(xs) | Expr::Or(xs) | Expr::Add(xs) => {
                    let sep = match e {
                        Expr::And(_) => " & ",
                        Expr::Or(_) => " | ",
                        _ => " + ",
                    };
                    out.push('(');
                    for (i, x) in xs.iter().enumerate() {
                        if i > 0 {
                            out.push_str(sep);
                        }
                        go(sys, x, out);
                    }
                    out.push(')');
                }
                Expr::Implies(a, b)
                | Expr::Iff(a, b)
                | Expr::Eq(a, b)
                | Expr::Le(a, b)
                | Expr::Lt(a, b)
                | Expr::Sub(a, b) => {
                    let op = match e {
                        Expr::Implies(..) => " -> ",
                        Expr::Iff(..) => " <-> ",
                        Expr::Eq(..) => " = ",
                        Expr::Le(..) => " <= ",
                        Expr::Lt(..) => " < ",
                        _ => " - ",
                    };
                    out.push('(');
                    go(sys, a, out);
                    out.push_str(op);
                    go(sys, b, out);
                    out.push(')');
                }
                Expr::Ite(c, t, f) => {
                    out.push_str("(if ");
                    go(sys, c, out);
                    out.push_str(" then ");
                    go(sys, t, out);
                    out.push_str(" else ");
                    go(sys, f, out);
                    out.push(')');
                }
                Expr::MulConst(k, a) => {
                    let _ = write!(out, "({k}*");
                    go(sys, a, out);
                    out.push(')');
                }
                Expr::CountTrue(xs) => {
                    out.push_str("count(");
                    for (i, x) in xs.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        go(sys, x, out);
                    }
                    out.push(')');
                }
            }
        }
        let mut out = String::new();
        go(self, e, &mut out);
        out
    }

    /// Type-checks every constraint section; returns the first error.
    pub fn check(&self) -> Result<(), TypeError> {
        let sections: [(&str, &[Expr]); 4] = [
            ("INIT", &self.init),
            ("TRANS", &self.trans),
            ("INVAR", &self.invar),
            ("FAIRNESS", &self.fairness),
        ];
        for (section, exprs) in sections {
            for e in exprs {
                match e.sort(self) {
                    Ok(Sort::Bool) => {}
                    Ok(s) => {
                        return Err(TypeError(format!(
                            "{section} constraint has sort {s}, expected bool: {e}"
                        )))
                    }
                    Err(TypeError(msg)) => {
                        return Err(TypeError(format!("in {section} ({e}): {msg}")))
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SYSTEM {}", self.name)?;
        for v in &self.vars {
            let kind = match v.kind {
                VarKind::State => "VAR",
                VarKind::Frozen => "FROZEN",
            };
            writeln!(f, "  {kind} {}: {}", v.name, v.sort)?;
        }
        for e in &self.init {
            writeln!(f, "  INIT {}", self.pretty(e))?;
        }
        for e in &self.invar {
            writeln!(f, "  INVAR {}", self.pretty(e))?;
        }
        for e in &self.trans {
            writeln!(f, "  TRANS {}", self.pretty(e))?;
        }
        for e in &self.fairness {
            writeln!(f, "  FAIRNESS {}", self.pretty(e))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorts::Value;

    #[test]
    fn declare_and_lookup() {
        let mut sys = System::new("counter");
        let n = sys.int_var("n", 0, 3);
        let p = sys.int_param("p", 1, 2);
        assert_eq!(sys.num_vars(), 2);
        assert_eq!(sys.name_of(n), "n");
        assert_eq!(sys.var_by_name("p"), Some(p));
        assert_eq!(sys.var_by_name("zzz"), None);
        assert_eq!(sys.frozen_vars(), vec![p]);
        assert!(!sys.has_real_vars());
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_names_rejected() {
        let mut sys = System::new("s");
        sys.bool_var("x");
        sys.bool_var("x");
    }

    #[test]
    #[should_panic(expected = "INIT must not mention next()")]
    fn init_with_next_rejected() {
        let mut sys = System::new("s");
        let x = sys.bool_var("x");
        sys.add_init(Expr::next(x));
    }

    #[test]
    fn check_catches_sort_errors() {
        let mut sys = System::new("s");
        let n = sys.int_var("n", 0, 3);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        assert!(sys.check().is_ok());
        sys.add_trans(Expr::next(n)); // int, not bool
        let e = sys.check().unwrap_err();
        assert!(e.0.contains("TRANS"), "{e}");
    }

    #[test]
    fn counter_semantics_via_eval() {
        // n' = n + 1 mod nothing (saturating range keeps it simple).
        let mut sys = System::new("counter");
        let n = sys.int_var("n", 0, 3);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::var(n).add(Expr::int(1))));
        assert!(sys.check().is_ok());
        let trans = &sys.trans()[0];
        let holds = trans.eval(&|_, next| Value::Int(if next { 2 } else { 1 }));
        assert_eq!(holds, Value::Bool(true));
        let fails = trans.eval(&|_, next| Value::Int(if next { 3 } else { 1 }));
        assert_eq!(fails, Value::Bool(false));
    }

    #[test]
    fn display_lists_sections() {
        let mut sys = System::new("demo");
        let x = sys.bool_var("x");
        sys.add_init(Expr::var(x));
        sys.add_trans(Expr::next(x).iff(Expr::var(x).not()));
        sys.add_fairness(Expr::var(x));
        let shown = sys.to_string();
        assert!(shown.contains("VAR x: bool"));
        assert!(shown.contains("INIT"));
        assert!(shown.contains("TRANS"));
        assert!(shown.contains("FAIRNESS"));
    }
}
