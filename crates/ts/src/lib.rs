//! The parametric transition-system IR at the center of `verdict`.
//!
//! The paper (§4.1) models infrastructure control as a *parametric
//! transition system*: typed state variables for environment and controller
//! state, frozen variables for configuration parameters, and constraints
//! describing initial states, transitions, and invariants. This crate is
//! that modeling layer:
//!
//! * [`Sort`]/[`Value`] — the type universe: booleans, finite enumerations,
//!   bounded integers, and exact reals.
//! * [`Expr`] — a typed expression AST over current- and next-state
//!   variables, with a type checker and an interpreter.
//! * [`System`] — variable declarations (state and frozen/parameter),
//!   `INIT`/`TRANS`/`INVAR` constraint sections, and fairness constraints,
//!   mirroring the paper's NuXMV usage.
//! * [`Ltl`]/[`Ctl`] — temporal property ASTs (`G`, `F`, `X`, `U`, `R` and
//!   the CTL quantified forms).
//! * [`bits`] — bit-blasting circuits written once against the [`BoolAlg`]
//!   abstraction, shared by the SAT unrolling encoder here and the BDD
//!   encoder in `verdict-mc`.
//! * [`unroll`] — the timed SAT encoder: maps `(variable, step)` pairs to
//!   fresh Boolean variables and lowers expressions to `verdict-logic`
//!   formulas, the substrate for bounded model checking and k-induction.
//! * [`explicit`] — an explicit-state interpreter (state enumeration and
//!   successor generation) used as a differential oracle for the symbolic
//!   engines and for tiny models.
//! * [`trace`] — counterexample traces (finite or lasso-shaped) with
//!   human-readable rendering, the artifact the paper's Fig. 5 shows.

pub mod bits;
pub mod explicit;
pub mod expr;
pub mod property;
pub mod replay;
pub mod sorts;
pub mod system;
pub mod trace;
pub mod unroll;

pub use bits::{BoolAlg, FormulaAlg};
pub use expr::{Expr, TypeError};
pub use property::{Ctl, Ltl};
pub use sorts::{EnumSort, Sort, Value};
pub use system::{System, VarId, VarKind};
pub use trace::Trace;
pub use unroll::Unroller;
