//! Typed expressions over transition-system variables.
//!
//! Expressions reference current-state variables ([`Expr::var`]) and
//! next-state variables ([`Expr::next`]); `TRANS` constraints use both,
//! everything else uses only current state. Arithmetic is linear — the
//! only multiplication is by a constant — matching both what the paper's
//! models need and what the simplex backend can decide.

use std::fmt;
use std::sync::Arc;

use verdict_logic::Rational;

use crate::sorts::{Sort, Value};
use crate::system::{System, VarId};

/// A typed expression.
///
/// Construct through the associated builder functions, which perform light
/// constant folding; well-sortedness is established by [`Expr::sort`]
/// against a [`System`].
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// Current-state value of a variable.
    Var(VarId),
    /// Next-state value of a variable (TRANS constraints only).
    Next(VarId),
    /// Boolean negation.
    Not(Arc<Expr>),
    /// N-ary conjunction.
    And(Arc<Vec<Expr>>),
    /// N-ary disjunction.
    Or(Arc<Vec<Expr>>),
    /// Implication.
    Implies(Arc<Expr>, Arc<Expr>),
    /// Bi-implication.
    Iff(Arc<Expr>, Arc<Expr>),
    /// If-then-else (any sort, both branches alike).
    Ite(Arc<Expr>, Arc<Expr>, Arc<Expr>),
    /// Equality (bool, enum, int, or real operands of matching sort).
    Eq(Arc<Expr>, Arc<Expr>),
    /// Less-or-equal on int or real operands.
    Le(Arc<Expr>, Arc<Expr>),
    /// Strictly-less on int or real operands.
    Lt(Arc<Expr>, Arc<Expr>),
    /// N-ary sum (int or real, homogeneous).
    Add(Arc<Vec<Expr>>),
    /// Difference.
    Sub(Arc<Expr>, Arc<Expr>),
    /// Arithmetic negation.
    Neg(Arc<Expr>),
    /// Multiplication by a constant (keeps arithmetic linear).
    MulConst(Rational, Arc<Expr>),
    /// Number of true operands, as a bounded integer — the idiom behind
    /// quantitative guards like "available service nodes ≥ m".
    CountTrue(Arc<Vec<Expr>>),
}

/// A sort error found while checking an expression.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

fn err<T>(msg: impl Into<String>) -> Result<T, TypeError> {
    Err(TypeError(msg.into()))
}

impl Expr {
    // ---- builders ---------------------------------------------------

    /// Boolean constant.
    pub fn bool(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }

    /// The constant true.
    pub fn tt() -> Expr {
        Expr::bool(true)
    }

    /// The constant false.
    pub fn ff() -> Expr {
        Expr::bool(false)
    }

    /// Integer constant.
    pub fn int(n: i64) -> Expr {
        Expr::Const(Value::Int(n))
    }

    /// Rational constant.
    pub fn real(r: Rational) -> Expr {
        Expr::Const(Value::Real(r))
    }

    /// Current-state variable reference.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// Next-state variable reference.
    pub fn next(v: VarId) -> Expr {
        Expr::Next(v)
    }

    /// Negation with involution folding.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        match self {
            Expr::Const(Value::Bool(b)) => Expr::bool(!b),
            Expr::Not(e) => e.as_ref().clone(),
            other => Expr::Not(Arc::new(other)),
        }
    }

    /// Conjunction (flattens, folds constants).
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::and_all([self, rhs])
    }

    /// Disjunction (flattens, folds constants).
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::or_all([self, rhs])
    }

    /// N-ary conjunction.
    pub fn and_all<I: IntoIterator<Item = Expr>>(items: I) -> Expr {
        let mut parts = Vec::new();
        for e in items {
            match e {
                Expr::Const(Value::Bool(true)) => {}
                Expr::Const(Value::Bool(false)) => return Expr::ff(),
                Expr::And(xs) => parts.extend(xs.iter().cloned()),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => Expr::tt(),
            1 => parts.pop().expect("len checked"),
            _ => Expr::And(Arc::new(parts)),
        }
    }

    /// Raw binary conjunction without flattening. Use when building deep
    /// shared DAGs (e.g. layered reachability expansions): the flattening
    /// constructors copy child vectors, which is quadratic on such
    /// structures.
    pub fn and_pair(a: Expr, b: Expr) -> Expr {
        match (&a, &b) {
            (Expr::Const(Value::Bool(false)), _) | (_, Expr::Const(Value::Bool(false))) => {
                return Expr::ff()
            }
            (Expr::Const(Value::Bool(true)), _) => return b,
            (_, Expr::Const(Value::Bool(true))) => return a,
            _ => {}
        }
        Expr::And(Arc::new(vec![a, b]))
    }

    /// Raw binary disjunction without flattening (see [`Expr::and_pair`]).
    pub fn or_pair(a: Expr, b: Expr) -> Expr {
        match (&a, &b) {
            (Expr::Const(Value::Bool(true)), _) | (_, Expr::Const(Value::Bool(true))) => {
                return Expr::tt()
            }
            (Expr::Const(Value::Bool(false)), _) => return b,
            (_, Expr::Const(Value::Bool(false))) => return a,
            _ => {}
        }
        Expr::Or(Arc::new(vec![a, b]))
    }

    /// N-ary disjunction.
    pub fn or_all<I: IntoIterator<Item = Expr>>(items: I) -> Expr {
        let mut parts = Vec::new();
        for e in items {
            match e {
                Expr::Const(Value::Bool(false)) => {}
                Expr::Const(Value::Bool(true)) => return Expr::tt(),
                Expr::Or(xs) => parts.extend(xs.iter().cloned()),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => Expr::ff(),
            1 => parts.pop().expect("len checked"),
            _ => Expr::Or(Arc::new(parts)),
        }
    }

    /// Implication.
    pub fn implies(self, rhs: Expr) -> Expr {
        Expr::Implies(Arc::new(self), Arc::new(rhs))
    }

    /// Bi-implication.
    pub fn iff(self, rhs: Expr) -> Expr {
        Expr::Iff(Arc::new(self), Arc::new(rhs))
    }

    /// If-then-else.
    pub fn ite(cond: Expr, then: Expr, els: Expr) -> Expr {
        match cond {
            Expr::Const(Value::Bool(true)) => then,
            Expr::Const(Value::Bool(false)) => els,
            c => Expr::Ite(Arc::new(c), Arc::new(then), Arc::new(els)),
        }
    }

    /// Equality.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Eq(Arc::new(self), Arc::new(rhs))
    }

    /// Disequality.
    pub fn ne(self, rhs: Expr) -> Expr {
        self.eq(rhs).not()
    }

    /// `self ≤ rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Le(Arc::new(self), Arc::new(rhs))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Lt(Arc::new(self), Arc::new(rhs))
    }

    /// `self ≥ rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        rhs.le(self)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        rhs.lt(self)
    }

    /// Sum.
    #[allow(clippy::should_implement_trait)] // builder DSL, not std::ops
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::sum([self, rhs])
    }

    /// N-ary sum.
    pub fn sum<I: IntoIterator<Item = Expr>>(items: I) -> Expr {
        let mut parts = Vec::new();
        for e in items {
            match e {
                Expr::Add(xs) => parts.extend(xs.iter().cloned()),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => Expr::int(0),
            1 => parts.pop().expect("len checked"),
            _ => Expr::Add(Arc::new(parts)),
        }
    }

    /// Difference.
    #[allow(clippy::should_implement_trait)] // builder DSL, not std::ops
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Arc::new(self), Arc::new(rhs))
    }

    /// Arithmetic negation.
    #[allow(clippy::should_implement_trait)] // builder DSL, not std::ops
    pub fn neg(self) -> Expr {
        Expr::Neg(Arc::new(self))
    }

    /// Multiplication by a rational constant.
    pub fn scale(self, k: Rational) -> Expr {
        Expr::MulConst(k, Arc::new(self))
    }

    /// Number of true expressions among `items`.
    pub fn count_true<I: IntoIterator<Item = Expr>>(items: I) -> Expr {
        Expr::CountTrue(Arc::new(items.into_iter().collect()))
    }

    // ---- analysis ---------------------------------------------------

    /// True iff the expression mentions any next-state variable.
    /// Memoized on node identity, so shared DAGs are walked once.
    pub fn mentions_next(&self) -> bool {
        fn go(e: &Expr, cache: &mut std::collections::HashMap<*const Expr, bool>) -> bool {
            let key = e as *const Expr;
            if let Some(&b) = cache.get(&key) {
                return b;
            }
            let b = match e {
                Expr::Const(_) | Expr::Var(_) => false,
                Expr::Next(_) => true,
                Expr::Not(x) | Expr::Neg(x) | Expr::MulConst(_, x) => go(x, cache),
                Expr::And(xs) | Expr::Or(xs) | Expr::Add(xs) | Expr::CountTrue(xs) => {
                    xs.iter().any(|x| go(x, cache))
                }
                Expr::Implies(a, b)
                | Expr::Iff(a, b)
                | Expr::Eq(a, b)
                | Expr::Le(a, b)
                | Expr::Lt(a, b)
                | Expr::Sub(a, b) => go(a, cache) || go(b, cache),
                Expr::Ite(c, t, f) => go(c, cache) || go(t, cache) || go(f, cache),
            };
            cache.insert(key, b);
            b
        }
        go(self, &mut std::collections::HashMap::new())
    }

    /// Collects every variable mentioned (current or next).
    pub fn variables(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) | Expr::Next(v) => out.push(*v),
            Expr::Not(e) | Expr::Neg(e) | Expr::MulConst(_, e) => e.variables(out),
            Expr::And(xs) | Expr::Or(xs) | Expr::Add(xs) | Expr::CountTrue(xs) => {
                for e in xs.iter() {
                    e.variables(out);
                }
            }
            Expr::Implies(a, b)
            | Expr::Iff(a, b)
            | Expr::Eq(a, b)
            | Expr::Le(a, b)
            | Expr::Lt(a, b)
            | Expr::Sub(a, b) => {
                a.variables(out);
                b.variables(out);
            }
            Expr::Ite(c, t, e) => {
                c.variables(out);
                t.variables(out);
                e.variables(out);
            }
        }
    }

    /// Computes the sort of the expression under the system's declarations,
    /// checking well-sortedness along the way. Integer sorts carry the
    /// statically-derived value range.
    pub fn sort(&self, sys: &System) -> Result<Sort, TypeError> {
        self.sort_rec(sys, &mut std::collections::HashMap::new())
    }

    /// Memoized recursion for [`Expr::sort`]: shared DAG nodes are sorted
    /// once (keyed by node identity).
    fn sort_rec(
        &self,
        sys: &System,
        cache: &mut std::collections::HashMap<*const Expr, Sort>,
    ) -> Result<Sort, TypeError> {
        let key = self as *const Expr;
        if let Some(s) = cache.get(&key) {
            return Ok(s.clone());
        }
        let result = match self {
            Expr::Const(v) => Ok(v.sort_of()),
            Expr::Var(v) | Expr::Next(v) => Ok(sys.sort_of(*v).clone()),
            Expr::Not(e) => {
                expect_bool(sys, e, "not", cache)?;
                Ok(Sort::Bool)
            }
            Expr::And(xs) | Expr::Or(xs) => {
                for e in xs.iter() {
                    expect_bool(sys, e, "and/or", cache)?;
                }
                Ok(Sort::Bool)
            }
            Expr::Implies(a, b) | Expr::Iff(a, b) => {
                expect_bool(sys, a, "implies/iff", cache)?;
                expect_bool(sys, b, "implies/iff", cache)?;
                Ok(Sort::Bool)
            }
            Expr::Ite(c, t, e) => {
                expect_bool(sys, c, "ite condition", cache)?;
                let ts = t.sort_rec(sys, cache)?;
                let es = e.sort_rec(sys, cache)?;
                merge_branch_sorts(ts, es)
            }
            Expr::Eq(a, b) => {
                let sa = a.sort_rec(sys, cache)?;
                let sb = b.sort_rec(sys, cache)?;
                if compatible(&sa, &sb) {
                    Ok(Sort::Bool)
                } else {
                    err(format!("eq on incompatible sorts {sa} and {sb}"))
                }
            }
            Expr::Le(a, b) | Expr::Lt(a, b) => {
                let sa = a.sort_rec(sys, cache)?;
                let sb = b.sort_rec(sys, cache)?;
                match (&sa, &sb) {
                    (Sort::Int { .. }, Sort::Int { .. }) => Ok(Sort::Bool),
                    (Sort::Real, Sort::Real) => Ok(Sort::Bool),
                    _ => err(format!("comparison on sorts {sa} and {sb}")),
                }
            }
            Expr::Add(xs) => {
                if xs.is_empty() {
                    return Ok(Sort::int(0, 0));
                }
                let mut acc = xs[0].sort_rec(sys, cache)?;
                for e in &xs[1..] {
                    let s = e.sort_rec(sys, cache)?;
                    acc = match (acc, s) {
                        (Sort::Int { lo: a, hi: b }, Sort::Int { lo: c, hi: d }) => Sort::Int {
                            lo: a.checked_add(c).ok_or_else(range_overflow)?,
                            hi: b.checked_add(d).ok_or_else(range_overflow)?,
                        },
                        (Sort::Real, Sort::Real) => Sort::Real,
                        (a, b) => return err(format!("add on sorts {a} and {b}")),
                    };
                }
                Ok(acc)
            }
            Expr::Sub(a, b) => {
                let sa = a.sort_rec(sys, cache)?;
                let sb = b.sort_rec(sys, cache)?;
                match (sa, sb) {
                    (Sort::Int { lo: a, hi: b }, Sort::Int { lo: c, hi: d }) => Ok(Sort::Int {
                        lo: a.checked_sub(d).ok_or_else(range_overflow)?,
                        hi: b.checked_sub(c).ok_or_else(range_overflow)?,
                    }),
                    (Sort::Real, Sort::Real) => Ok(Sort::Real),
                    (a, b) => err(format!("sub on sorts {a} and {b}")),
                }
            }
            Expr::Neg(e) => match e.sort_rec(sys, cache)? {
                Sort::Int { lo, hi } => Ok(Sort::Int {
                    lo: hi.checked_neg().ok_or_else(range_overflow)?,
                    hi: lo.checked_neg().ok_or_else(range_overflow)?,
                }),
                Sort::Real => Ok(Sort::Real),
                s => err(format!("neg on sort {s}")),
            },
            Expr::MulConst(k, e) => match e.sort_rec(sys, cache)? {
                Sort::Int { lo, hi } => {
                    if !k.is_integer() {
                        return err(format!("int scaled by non-integer {k}"));
                    }
                    let k = k.numer() as i64;
                    let (a, b) = (
                        lo.checked_mul(k).ok_or_else(range_overflow)?,
                        hi.checked_mul(k).ok_or_else(range_overflow)?,
                    );
                    Ok(Sort::Int {
                        lo: a.min(b),
                        hi: a.max(b),
                    })
                }
                Sort::Real => Ok(Sort::Real),
                s => err(format!("scale on sort {s}")),
            },
            Expr::CountTrue(xs) => {
                for e in xs.iter() {
                    expect_bool(sys, e, "count_true", cache)?;
                }
                Ok(Sort::int(0, xs.len() as i64))
            }
        }?;
        cache.insert(key, result.clone());
        Ok(result)
    }

    /// Evaluates the expression. `env(v, false)` must yield the current
    /// value of `v`; `env(v, true)` the next value (only consulted for
    /// [`Expr::Next`]).
    pub fn eval(&self, env: &dyn Fn(VarId, bool) -> Value) -> Value {
        match self {
            Expr::Const(v) => v.clone(),
            Expr::Var(v) => env(*v, false),
            Expr::Next(v) => env(*v, true),
            Expr::Not(e) => Value::Bool(!e.eval(env).as_bool()),
            Expr::And(xs) => Value::Bool(xs.iter().all(|e| e.eval(env).as_bool())),
            Expr::Or(xs) => Value::Bool(xs.iter().any(|e| e.eval(env).as_bool())),
            Expr::Implies(a, b) => Value::Bool(!a.eval(env).as_bool() || b.eval(env).as_bool()),
            Expr::Iff(a, b) => Value::Bool(a.eval(env).as_bool() == b.eval(env).as_bool()),
            Expr::Ite(c, t, e) => {
                if c.eval(env).as_bool() {
                    t.eval(env)
                } else {
                    e.eval(env)
                }
            }
            Expr::Eq(a, b) => Value::Bool(values_equal(&a.eval(env), &b.eval(env))),
            Expr::Le(a, b) => Value::Bool(compare(&a.eval(env), &b.eval(env)) <= 0),
            Expr::Lt(a, b) => Value::Bool(compare(&a.eval(env), &b.eval(env)) < 0),
            Expr::Add(xs) => {
                let vals: Vec<Value> = xs.iter().map(|e| e.eval(env)).collect();
                if vals.iter().any(|v| matches!(v, Value::Real(_))) {
                    Value::Real(
                        vals.iter()
                            .map(Value::as_real)
                            .fold(Rational::ZERO, |a, b| a + b),
                    )
                } else {
                    Value::Int(vals.iter().map(Value::as_int).sum())
                }
            }
            Expr::Sub(a, b) => match (a.eval(env), b.eval(env)) {
                (Value::Int(a), Value::Int(b)) => Value::Int(a - b),
                (Value::Real(a), Value::Real(b)) => Value::Real(a - b),
                (a, b) => panic!("sub on {a} and {b}"),
            },
            Expr::Neg(e) => match e.eval(env) {
                Value::Int(n) => Value::Int(-n),
                Value::Real(r) => Value::Real(-r),
                v => panic!("neg on {v}"),
            },
            Expr::MulConst(k, e) => match e.eval(env) {
                Value::Int(n) => Value::Int(n * k.numer() as i64 / k.denom() as i64),
                Value::Real(r) => Value::Real(r * *k),
                v => panic!("scale on {v}"),
            },
            Expr::CountTrue(xs) => {
                Value::Int(xs.iter().filter(|e| e.eval(env).as_bool()).count() as i64)
            }
        }
    }
}

fn range_overflow() -> TypeError {
    TypeError("integer range overflow in derived sort".to_string())
}

fn expect_bool(
    sys: &System,
    e: &Expr,
    ctx: &str,
    cache: &mut std::collections::HashMap<*const Expr, Sort>,
) -> Result<(), TypeError> {
    match e.sort_rec(sys, cache)? {
        Sort::Bool => Ok(()),
        s => err(format!("{ctx} expects bool, got {s}")),
    }
}

/// Sorts compatible for equality comparison.
fn compatible(a: &Sort, b: &Sort) -> bool {
    match (a, b) {
        (Sort::Bool, Sort::Bool) => true,
        (Sort::Real, Sort::Real) => true,
        (Sort::Int { .. }, Sort::Int { .. }) => true,
        (Sort::Enum(x), Sort::Enum(y)) => x.name == y.name,
        _ => false,
    }
}

/// Merged sort of two ite branches.
fn merge_branch_sorts(a: Sort, b: Sort) -> Result<Sort, TypeError> {
    match (a, b) {
        (Sort::Int { lo: a, hi: b }, Sort::Int { lo: c, hi: d }) => Ok(Sort::Int {
            lo: a.min(c),
            hi: b.max(d),
        }),
        (a, b) if compatible(&a, &b) => Ok(a),
        (a, b) => err(format!("ite branches have sorts {a} and {b}")),
    }
}

fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Real(x), Value::Real(y)) => x == y,
        (Value::Enum(_, x), Value::Enum(_, y)) => x == y,
        (a, b) => panic!("eq on {a} and {b}"),
    }
}

/// Three-way comparison of numeric values (-1, 0, 1).
fn compare(a: &Value, b: &Value) -> i32 {
    let ord = match (a, b) {
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Real(x), Value::Real(y)) => x.cmp(y),
        (a, b) => panic!("comparison on {a} and {b}"),
    };
    ord as i32
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn join(f: &mut fmt::Formatter<'_>, xs: &[Expr], sep: &str, empty: &str) -> fmt::Result {
            if xs.is_empty() {
                return write!(f, "{empty}");
            }
            write!(f, "(")?;
            for (i, e) in xs.iter().enumerate() {
                if i > 0 {
                    write!(f, " {sep} ")?;
                }
                write!(f, "{e}")?;
            }
            write!(f, ")")
        }
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(v) => write!(f, "{v:?}"),
            Expr::Next(v) => write!(f, "next({v:?})"),
            Expr::Not(e) => write!(f, "!{e}"),
            Expr::And(xs) => join(f, xs, "&", "true"),
            Expr::Or(xs) => join(f, xs, "|", "false"),
            Expr::Implies(a, b) => write!(f, "({a} -> {b})"),
            Expr::Iff(a, b) => write!(f, "({a} <-> {b})"),
            Expr::Ite(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            Expr::Eq(a, b) => write!(f, "({a} = {b})"),
            Expr::Le(a, b) => write!(f, "({a} <= {b})"),
            Expr::Lt(a, b) => write!(f, "({a} < {b})"),
            Expr::Add(xs) => join(f, xs, "+", "0"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Neg(e) => write!(f, "-{e}"),
            Expr::MulConst(k, e) => write!(f, "({k}*{e})"),
            Expr::CountTrue(xs) => {
                write!(f, "count(")?;
                for (i, e) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{System, VarKind};

    fn tiny_system() -> (System, VarId, VarId, VarId) {
        let mut sys = System::new("test");
        let b = sys.add_var("b", Sort::Bool, VarKind::State);
        let n = sys.add_var("n", Sort::int(0, 7), VarKind::State);
        let r = sys.add_var("r", Sort::Real, VarKind::State);
        (sys, b, n, r)
    }

    #[test]
    fn sorts_of_builders() {
        let (sys, b, n, r) = tiny_system();
        assert_eq!(Expr::var(b).sort(&sys).unwrap(), Sort::Bool);
        assert_eq!(Expr::var(n).sort(&sys).unwrap(), Sort::int(0, 7));
        assert_eq!(Expr::var(r).sort(&sys).unwrap(), Sort::Real);
        let sum = Expr::var(n).add(Expr::int(3));
        assert_eq!(sum.sort(&sys).unwrap(), Sort::int(3, 10));
        let diff = Expr::var(n).sub(Expr::var(n));
        assert_eq!(diff.sort(&sys).unwrap(), Sort::int(-7, 7));
        let cnt = Expr::count_true([Expr::var(b), Expr::var(b).not()]);
        assert_eq!(cnt.sort(&sys).unwrap(), Sort::int(0, 2));
    }

    #[test]
    fn type_errors_caught() {
        let (sys, b, n, r) = tiny_system();
        assert!(Expr::var(b).add(Expr::int(1)).sort(&sys).is_err());
        assert!(Expr::var(n).le(Expr::var(r)).sort(&sys).is_err());
        assert!(Expr::var(n).eq(Expr::var(b)).sort(&sys).is_err());
        assert!(Expr::var(b).not().not().sort(&sys).is_ok());
        assert!(Expr::var(r).scale(Rational::new(1, 2)).sort(&sys).is_ok());
        assert!(Expr::var(n).scale(Rational::new(1, 2)).sort(&sys).is_err());
    }

    #[test]
    fn eval_arithmetic_and_logic() {
        let (_, b, n, r) = tiny_system();
        let env = |v: VarId, _next: bool| -> Value {
            if v == b {
                Value::Bool(true)
            } else if v == n {
                Value::Int(5)
            } else if v == r {
                Value::Real(Rational::new(1, 2))
            } else {
                unreachable!()
            }
        };
        let e = Expr::var(n).add(Expr::int(2)).le(Expr::int(7));
        assert_eq!(e.eval(&env), Value::Bool(true));
        let e = Expr::var(n).gt(Expr::int(4)).and(Expr::var(b));
        assert_eq!(e.eval(&env), Value::Bool(true));
        let e = Expr::var(r).add(Expr::real(Rational::new(1, 2)));
        assert_eq!(e.eval(&env), Value::Real(Rational::ONE));
        let e = Expr::count_true([Expr::var(b), Expr::var(b).not(), Expr::var(b)]);
        assert_eq!(e.eval(&env), Value::Int(2));
        let e = Expr::ite(Expr::var(b), Expr::int(1), Expr::int(9));
        assert_eq!(e.eval(&env), Value::Int(1));
    }

    #[test]
    fn mentions_next() {
        let (_, b, n, _) = tiny_system();
        assert!(!Expr::var(b).mentions_next());
        assert!(Expr::next(b).mentions_next());
        let e = Expr::next(n).eq(Expr::var(n).add(Expr::int(1)));
        assert!(e.mentions_next());
    }

    #[test]
    fn constant_folding() {
        assert_eq!(Expr::tt().and(Expr::ff()), Expr::ff());
        assert_eq!(Expr::tt().not(), Expr::ff());
        let (_, b, _, _) = tiny_system();
        assert_eq!(Expr::var(b).and(Expr::tt()), Expr::var(b));
        assert_eq!(Expr::var(b).or(Expr::tt()), Expr::tt());
        assert_eq!(
            Expr::ite(Expr::tt(), Expr::int(1), Expr::int(2)),
            Expr::int(1)
        );
    }

    #[test]
    fn display_readable() {
        let (_, b, n, _) = tiny_system();
        let e = Expr::var(b).implies(Expr::var(n).ge(Expr::int(2)));
        let shown = e.to_string();
        assert!(shown.contains("->"), "{shown}");
        assert!(shown.contains("<="), "{shown}");
    }
}
