//! Explicit-state interpretation of finite systems.
//!
//! Enumerates initial states and successors by brute force over variable
//! domains. Exponential, so only suitable for small models — which is
//! exactly its role: a trustworthy differential oracle for the symbolic
//! engines, and the semantics reference for tests.

use crate::expr::Expr;
use crate::sorts::Value;
use crate::system::{System, VarId, VarKind};

/// A concrete state: one value per declared variable, in declaration order.
pub type State = Vec<Value>;

/// Evaluates a current-state expression in a state.
///
/// # Panics
/// Panics if the expression mentions `next()`.
pub fn eval_state(e: &Expr, state: &State) -> Value {
    e.eval(&|v: VarId, next: bool| {
        assert!(!next, "eval_state on expression with next()");
        state[v.index()].clone()
    })
}

/// True iff the boolean expression holds in the state.
pub fn holds(e: &Expr, state: &State) -> bool {
    eval_state(e, state).as_bool()
}

/// Evaluates a transition expression over a state pair.
pub fn eval_trans(e: &Expr, current: &State, next: &State) -> bool {
    e.eval(&|v: VarId, is_next: bool| {
        if is_next {
            next[v.index()].clone()
        } else {
            current[v.index()].clone()
        }
    })
    .as_bool()
}

/// Iterator over the cartesian product of per-variable domains.
struct Product {
    domains: Vec<Vec<Value>>,
    indices: Vec<usize>,
    done: bool,
}

impl Product {
    fn new(domains: Vec<Vec<Value>>) -> Product {
        let done = domains.iter().any(Vec::is_empty);
        let indices = vec![0; domains.len()];
        Product {
            domains,
            indices,
            done,
        }
    }
}

impl Iterator for Product {
    type Item = State;

    fn next(&mut self) -> Option<State> {
        if self.done {
            return None;
        }
        let state: State = self
            .indices
            .iter()
            .zip(&self.domains)
            .map(|(&i, d)| d[i].clone())
            .collect();
        // Advance odometer.
        let mut pos = 0;
        loop {
            if pos == self.indices.len() {
                self.done = true;
                break;
            }
            self.indices[pos] += 1;
            if self.indices[pos] < self.domains[pos].len() {
                break;
            }
            self.indices[pos] = 0;
            pos += 1;
        }
        Some(state)
    }
}

/// All states satisfying `INVAR` (the state space).
///
/// # Panics
/// Panics if the system has real-sorted variables.
pub fn all_states(sys: &System) -> Vec<State> {
    let domains: Vec<Vec<Value>> = sys.var_ids().map(|v| sys.sort_of(v).values()).collect();
    Product::new(domains)
        .filter(|s| sys.invar().iter().all(|inv| holds(inv, s)))
        .collect()
}

/// All initial states (satisfying `INIT` and `INVAR`).
pub fn initial_states(sys: &System) -> Vec<State> {
    all_states(sys)
        .into_iter()
        .filter(|s| sys.init().iter().all(|init| holds(init, s)))
        .collect()
}

/// All successors of `state`: next-states satisfying every `TRANS`
/// constraint, `INVAR`, and frozen-variable equality.
pub fn successors(sys: &System, state: &State) -> Vec<State> {
    let domains: Vec<Vec<Value>> = sys
        .var_ids()
        .map(|v| {
            if sys.decl(v).kind == VarKind::Frozen {
                vec![state[v.index()].clone()]
            } else {
                sys.sort_of(v).values()
            }
        })
        .collect();
    Product::new(domains)
        .filter(|next| sys.invar().iter().all(|inv| holds(inv, next)))
        .filter(|next| sys.trans().iter().all(|tr| eval_trans(tr, state, next)))
        .collect()
}

/// Breadth-first reachability: returns a shortest path from an initial
/// state to a state satisfying `target`, if one exists within
/// `max_states` explored states.
pub fn find_reachable(sys: &System, target: &Expr, max_states: usize) -> Option<Vec<State>> {
    use std::collections::{HashMap, VecDeque};
    let key = |s: &State| format!("{s:?}");
    let mut parent: HashMap<String, Option<State>> = HashMap::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    for s in initial_states(sys) {
        if parent.insert(key(&s), None).is_none() {
            queue.push_back(s);
        }
    }
    while let Some(s) = queue.pop_front() {
        if holds(target, &s) {
            // Reconstruct path.
            let mut path = vec![s.clone()];
            let mut cur = s;
            while let Some(Some(p)) = parent.get(&key(&cur)) {
                path.push(p.clone());
                cur = p.clone();
            }
            path.reverse();
            return Some(path);
        }
        if parent.len() >= max_states {
            return None;
        }
        for n in successors(sys, &s) {
            let k = key(&n);
            if let std::collections::hash_map::Entry::Vacant(slot) = parent.entry(k) {
                slot.insert(Some(s.clone()));
                queue.push_back(n);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorts::Sort;

    fn counter() -> (System, VarId) {
        let mut sys = System::new("counter");
        let n = sys.int_var("n", 0, 3);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).lt(Expr::int(3)),
            Expr::var(n).add(Expr::int(1)),
            Expr::int(0),
        )));
        (sys, n)
    }

    #[test]
    fn initial_and_successors() {
        let (sys, _) = counter();
        let init = initial_states(&sys);
        assert_eq!(init, vec![vec![Value::Int(0)]]);
        let succ = successors(&sys, &init[0]);
        assert_eq!(succ, vec![vec![Value::Int(1)]]);
        let succ3 = successors(&sys, &vec![Value::Int(3)]);
        assert_eq!(succ3, vec![vec![Value::Int(0)]], "wraps");
    }

    #[test]
    fn bfs_finds_shortest_path() {
        let (sys, n) = counter();
        let path = find_reachable(&sys, &Expr::var(n).eq(Expr::int(2)), 100).unwrap();
        assert_eq!(path.len(), 3); // 0 -> 1 -> 2
        assert!(find_reachable(&sys, &Expr::var(n).gt(Expr::int(3)), 100).is_none());
    }

    #[test]
    fn invar_prunes_state_space() {
        let mut sys = System::new("pruned");
        let n = sys.int_var("n", 0, 7);
        sys.add_invar(Expr::var(n).le(Expr::int(2)));
        assert_eq!(all_states(&sys).len(), 3);
    }

    #[test]
    fn frozen_vars_fixed_in_successors() {
        let mut sys = System::new("frozen");
        let p = sys.add_var("p", Sort::int(0, 3), VarKind::Frozen);
        let x = sys.bool_var("x");
        sys.add_trans(Expr::next(x).eq(Expr::var(x).not()));
        let state = vec![Value::Int(2), Value::Bool(false)];
        let succ = successors(&sys, &state);
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0][p.index()], Value::Int(2));
        assert_eq!(succ[0][x.index()], Value::Bool(true));
    }

    #[test]
    fn nondeterminism_enumerated() {
        // No TRANS constraint on x: both next values allowed.
        let mut sys = System::new("nondet");
        sys.bool_var("x");
        let state = vec![Value::Bool(false)];
        assert_eq!(successors(&sys, &state).len(), 2);
    }
}
