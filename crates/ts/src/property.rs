//! Temporal-logic property ASTs.
//!
//! The paper verifies safety and liveness properties written in LTL
//! (`G(converged → available ≥ m)`, `F G stable`) and mentions CTL support;
//! both logics are provided. Atoms are boolean [`Expr`]s over current-state
//! variables.

use std::fmt;
use std::sync::Arc;

use crate::expr::Expr;

/// A linear temporal logic formula.
#[derive(Clone, Debug, PartialEq)]
pub enum Ltl {
    /// A state predicate.
    Atom(Expr),
    /// Negation.
    Not(Arc<Ltl>),
    /// Conjunction.
    And(Arc<Ltl>, Arc<Ltl>),
    /// Disjunction.
    Or(Arc<Ltl>, Arc<Ltl>),
    /// Next.
    X(Arc<Ltl>),
    /// Eventually.
    F(Arc<Ltl>),
    /// Always.
    G(Arc<Ltl>),
    /// Until: `a U b`.
    U(Arc<Ltl>, Arc<Ltl>),
    /// Release: `a R b` (dual of until).
    R(Arc<Ltl>, Arc<Ltl>),
}

impl Ltl {
    /// A state predicate.
    pub fn atom(e: Expr) -> Ltl {
        Ltl::Atom(e)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Ltl {
        match self {
            Ltl::Not(inner) => inner.as_ref().clone(),
            other => Ltl::Not(Arc::new(other)),
        }
    }

    /// Conjunction.
    pub fn and(self, rhs: Ltl) -> Ltl {
        Ltl::And(Arc::new(self), Arc::new(rhs))
    }

    /// Disjunction.
    pub fn or(self, rhs: Ltl) -> Ltl {
        Ltl::Or(Arc::new(self), Arc::new(rhs))
    }

    /// Implication (sugar).
    pub fn implies(self, rhs: Ltl) -> Ltl {
        self.not().or(rhs)
    }

    /// Next.
    pub fn next(self) -> Ltl {
        Ltl::X(Arc::new(self))
    }

    /// Eventually.
    pub fn eventually(self) -> Ltl {
        Ltl::F(Arc::new(self))
    }

    /// Always.
    pub fn always(self) -> Ltl {
        Ltl::G(Arc::new(self))
    }

    /// Until.
    pub fn until(self, rhs: Ltl) -> Ltl {
        Ltl::U(Arc::new(self), Arc::new(rhs))
    }

    /// Release.
    pub fn release(self, rhs: Ltl) -> Ltl {
        Ltl::R(Arc::new(self), Arc::new(rhs))
    }

    /// Pushes negations down to atoms (negation normal form), rewriting
    /// `¬X` to `X¬`, `¬F` to `G¬`, `¬G` to `F¬`, `¬U` to `R` and vice versa.
    /// All engines operate on NNF.
    pub fn nnf(&self) -> Ltl {
        fn pos(f: &Ltl) -> Ltl {
            match f {
                Ltl::Atom(e) => Ltl::Atom(e.clone()),
                Ltl::Not(g) => neg(g),
                Ltl::And(a, b) => pos(a).and(pos(b)),
                Ltl::Or(a, b) => pos(a).or(pos(b)),
                Ltl::X(g) => pos(g).next(),
                Ltl::F(g) => pos(g).eventually(),
                Ltl::G(g) => pos(g).always(),
                Ltl::U(a, b) => pos(a).until(pos(b)),
                Ltl::R(a, b) => pos(a).release(pos(b)),
            }
        }
        fn neg(f: &Ltl) -> Ltl {
            match f {
                Ltl::Atom(e) => Ltl::Atom(e.clone().not()),
                Ltl::Not(g) => pos(g),
                Ltl::And(a, b) => neg(a).or(neg(b)),
                Ltl::Or(a, b) => neg(a).and(neg(b)),
                Ltl::X(g) => neg(g).next(),
                Ltl::F(g) => neg(g).always(),
                Ltl::G(g) => neg(g).eventually(),
                Ltl::U(a, b) => neg(a).release(neg(b)),
                Ltl::R(a, b) => neg(a).until(neg(b)),
            }
        }
        pos(self)
    }

    /// Collects the atoms of the formula (post-NNF callers see literals).
    pub fn atoms(&self, out: &mut Vec<Expr>) {
        match self {
            Ltl::Atom(e) => out.push(e.clone()),
            Ltl::Not(a) | Ltl::X(a) | Ltl::F(a) | Ltl::G(a) => a.atoms(out),
            Ltl::And(a, b) | Ltl::Or(a, b) | Ltl::U(a, b) | Ltl::R(a, b) => {
                a.atoms(out);
                b.atoms(out);
            }
        }
    }
}

impl fmt::Display for Ltl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ltl::Atom(e) => write!(f, "{e}"),
            Ltl::Not(a) => write!(f, "!({a})"),
            Ltl::And(a, b) => write!(f, "({a} & {b})"),
            Ltl::Or(a, b) => write!(f, "({a} | {b})"),
            Ltl::X(a) => write!(f, "X({a})"),
            Ltl::F(a) => write!(f, "F({a})"),
            Ltl::G(a) => write!(f, "G({a})"),
            Ltl::U(a, b) => write!(f, "({a} U {b})"),
            Ltl::R(a, b) => write!(f, "({a} R {b})"),
        }
    }
}

/// A computation tree logic formula.
#[derive(Clone, Debug, PartialEq)]
pub enum Ctl {
    /// A state predicate.
    Atom(Expr),
    /// Negation.
    Not(Arc<Ctl>),
    /// Conjunction.
    And(Arc<Ctl>, Arc<Ctl>),
    /// Disjunction.
    Or(Arc<Ctl>, Arc<Ctl>),
    /// Exists-next.
    EX(Arc<Ctl>),
    /// Exists-finally.
    EF(Arc<Ctl>),
    /// Exists-globally.
    EG(Arc<Ctl>),
    /// Exists-until.
    EU(Arc<Ctl>, Arc<Ctl>),
    /// All-next.
    AX(Arc<Ctl>),
    /// All-finally.
    AF(Arc<Ctl>),
    /// All-globally.
    AG(Arc<Ctl>),
    /// All-until.
    AU(Arc<Ctl>, Arc<Ctl>),
}

impl Ctl {
    /// A state predicate.
    pub fn atom(e: Expr) -> Ctl {
        Ctl::Atom(e)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Ctl {
        match self {
            Ctl::Not(inner) => inner.as_ref().clone(),
            other => Ctl::Not(Arc::new(other)),
        }
    }

    /// Conjunction.
    pub fn and(self, rhs: Ctl) -> Ctl {
        Ctl::And(Arc::new(self), Arc::new(rhs))
    }

    /// Disjunction.
    pub fn or(self, rhs: Ctl) -> Ctl {
        Ctl::Or(Arc::new(self), Arc::new(rhs))
    }

    /// Implication (sugar).
    pub fn implies(self, rhs: Ctl) -> Ctl {
        self.not().or(rhs)
    }

    /// EX.
    pub fn ex(self) -> Ctl {
        Ctl::EX(Arc::new(self))
    }

    /// EF.
    pub fn ef(self) -> Ctl {
        Ctl::EF(Arc::new(self))
    }

    /// EG.
    pub fn eg(self) -> Ctl {
        Ctl::EG(Arc::new(self))
    }

    /// EU.
    pub fn eu(self, rhs: Ctl) -> Ctl {
        Ctl::EU(Arc::new(self), Arc::new(rhs))
    }

    /// AX.
    pub fn ax(self) -> Ctl {
        Ctl::AX(Arc::new(self))
    }

    /// AF.
    pub fn af(self) -> Ctl {
        Ctl::AF(Arc::new(self))
    }

    /// AG.
    pub fn ag(self) -> Ctl {
        Ctl::AG(Arc::new(self))
    }

    /// AU.
    pub fn au(self, rhs: Ctl) -> Ctl {
        Ctl::AU(Arc::new(self), Arc::new(rhs))
    }

    /// Rewrites into the `{EX, EU, EG, ¬, ∧, atoms}` adequate base used by
    /// the BDD engine:
    ///
    /// * `EF p = E[true U p]`
    /// * `AX p = ¬EX¬p`, `AG p = ¬EF¬p`, `AF p = ¬EG¬p`
    /// * `A[p U q] = ¬(E[¬q U (¬p ∧ ¬q)] ∨ EG ¬q)`
    pub fn to_base(&self) -> Ctl {
        match self {
            Ctl::Atom(e) => Ctl::Atom(e.clone()),
            Ctl::Not(a) => a.to_base().not(),
            Ctl::And(a, b) => a.to_base().and(b.to_base()),
            Ctl::Or(a, b) => a.to_base().or(b.to_base()),
            Ctl::EX(a) => a.to_base().ex(),
            Ctl::EF(a) => Ctl::atom(crate::expr::Expr::tt()).eu(a.to_base()),
            Ctl::EG(a) => a.to_base().eg(),
            Ctl::EU(a, b) => a.to_base().eu(b.to_base()),
            Ctl::AX(a) => a.to_base().not().ex().not(),
            Ctl::AF(a) => a.to_base().not().eg().not(),
            Ctl::AG(a) => {
                let ef_not = Ctl::atom(crate::expr::Expr::tt()).eu(a.to_base().not());
                ef_not.not()
            }
            Ctl::AU(a, b) => {
                let na = a.to_base().not();
                let nb = b.to_base().not();
                let eu = nb.clone().eu(na.and(nb.clone()));
                let eg = nb.eg();
                eu.or(eg).not()
            }
        }
    }
}

impl fmt::Display for Ctl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ctl::Atom(e) => write!(f, "{e}"),
            Ctl::Not(a) => write!(f, "!({a})"),
            Ctl::And(a, b) => write!(f, "({a} & {b})"),
            Ctl::Or(a, b) => write!(f, "({a} | {b})"),
            Ctl::EX(a) => write!(f, "EX({a})"),
            Ctl::EF(a) => write!(f, "EF({a})"),
            Ctl::EG(a) => write!(f, "EG({a})"),
            Ctl::EU(a, b) => write!(f, "E[{a} U {b}]"),
            Ctl::AX(a) => write!(f, "AX({a})"),
            Ctl::AF(a) => write!(f, "AF({a})"),
            Ctl::AG(a) => write!(f, "AG({a})"),
            Ctl::AU(a, b) => write!(f, "A[{a} U {b}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn p() -> Ltl {
        Ltl::atom(Expr::tt())
    }

    #[test]
    fn nnf_pushes_negation() {
        let f = p().always().not(); // !G p  =>  F !p
        match f.nnf() {
            Ltl::F(inner) => match inner.as_ref() {
                Ltl::Atom(e) => assert_eq!(*e, Expr::ff()),
                other => panic!("expected atom, got {other}"),
            },
            other => panic!("expected F, got {other}"),
        }
        // !(a U b) => !a R !b
        let f = p().until(p()).not();
        assert!(matches!(f.nnf(), Ltl::R(_, _)));
        // Double negation cancels.
        let f = p().not().not();
        assert_eq!(f.nnf(), p());
    }

    #[test]
    fn nnf_handles_fg() {
        // The paper's liveness shape: !(F G stable) => G F !stable
        let stable = Ltl::atom(Expr::tt());
        let f = stable.eventually().always(); // nonsense order on purpose
        let g = f.not().nnf();
        // !(G F p) = F G !p
        assert!(matches!(g, Ltl::F(_)));
    }

    #[test]
    fn ctl_base_rewrites() {
        let a = Ctl::atom(Expr::tt());
        // AG p rewritten to !E[true U !p]
        let base = a.clone().ag().to_base();
        assert!(matches!(base, Ctl::Not(_)));
        // EF p rewritten to E[true U p]
        let base = a.clone().ef().to_base();
        assert!(matches!(base, Ctl::EU(_, _)));
        // AX p => !EX !p
        let base = a.ax().to_base();
        assert!(matches!(base, Ctl::Not(_)));
    }

    #[test]
    fn display_round_readable() {
        let f = p().always();
        assert_eq!(f.to_string(), "G(true)");
        let c = Ctl::atom(Expr::tt()).ef();
        assert_eq!(c.to_string(), "EF(true)");
    }
}
