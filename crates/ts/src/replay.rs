//! Independent counterexample replay.
//!
//! The model-checking engines (BMC, k-induction, BDD, explicit, SMT-BMC)
//! share encoding machinery — bit-blasting, unrolling, tableau products —
//! so a bug there could produce a bogus counterexample *and* survive
//! cross-engine comparison. This module is the court of appeal: a direct,
//! deliberately naive interpreter of `System` semantics that re-executes a
//! [`Trace`] state by state. It shares nothing with the engines beyond
//! [`Expr::eval`], the one-page big-step evaluator.
//!
//! A trace is accepted only if:
//!
//! * its variable layout matches the system's declaration order,
//! * the first state satisfies every `INIT` and `INVAR` constraint,
//! * every state satisfies every `INVAR` constraint,
//! * every adjacent pair satisfies every `TRANS` constraint and keeps
//!   frozen variables fixed,
//! * a lasso loop actually closes (last state equals the loop-back state)
//!   and every system fairness constraint holds somewhere in the loop, and
//! * the trace actually refutes the reported property: the final state
//!   violates the invariant ([`check_invariant_trace`]), or the infinite
//!   lasso word falsifies the LTL formula ([`check_ltl_trace`]) under the
//!   textbook semantics evaluated positionally on the lasso.

use crate::explicit::{eval_trans, holds, State};
use crate::expr::Expr;
use crate::property::Ltl;
use crate::system::{System, VarKind};
use crate::trace::Trace;

/// Why a trace failed replay. Rendered diagnostics name the violated
/// constraint and the step, so a rejected certificate is debuggable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The trace has no states.
    Empty,
    /// The trace's variable list does not match the system's.
    VarsMismatch {
        /// Variables the system declares, in order.
        expected: Vec<String>,
        /// Variables the trace carries.
        got: Vec<String>,
    },
    /// A state has the wrong number of values.
    BadStateWidth {
        /// Step index.
        step: usize,
        /// Declared variable count.
        expected: usize,
        /// Values present.
        got: usize,
    },
    /// The first state violates an `INIT` constraint.
    InitViolated {
        /// Pretty-printed constraint.
        constraint: String,
    },
    /// A state violates an `INVAR` constraint.
    InvarViolated {
        /// Step index.
        step: usize,
        /// Pretty-printed constraint.
        constraint: String,
    },
    /// A step violates a `TRANS` constraint.
    TransViolated {
        /// Index of the source state of the offending transition.
        step: usize,
        /// Pretty-printed constraint.
        constraint: String,
    },
    /// A frozen variable changed value.
    FrozenChanged {
        /// Index of the source state of the offending transition.
        step: usize,
        /// Variable name.
        var: String,
    },
    /// `loop_back` points outside the trace.
    BadLoopBack {
        /// The claimed loop-back index.
        loop_back: usize,
        /// Trace length.
        len: usize,
    },
    /// The last state differs from the loop-back state, so the claimed
    /// lasso does not describe an infinite path.
    LoopNotClosed {
        /// The claimed loop-back index.
        loop_back: usize,
    },
    /// A system fairness constraint never holds inside the loop, so the
    /// lasso is not a fair path and refutes nothing.
    FairnessUnmet {
        /// Pretty-printed constraint.
        constraint: String,
    },
    /// An LTL counterexample must be a lasso (an infinite word); this
    /// trace has no loop.
    NotLasso,
    /// The trace is a legal execution but does not refute the property.
    PropertyNotRefuted,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Empty => write!(f, "trace is empty"),
            ReplayError::VarsMismatch { expected, got } => write!(
                f,
                "trace variables {got:?} do not match system variables {expected:?}"
            ),
            ReplayError::BadStateWidth {
                step,
                expected,
                got,
            } => write!(
                f,
                "state {step} has {got} values, system declares {expected}"
            ),
            ReplayError::InitViolated { constraint } => {
                write!(f, "initial state violates INIT {constraint}")
            }
            ReplayError::InvarViolated { step, constraint } => {
                write!(f, "state {step} violates INVAR {constraint}")
            }
            ReplayError::TransViolated { step, constraint } => {
                write!(f, "step {step} -> {} violates TRANS {constraint}", step + 1)
            }
            ReplayError::FrozenChanged { step, var } => {
                write!(
                    f,
                    "frozen variable {var} changes at step {step} -> {}",
                    step + 1
                )
            }
            ReplayError::BadLoopBack { loop_back, len } => {
                write!(
                    f,
                    "loop_back {loop_back} out of range for {len}-state trace"
                )
            }
            ReplayError::LoopNotClosed { loop_back } => {
                write!(f, "last state does not equal loop-back state {loop_back}")
            }
            ReplayError::FairnessUnmet { constraint } => {
                write!(
                    f,
                    "fairness constraint {constraint} never holds in the loop"
                )
            }
            ReplayError::NotLasso => {
                write!(f, "liveness counterexample has no lasso loop")
            }
            ReplayError::PropertyNotRefuted => {
                write!(
                    f,
                    "trace is a legal execution but does not refute the property"
                )
            }
        }
    }
}

/// Validates that `trace` is a legal execution of `sys`: layout, `INIT`,
/// `INVAR`, `TRANS`, frozen variables, and — when the trace is a lasso —
/// loop closure and fairness of the loop.
pub fn check_trace(sys: &System, trace: &Trace) -> Result<(), ReplayError> {
    if trace.states.is_empty() {
        return Err(ReplayError::Empty);
    }
    let expected: Vec<String> = sys.var_ids().map(|v| sys.name_of(v).to_string()).collect();
    if trace.var_names != expected {
        return Err(ReplayError::VarsMismatch {
            expected,
            got: trace.var_names.clone(),
        });
    }
    let width = sys.num_vars();
    for (i, s) in trace.states.iter().enumerate() {
        if s.len() != width {
            return Err(ReplayError::BadStateWidth {
                step: i,
                expected: width,
                got: s.len(),
            });
        }
    }
    for init in sys.init() {
        if !holds(init, &trace.states[0]) {
            return Err(ReplayError::InitViolated {
                constraint: sys.pretty(init),
            });
        }
    }
    for (i, s) in trace.states.iter().enumerate() {
        for inv in sys.invar() {
            if !holds(inv, s) {
                return Err(ReplayError::InvarViolated {
                    step: i,
                    constraint: sys.pretty(inv),
                });
            }
        }
    }
    for (i, pair) in trace.states.windows(2).enumerate() {
        for tr in sys.trans() {
            if !eval_trans(tr, &pair[0], &pair[1]) {
                return Err(ReplayError::TransViolated {
                    step: i,
                    constraint: sys.pretty(tr),
                });
            }
        }
        for v in sys.var_ids() {
            if sys.decl(v).kind == VarKind::Frozen && pair[0][v.index()] != pair[1][v.index()] {
                return Err(ReplayError::FrozenChanged {
                    step: i,
                    var: sys.name_of(v).to_string(),
                });
            }
        }
    }
    if let Some(lb) = trace.loop_back {
        if lb >= trace.states.len() {
            return Err(ReplayError::BadLoopBack {
                loop_back: lb,
                len: trace.states.len(),
            });
        }
        let last = trace.states.last().expect("non-empty trace");
        if *last != trace.states[lb] {
            return Err(ReplayError::LoopNotClosed { loop_back: lb });
        }
        // States visited infinitely often: the loop body. (When the trace
        // is the degenerate `loop_back == len-1` self-closure, the loop
        // body is just that state.)
        let body = if lb < trace.states.len() - 1 {
            &trace.states[lb..trace.states.len() - 1]
        } else {
            &trace.states[lb..]
        };
        for fair in sys.fairness() {
            if !body.iter().any(|s| holds(fair, s)) {
                return Err(ReplayError::FairnessUnmet {
                    constraint: sys.pretty(fair),
                });
            }
        }
    }
    Ok(())
}

/// Validates an invariant counterexample: a legal execution whose final
/// state violates `p`.
pub fn check_invariant_trace(sys: &System, p: &Expr, trace: &Trace) -> Result<(), ReplayError> {
    check_trace(sys, trace)?;
    let last = trace.states.last().ok_or(ReplayError::Empty)?;
    if holds(p, last) {
        return Err(ReplayError::PropertyNotRefuted);
    }
    Ok(())
}

/// Validates an LTL counterexample: a legal fair lasso whose infinite
/// unrolling falsifies `phi` at position 0.
pub fn check_ltl_trace(sys: &System, phi: &Ltl, trace: &Trace) -> Result<(), ReplayError> {
    check_trace(sys, trace)?;
    let lb = trace.loop_back.ok_or(ReplayError::NotLasso)?;
    // Positions of the infinite word: drop the duplicated closing state.
    let n = trace.states.len() - 1;
    let (positions, lb) = if n == 0 || lb == trace.states.len() - 1 {
        // Degenerate self-loop closure: keep every state, loop on the last.
        (&trace.states[..], lb)
    } else {
        (&trace.states[..n], lb)
    };
    if eval_ltl_on_lasso(phi, positions, lb)[0] {
        return Err(ReplayError::PropertyNotRefuted);
    }
    Ok(())
}

/// Evaluates an LTL formula positionally on the lasso word
/// `s_0 … s_{lb} … s_{n-1} (s_{lb} … s_{n-1})^ω`, returning one truth
/// value per position. Until/eventually are least fixpoints and
/// release/always greatest fixpoints over the successor structure
/// `succ(i) = i+1` except `succ(n-1) = lb`; iteration to fixpoint from
/// the appropriate bound is exact on the finite position set.
pub fn eval_ltl_on_lasso(phi: &Ltl, states: &[State], lb: usize) -> Vec<bool> {
    let n = states.len();
    debug_assert!(lb < n);
    let succ = |i: usize| if i + 1 < n { i + 1 } else { lb };
    let fix = |a: &[bool], b: &[bool], union: bool, start: bool| -> Vec<bool> {
        // union=true:  least fixpoint of  v[i] = b[i] || (a[i] && v[succ(i)])  (Until)
        // union=false: greatest fixpoint of v[i] = b[i] && (a[i] || v[succ(i)]) (Release)
        let mut v = vec![start; n];
        loop {
            let mut changed = false;
            for i in (0..n).rev() {
                let nv = if union {
                    b[i] || (a[i] && v[succ(i)])
                } else {
                    b[i] && (a[i] || v[succ(i)])
                };
                if nv != v[i] {
                    v[i] = nv;
                    changed = true;
                }
            }
            if !changed {
                return v;
            }
        }
    };
    match phi {
        Ltl::Atom(e) => states.iter().map(|s| holds(e, s)).collect(),
        Ltl::Not(a) => eval_ltl_on_lasso(a, states, lb)
            .into_iter()
            .map(|v| !v)
            .collect(),
        Ltl::And(a, b) => {
            let (va, vb) = (
                eval_ltl_on_lasso(a, states, lb),
                eval_ltl_on_lasso(b, states, lb),
            );
            va.into_iter().zip(vb).map(|(x, y)| x && y).collect()
        }
        Ltl::Or(a, b) => {
            let (va, vb) = (
                eval_ltl_on_lasso(a, states, lb),
                eval_ltl_on_lasso(b, states, lb),
            );
            va.into_iter().zip(vb).map(|(x, y)| x || y).collect()
        }
        Ltl::X(a) => {
            let va = eval_ltl_on_lasso(a, states, lb);
            (0..n).map(|i| va[succ(i)]).collect()
        }
        Ltl::F(a) => {
            let va = eval_ltl_on_lasso(a, states, lb);
            fix(&vec![true; n], &va, true, false)
        }
        Ltl::G(a) => {
            let va = eval_ltl_on_lasso(a, states, lb);
            fix(&vec![false; n], &va, false, true)
        }
        Ltl::U(a, b) => {
            let (va, vb) = (
                eval_ltl_on_lasso(a, states, lb),
                eval_ltl_on_lasso(b, states, lb),
            );
            fix(&va, &vb, true, false)
        }
        Ltl::R(a, b) => {
            let (va, vb) = (
                eval_ltl_on_lasso(a, states, lb),
                eval_ltl_on_lasso(b, states, lb),
            );
            fix(&va, &vb, false, true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorts::Value;

    /// The 0..3 wrap-around counter used across the engine tests.
    fn counter() -> System {
        let mut sys = System::new("counter");
        let n = sys.int_var("n", 0, 3);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).lt(Expr::int(3)),
            Expr::var(n).add(Expr::int(1)),
            Expr::int(0),
        )));
        sys
    }

    fn int_states(vals: &[i64]) -> Vec<Vec<Value>> {
        vals.iter().map(|&v| vec![Value::Int(v)]).collect()
    }

    #[test]
    fn legal_prefix_accepted() {
        let sys = counter();
        let t = Trace::new(&sys, int_states(&[0, 1, 2, 3]), None);
        assert_eq!(check_trace(&sys, &t), Ok(()));
    }

    #[test]
    fn bad_init_rejected() {
        let sys = counter();
        let t = Trace::new(&sys, int_states(&[1, 2]), None);
        assert!(matches!(
            check_trace(&sys, &t),
            Err(ReplayError::InitViolated { .. })
        ));
    }

    #[test]
    fn bad_transition_rejected() {
        let sys = counter();
        let t = Trace::new(&sys, int_states(&[0, 2]), None);
        assert!(matches!(
            check_trace(&sys, &t),
            Err(ReplayError::TransViolated { step: 0, .. })
        ));
    }

    #[test]
    fn invar_violation_rejected() {
        let mut sys = counter();
        let n = sys.var_by_name("n").unwrap();
        sys.add_invar(Expr::var(n).le(Expr::int(2)));
        let t = Trace::new(&sys, int_states(&[0, 1, 2, 3]), None);
        assert!(matches!(
            check_trace(&sys, &t),
            Err(ReplayError::InvarViolated { step: 3, .. })
        ));
    }

    #[test]
    fn frozen_change_rejected() {
        use crate::sorts::Sort;
        let mut sys = System::new("frozen");
        sys.add_var("p", Sort::int(0, 3), VarKind::Frozen);
        let t = Trace {
            var_names: vec!["p".into()],
            states: int_states(&[1, 2]),
            loop_back: None,
        };
        assert!(matches!(
            check_trace(&sys, &t),
            Err(ReplayError::FrozenChanged { step: 0, .. })
        ));
    }

    #[test]
    fn unclosed_lasso_rejected() {
        let sys = counter();
        let t = Trace::new(&sys, int_states(&[0, 1, 2]), Some(0));
        assert!(matches!(
            check_trace(&sys, &t),
            Err(ReplayError::LoopNotClosed { loop_back: 0 })
        ));
        let bad = Trace::new(&sys, int_states(&[0, 1]), Some(5));
        assert!(matches!(
            check_trace(&sys, &bad),
            Err(ReplayError::BadLoopBack { .. })
        ));
    }

    #[test]
    fn unfair_lasso_rejected() {
        let mut sys = counter();
        let n = sys.var_by_name("n").unwrap();
        sys.add_fairness(Expr::var(n).eq(Expr::int(3)));
        let t = Trace {
            var_names: vec!["n".into()],
            states: int_states(&[0, 1, 2, 3, 0, 1, 2, 3, 0]),
            loop_back: Some(4),
        };
        assert_eq!(check_trace(&sys, &t), Ok(()));
        // A lasso that loops before reaching 3 is unfair — but the counter
        // forces progression, so test fairness via a free boolean system.
        let mut free = System::new("free");
        let b = free.bool_var("b");
        free.add_fairness(Expr::var(b));
        let tf = Trace {
            var_names: vec!["b".into()],
            states: vec![
                vec![Value::Bool(true)],
                vec![Value::Bool(false)],
                vec![Value::Bool(false)],
            ],
            loop_back: Some(1),
        };
        assert!(matches!(
            check_trace(&free, &tf),
            Err(ReplayError::FairnessUnmet { .. })
        ));
    }

    #[test]
    fn invariant_counterexample_must_end_in_violation() {
        let sys = counter();
        let n = sys.var_by_name("n").unwrap();
        let p = Expr::var(n).lt(Expr::int(3));
        let good = Trace::new(&sys, int_states(&[0, 1, 2, 3]), None);
        assert_eq!(check_invariant_trace(&sys, &p, &good), Ok(()));
        let short = Trace::new(&sys, int_states(&[0, 1, 2]), None);
        assert_eq!(
            check_invariant_trace(&sys, &p, &short),
            Err(ReplayError::PropertyNotRefuted)
        );
    }

    #[test]
    fn ltl_lasso_semantics() {
        let sys = counter();
        let n = sys.var_by_name("n").unwrap();
        let t = Trace::new(&sys, int_states(&[0, 1, 2, 3, 0]), Some(0));
        // G(n < 3) is falsified by the lasso (position 3 has n = 3).
        let g = Ltl::atom(Expr::var(n).lt(Expr::int(3))).always();
        assert_eq!(check_ltl_trace(&sys, &g, &t), Ok(()));
        // F(n = 3) holds on the lasso, so the trace refutes nothing.
        let f = Ltl::atom(Expr::var(n).eq(Expr::int(3))).eventually();
        assert_eq!(
            check_ltl_trace(&sys, &f, &t),
            Err(ReplayError::PropertyNotRefuted)
        );
        // A finite trace is no liveness counterexample.
        let finite = Trace::new(&sys, int_states(&[0, 1]), None);
        assert_eq!(
            check_ltl_trace(&sys, &g, &finite),
            Err(ReplayError::NotLasso)
        );
    }

    #[test]
    fn ltl_until_and_next_on_lasso() {
        let sys = counter();
        let n = sys.var_by_name("n").unwrap();
        let states = int_states(&[0, 1, 2, 3]);
        let lt3 = Ltl::atom(Expr::var(n).lt(Expr::int(3)));
        let is3 = Ltl::atom(Expr::var(n).eq(Expr::int(3)));
        // On the word 0 1 2 3 (loop to 0): (n<3) U (n=3) holds at 0.
        let vals = eval_ltl_on_lasso(&lt3.clone().until(is3.clone()), &states, 0);
        assert_eq!(vals, vec![true, true, true, true]);
        // X(n=3) holds exactly at position 2 (and at 3 only if succ(3)=0 had n=3).
        let vals = eval_ltl_on_lasso(&is3.clone().next(), &states, 0);
        assert_eq!(vals, vec![false, false, true, false]);
        // (n=3) R (n<3): release fails everywhere at 3 since n<3 is false there.
        let vals = eval_ltl_on_lasso(&is3.release(lt3), &states, 0);
        assert!(!vals[3]);
    }
}
