//! Bit-blasting circuits over an abstract Boolean algebra.
//!
//! The SAT unrolling encoder (here, producing [`Formula`]s) and the BDD
//! encoder (in `verdict-mc`, producing BDD nodes) need the same arithmetic
//! circuits: two's-complement adders, comparators, multiplexers, and
//! population counts. They are written once against [`BoolAlg`] and
//! instantiated per backend.

use verdict_logic::{Formula, Var};

/// An abstract Boolean algebra: the operations circuits need.
///
/// Implementations may allocate nodes (`&mut self`) — the `Formula` backend
/// is pure, the BDD backend hash-conses into its manager.
pub trait BoolAlg {
    /// The carrier type (a formula, a BDD node, …).
    type B: Clone;

    /// Constant true.
    fn tt(&mut self) -> Self::B;
    /// Constant false.
    fn ff(&mut self) -> Self::B;
    /// Negation.
    fn not(&mut self, a: &Self::B) -> Self::B;
    /// Conjunction.
    fn and(&mut self, a: &Self::B, b: &Self::B) -> Self::B;
    /// Disjunction.
    fn or(&mut self, a: &Self::B, b: &Self::B) -> Self::B;
    /// Exclusive or.
    fn xor(&mut self, a: &Self::B, b: &Self::B) -> Self::B;
    /// Equivalence.
    fn iff(&mut self, a: &Self::B, b: &Self::B) -> Self::B {
        let x = self.xor(a, b);
        self.not(&x)
    }
    /// If-then-else.
    fn ite(&mut self, c: &Self::B, t: &Self::B, e: &Self::B) -> Self::B {
        let ct = self.and(c, t);
        let nc = self.not(c);
        let ce = self.and(&nc, e);
        self.or(&ct, &ce)
    }
    /// Constant of a boolean.
    fn constant(&mut self, b: bool) -> Self::B {
        if b {
            self.tt()
        } else {
            self.ff()
        }
    }
}

/// The [`Formula`]-producing backend.
#[derive(Default)]
pub struct FormulaAlg;

impl FormulaAlg {
    /// A variable as a formula (helper mirroring BDD `var`).
    pub fn var(&mut self, v: Var) -> Formula {
        Formula::var(v)
    }
}

impl BoolAlg for FormulaAlg {
    type B = Formula;

    fn tt(&mut self) -> Formula {
        Formula::tt()
    }
    fn ff(&mut self) -> Formula {
        Formula::ff()
    }
    fn not(&mut self, a: &Formula) -> Formula {
        a.clone().not()
    }
    fn and(&mut self, a: &Formula, b: &Formula) -> Formula {
        a.clone().and(b.clone())
    }
    fn or(&mut self, a: &Formula, b: &Formula) -> Formula {
        a.clone().or(b.clone())
    }
    fn xor(&mut self, a: &Formula, b: &Formula) -> Formula {
        a.clone().xor(b.clone())
    }
    fn iff(&mut self, a: &Formula, b: &Formula) -> Formula {
        a.clone().iff(b.clone())
    }
    fn ite(&mut self, c: &Formula, t: &Formula, e: &Formula) -> Formula {
        Formula::ite(c.clone(), t.clone(), e.clone())
    }
}

/// A two's-complement signed bit-vector (LSB first). The most significant
/// bit is the sign. Widths grow as needed; operations never truncate, so
/// overflow cannot occur.
#[derive(Clone)]
pub struct Num<B> {
    /// Bits, least significant first; last bit is the sign.
    pub bits: Vec<B>,
}

impl<B: Clone> Num<B> {
    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }
}

/// Minimal two's-complement width for a constant.
fn const_width(v: i64) -> usize {
    // Need w such that -2^(w-1) <= v < 2^(w-1).
    let mut w = 1;
    while !(-(1i128 << (w - 1)) <= v as i128 && (v as i128) < (1i128 << (w - 1))) {
        w += 1;
    }
    w
}

/// Builds the constant `v`.
pub fn num_const<A: BoolAlg>(alg: &mut A, v: i64) -> Num<A::B> {
    let w = const_width(v);
    let bits = (0..w).map(|i| alg.constant(v >> i & 1 == 1)).collect();
    Num { bits }
}

/// Sign-extends to `width` (must be ≥ current width).
pub fn sext<A: BoolAlg>(alg: &mut A, n: &Num<A::B>, width: usize) -> Num<A::B> {
    let _ = alg;
    assert!(width >= n.width());
    let sign = n.bits.last().expect("nonempty bitvector").clone();
    let mut bits = n.bits.clone();
    while bits.len() < width {
        bits.push(sign.clone());
    }
    Num { bits }
}

/// Interprets an *unsigned* bit block as a non-negative number (appends a
/// zero sign bit).
pub fn from_unsigned<A: BoolAlg>(alg: &mut A, bits: &[A::B]) -> Num<A::B> {
    let mut bits: Vec<A::B> = bits.to_vec();
    bits.push(alg.ff());
    Num { bits }
}

/// Full adder over three bits: returns (sum, carry).
fn full_adder<A: BoolAlg>(alg: &mut A, a: &A::B, b: &A::B, c: &A::B) -> (A::B, A::B) {
    let ab = alg.xor(a, b);
    let sum = alg.xor(&ab, c);
    let ab_and = alg.and(a, b);
    let c_and = alg.and(&ab, c);
    let carry = alg.or(&ab_and, &c_and);
    (sum, carry)
}

/// Signed addition; result width = max + 1 (never overflows).
pub fn add<A: BoolAlg>(alg: &mut A, a: &Num<A::B>, b: &Num<A::B>) -> Num<A::B> {
    let w = a.width().max(b.width()) + 1;
    let a = sext(alg, a, w);
    let b = sext(alg, b, w);
    let mut carry = alg.ff();
    let mut bits = Vec::with_capacity(w);
    for i in 0..w {
        let (s, c) = full_adder(alg, &a.bits[i], &b.bits[i], &carry);
        bits.push(s);
        carry = c;
    }
    Num { bits }
}

/// Arithmetic negation; result width = width + 1.
pub fn neg<A: BoolAlg>(alg: &mut A, a: &Num<A::B>) -> Num<A::B> {
    // -a = ~a + 1, at one extra bit to cover -MIN.
    let w = a.width() + 1;
    let a = sext(alg, a, w);
    let mut carry = alg.tt();
    let mut bits = Vec::with_capacity(w);
    for i in 0..w {
        let na = alg.not(&a.bits[i]);
        let s = alg.xor(&na, &carry);
        carry = alg.and(&na, &carry);
        bits.push(s);
    }
    Num { bits }
}

/// Signed subtraction `a - b`.
pub fn sub<A: BoolAlg>(alg: &mut A, a: &Num<A::B>, b: &Num<A::B>) -> Num<A::B> {
    let nb = neg(alg, b);
    add(alg, a, &nb)
}

/// Multiplication by a constant via binary shift-and-add.
pub fn mul_const<A: BoolAlg>(alg: &mut A, a: &Num<A::B>, k: i64) -> Num<A::B> {
    if k == 0 {
        return num_const(alg, 0);
    }
    let negative = k < 0;
    let mut k = k.unsigned_abs();
    let mut acc: Option<Num<A::B>> = None;
    let mut shifted = a.clone();
    while k > 0 {
        if k & 1 == 1 {
            acc = Some(match acc {
                None => shifted.clone(),
                Some(acc) => add(alg, &acc, &shifted),
            });
        }
        k >>= 1;
        if k > 0 {
            // Shift left by one: prepend a zero bit.
            let mut bits = vec![alg.ff()];
            bits.extend(shifted.bits.iter().cloned());
            shifted = Num { bits };
        }
    }
    let acc = acc.expect("k != 0");
    if negative {
        neg(alg, &acc)
    } else {
        acc
    }
}

/// Equality.
pub fn eq<A: BoolAlg>(alg: &mut A, a: &Num<A::B>, b: &Num<A::B>) -> A::B {
    let w = a.width().max(b.width());
    let a = sext(alg, a, w);
    let b = sext(alg, b, w);
    let mut acc = alg.tt();
    for i in 0..w {
        let bit_eq = alg.iff(&a.bits[i], &b.bits[i]);
        acc = alg.and(&acc, &bit_eq);
    }
    acc
}

/// Signed `a < b`: the sign bit of `a - b`.
pub fn lt<A: BoolAlg>(alg: &mut A, a: &Num<A::B>, b: &Num<A::B>) -> A::B {
    let d = sub(alg, a, b);
    d.bits.last().expect("nonempty").clone()
}

/// Signed `a ≤ b` = `¬(b < a)`.
pub fn le<A: BoolAlg>(alg: &mut A, a: &Num<A::B>, b: &Num<A::B>) -> A::B {
    let gt = lt(alg, b, a);
    alg.not(&gt)
}

/// Bitwise multiplexer over numbers.
pub fn mux<A: BoolAlg>(alg: &mut A, c: &A::B, t: &Num<A::B>, e: &Num<A::B>) -> Num<A::B> {
    let w = t.width().max(e.width());
    let t = sext(alg, t, w);
    let e = sext(alg, e, w);
    let bits = (0..w).map(|i| alg.ite(c, &t.bits[i], &e.bits[i])).collect();
    Num { bits }
}

/// Population count: the number of true bits, as a non-negative number.
/// Balanced adder tree for O(n log n) circuit size.
pub fn count_true<A: BoolAlg>(alg: &mut A, flags: &[A::B]) -> Num<A::B> {
    if flags.is_empty() {
        return num_const(alg, 0);
    }
    let mut layer: Vec<Num<A::B>> = flags
        .iter()
        .map(|f| Num {
            bits: vec![f.clone(), alg.ff()],
        })
        .collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(add(alg, &a, &b)),
                None => next.push(a),
            }
        }
        layer = next;
    }
    layer.pop().expect("nonempty")
}

/// Equality of two raw unsigned bit blocks of equal width (used for enum
/// sorts, which have no arithmetic).
pub fn bits_eq<A: BoolAlg>(alg: &mut A, a: &[A::B], b: &[A::B]) -> A::B {
    assert_eq!(a.len(), b.len());
    let mut acc = alg.tt();
    for (x, y) in a.iter().zip(b) {
        let e = alg.iff(x, y);
        acc = alg.and(&acc, &e);
    }
    acc
}

/// Unsigned `value(bits) ≤ k` for a raw bit block — the domain constraint
/// for offset-encoded variables.
pub fn unsigned_le_const<A: BoolAlg>(alg: &mut A, bits: &[A::B], k: u64) -> A::B {
    if bits.len() >= 64 || k >= 1u64 << bits.len() {
        return alg.tt(); // every representable value fits
    }
    // LSB-to-MSB chain: le_{0..i} = (bit_i < k_i) | (bit_i == k_i) & le_{0..i-1}
    let mut acc = alg.tt();
    for (i, bit) in bits.iter().enumerate() {
        let kbit = k >> i & 1 == 1;
        if kbit {
            // bit=0 -> strictly smaller at this position: true regardless
            // of lower bits; bit=1 -> equal here, defer to lower bits.
            let nb = alg.not(bit);
            acc = alg.or(&nb, &acc);
        } else {
            // bit=1 -> strictly greater: false; bit=0 -> defer.
            let nb = alg.not(bit);
            acc = alg.and(&nb, &acc);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluate a Formula-backed Num under an assignment.
    fn num_value(n: &Num<Formula>, assign: &dyn Fn(Var) -> bool) -> i64 {
        let w = n.bits.len();
        let mut v: i64 = 0;
        for (i, b) in n.bits.iter().enumerate() {
            if b.eval(assign) {
                if i == w - 1 {
                    v -= 1 << i; // sign bit
                } else {
                    v += 1 << i;
                }
            }
        }
        v
    }

    fn constant_value(n: &Num<Formula>) -> i64 {
        num_value(n, &|_| unreachable!("constant circuit"))
    }

    #[test]
    fn constants_round_trip() {
        let mut alg = FormulaAlg;
        for v in [-17i64, -8, -1, 0, 1, 2, 7, 8, 100] {
            let n = num_const(&mut alg, v);
            assert_eq!(constant_value(&n), v, "const {v}");
        }
    }

    #[test]
    fn arithmetic_on_constants() {
        let mut alg = FormulaAlg;
        for a in [-9i64, -3, 0, 5, 12] {
            for b in [-7i64, -1, 0, 2, 11] {
                let na = num_const(&mut alg, a);
                let nb = num_const(&mut alg, b);
                let s = add(&mut alg, &na, &nb);
                assert_eq!(constant_value(&s), a + b, "{a}+{b}");
                let d = sub(&mut alg, &na, &nb);
                assert_eq!(constant_value(&d), a - b, "{a}-{b}");
                let l = lt(&mut alg, &na, &nb);
                assert_eq!(l.eval(&|_| false), a < b, "{a}<{b}");
                let e = eq(&mut alg, &na, &nb);
                assert_eq!(e.eval(&|_| false), a == b, "{a}=={b}");
                let le_ = le(&mut alg, &na, &nb);
                assert_eq!(le_.eval(&|_| false), a <= b, "{a}<={b}");
            }
        }
    }

    #[test]
    fn negation_and_scaling() {
        let mut alg = FormulaAlg;
        for a in [-9i64, -1, 0, 3, 8] {
            let na = num_const(&mut alg, a);
            let n = neg(&mut alg, &na);
            assert_eq!(constant_value(&n), -a);
            for k in [-5i64, -1, 0, 1, 3, 10] {
                let m = mul_const(&mut alg, &na, k);
                assert_eq!(constant_value(&m), a * k, "{a}*{k}");
            }
        }
    }

    #[test]
    fn symbolic_addition_exhaustive() {
        // Two 3-bit unsigned inputs (vars 0..3, 3..6) as numbers; check all
        // 64 assignments against integer addition.
        let mut alg = FormulaAlg;
        let a_bits: Vec<Formula> = (0..3).map(|i| Formula::var(Var(i))).collect();
        let b_bits: Vec<Formula> = (3..6).map(|i| Formula::var(Var(i))).collect();
        let a = from_unsigned(&mut alg, &a_bits);
        let b = from_unsigned(&mut alg, &b_bits);
        let s = add(&mut alg, &a, &b);
        for bits in 0u32..64 {
            let assign = move |v: Var| bits >> v.0 & 1 == 1;
            let av = (bits & 7) as i64;
            let bv = (bits >> 3 & 7) as i64;
            assert_eq!(num_value(&s, &assign), av + bv, "{av}+{bv}");
        }
    }

    #[test]
    fn count_true_matches_popcount() {
        let mut alg = FormulaAlg;
        for n in 0..=9usize {
            let flags: Vec<Formula> = (0..n as u32).map(|i| Formula::var(Var(i))).collect();
            let cnt = count_true(&mut alg, &flags);
            for bits in 0u32..1 << n {
                let assign = move |v: Var| bits >> v.0 & 1 == 1;
                assert_eq!(
                    num_value(&cnt, &assign),
                    bits.count_ones() as i64,
                    "n={n} bits={bits:b}"
                );
            }
        }
    }

    #[test]
    fn mux_selects() {
        let mut alg = FormulaAlg;
        let t = num_const(&mut alg, 5);
        let e = num_const(&mut alg, -3);
        let c = Formula::var(Var(0));
        let m = mux(&mut alg, &c, &t, &e);
        assert_eq!(num_value(&m, &|_| true), 5);
        assert_eq!(num_value(&m, &|_| false), -3);
    }

    #[test]
    fn unsigned_le_const_exhaustive() {
        let mut alg = FormulaAlg;
        let bits: Vec<Formula> = (0..4).map(|i| Formula::var(Var(i))).collect();
        for k in 0u64..=16 {
            let f = unsigned_le_const(&mut alg, &bits, k);
            for v in 0u32..16 {
                let assign = move |var: Var| v >> var.0 & 1 == 1;
                assert_eq!(f.eval(&assign), u64::from(v) <= k, "v={v} k={k}");
            }
        }
    }

    #[test]
    fn bits_eq_works() {
        let mut alg = FormulaAlg;
        let a: Vec<Formula> = (0..2).map(|i| Formula::var(Var(i))).collect();
        let b: Vec<Formula> = (2..4).map(|i| Formula::var(Var(i))).collect();
        let e = bits_eq(&mut alg, &a, &b);
        for bits in 0u32..16 {
            let assign = move |v: Var| bits >> v.0 & 1 == 1;
            let expect = (bits & 3) == (bits >> 2 & 3);
            assert_eq!(e.eval(&assign), expect);
        }
    }
}
