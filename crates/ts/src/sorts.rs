//! Sorts (types) and runtime values.

use std::fmt;
use std::sync::Arc;

use verdict_logic::Rational;

/// A named finite enumeration sort.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EnumSort {
    /// Sort name (for diagnostics and trace printing).
    pub name: String,
    /// Variant names; a value is an index into this list.
    pub variants: Vec<String>,
}

impl EnumSort {
    /// Builds an enum sort from variant names.
    pub fn new(name: &str, variants: &[&str]) -> Arc<EnumSort> {
        assert!(!variants.is_empty(), "enum sort needs at least one variant");
        Arc::new(EnumSort {
            name: name.to_string(),
            variants: variants.iter().map(|s| s.to_string()).collect(),
        })
    }

    /// Index of a variant by name.
    pub fn variant(&self, name: &str) -> Option<u32> {
        self.variants
            .iter()
            .position(|v| v == name)
            .map(|i| i as u32)
    }
}

/// The sort of a variable or expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Sort {
    /// Booleans.
    Bool,
    /// A finite enumeration.
    Enum(Arc<EnumSort>),
    /// Bounded integers in `lo..=hi` (inclusive).
    Int {
        /// Smallest representable value.
        lo: i64,
        /// Largest representable value.
        hi: i64,
    },
    /// Exact rationals (infinite domain; SMT engines only).
    Real,
}

impl Sort {
    /// Bounded integer sort `lo..=hi`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn int(lo: i64, hi: i64) -> Sort {
        assert!(lo <= hi, "empty integer range {lo}..={hi}");
        Sort::Int { lo, hi }
    }

    /// Number of values in a finite sort (`None` for `Real`).
    pub fn cardinality(&self) -> Option<u64> {
        match self {
            Sort::Bool => Some(2),
            Sort::Enum(e) => Some(e.variants.len() as u64),
            Sort::Int { lo, hi } => Some((hi - lo) as u64 + 1),
            Sort::Real => None,
        }
    }

    /// True iff the sort has finitely many values.
    pub fn is_finite(&self) -> bool {
        !matches!(self, Sort::Real)
    }

    /// Enumerates every value of a finite sort (panics on `Real`).
    pub fn values(&self) -> Vec<Value> {
        match self {
            Sort::Bool => vec![Value::Bool(false), Value::Bool(true)],
            Sort::Enum(e) => (0..e.variants.len() as u32)
                .map(|i| Value::Enum(e.clone(), i))
                .collect(),
            Sort::Int { lo, hi } => (*lo..=*hi).map(Value::Int).collect(),
            Sort::Real => panic!("cannot enumerate Real sort"),
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "bool"),
            Sort::Enum(e) => write!(f, "{}", e.name),
            Sort::Int { lo, hi } => write!(f, "int[{lo}..{hi}]"),
            Sort::Real => write!(f, "real"),
        }
    }
}

/// A runtime value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A bounded integer.
    Int(i64),
    /// An exact rational.
    Real(Rational),
    /// An enum variant (sort + variant index).
    Enum(Arc<EnumSort>, u32),
}

impl Value {
    /// The value's sort. Integer values report a singleton range; callers
    /// compare integer sorts by family, not exact range.
    pub fn sort_of(&self) -> Sort {
        match self {
            Value::Bool(_) => Sort::Bool,
            Value::Int(n) => Sort::Int { lo: *n, hi: *n },
            Value::Real(_) => Sort::Real,
            Value::Enum(e, _) => Sort::Enum(e.clone()),
        }
    }

    /// Extracts a boolean.
    ///
    /// # Panics
    /// Panics on non-boolean values (a type-checker bug upstream).
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected bool, got {other}"),
        }
    }

    /// Extracts an integer.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(n) => *n,
            other => panic!("expected int, got {other}"),
        }
    }

    /// Extracts a rational.
    pub fn as_real(&self) -> Rational {
        match self {
            Value::Real(r) => *r,
            other => panic!("expected real, got {other}"),
        }
    }

    /// Extracts an enum variant index.
    pub fn as_enum(&self) -> u32 {
        match self {
            Value::Enum(_, i) => *i,
            other => panic!("expected enum, got {other}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Enum(e, i) => write!(f, "{}", e.variants[*i as usize]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_sort_lookup() {
        let s = EnumSort::new("phase", &["idle", "updating", "down"]);
        assert_eq!(s.variant("updating"), Some(1));
        assert_eq!(s.variant("nope"), None);
    }

    #[test]
    fn cardinalities() {
        assert_eq!(Sort::Bool.cardinality(), Some(2));
        assert_eq!(Sort::int(-2, 5).cardinality(), Some(8));
        assert_eq!(Sort::Real.cardinality(), None);
        let e = Sort::Enum(EnumSort::new("e", &["a", "b", "c"]));
        assert_eq!(e.cardinality(), Some(3));
    }

    #[test]
    fn value_enumeration_ordered() {
        let vals = Sort::int(3, 6).values();
        assert_eq!(
            vals,
            vec![Value::Int(3), Value::Int(4), Value::Int(5), Value::Int(6)]
        );
        assert_eq!(Sort::Bool.values().len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty integer range")]
    fn bad_int_range() {
        let _ = Sort::int(2, 1);
    }

    #[test]
    fn display() {
        assert_eq!(Sort::int(0, 7).to_string(), "int[0..7]");
        let e = EnumSort::new("phase", &["idle", "busy"]);
        assert_eq!(Value::Enum(e, 1).to_string(), "busy");
        assert_eq!(Value::Real(Rational::new(1, 2)).to_string(), "1/2");
    }
}
