//! The cloud incident-report study behind the paper's Table 1.
//!
//! The paper reviewed every public incident report from Google Cloud
//! (2017–2019) and Amazon AWS (2011–2019) — 242 in total — and studied
//! the 53 with enough documented detail (42 Google, 11 AWS), labeling
//! each with the four key characteristics of §2: dynamic control,
//! nontrivial interactions, quantitative metrics, and cross-layer
//! effects. Table 1 reports the per-provider counts.
//!
//! **Provenance.** The paper publishes only the aggregates, not the
//! per-incident labels, and the raw reports live on provider status
//! pages. This crate therefore embeds a *reconstruction*: the two
//! incidents the paper describes in detail (Google tickets #19007 and
//! #18037) carry their documented labels verbatim; the remaining 51
//! entries are synthetic-but-plausible records (each flagged
//! `reconstructed: true`) whose flags are calibrated so every aggregate
//! equals the published Table 1 exactly. The reproducible artifact is
//! the dataset schema and the aggregation pipeline; see EXPERIMENTS.md.

mod table;

pub use table::INCIDENTS;

use std::fmt;

/// Cloud provider of an incident report.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Provider {
    /// Google Cloud status-page incidents, 2017–2019.
    GoogleCloud,
    /// Amazon AWS post-event summaries, 2011–2019.
    Aws,
}

/// A recurring control-loop interaction pattern behind the studied
/// incidents.
///
/// The paper's §2 argument is that the 53 incidents are not 53 distinct
/// failure modes: they reduce to a handful of interaction shapes
/// between control loops and the environment. This enum names the five
/// the scenario factory (`verdict-scenarios`) can generate checkable
/// models for; [`Incident::patterns`] labels each incident with the
/// patterns its root cause exhibits, and [`by_pattern`] inverts that
/// mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pattern {
    /// A rollout (or instance replacement) shrinks serving capacity
    /// while a load balancer concentrates traffic on the survivors.
    RolloutLb,
    /// Two reactive controllers (autoscaler, descheduler, weighted
    /// balancer) chase each other's output and never settle.
    AutoscalerDescheduler,
    /// A capacity loss (drain, failover, limiter cut) pushes survivors
    /// past their capacity, failing them in turn.
    CascadingFailover,
    /// A configuration change ships faster than its blast radius is
    /// observable, so a bad config is promoted fleet-wide.
    ConfigCanary,
    /// A partition (network, DNS, leadership) splits the system into
    /// sides that each believe they are authoritative.
    SplitBrain,
}

impl Pattern {
    /// All five patterns, in a stable order.
    pub const ALL: [Pattern; 5] = [
        Pattern::RolloutLb,
        Pattern::AutoscalerDescheduler,
        Pattern::CascadingFailover,
        Pattern::ConfigCanary,
        Pattern::SplitBrain,
    ];

    /// Stable kebab-case tag (CLI flags, JSON reports).
    pub fn tag(self) -> &'static str {
        match self {
            Pattern::RolloutLb => "rollout-lb",
            Pattern::AutoscalerDescheduler => "autoscaler-descheduler",
            Pattern::CascadingFailover => "cascading-failover",
            Pattern::ConfigCanary => "config-canary",
            Pattern::SplitBrain => "split-brain",
        }
    }

    /// Parses a tag produced by [`Pattern::tag`].
    pub fn from_tag(s: &str) -> Option<Pattern> {
        Pattern::ALL.into_iter().find(|p| p.tag() == s)
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One studied incident with its characteristic labels.
#[derive(Clone, Debug)]
pub struct Incident {
    /// Stable identifier (real ticket ids for the documented incidents).
    pub id: &'static str,
    /// Provider.
    pub provider: Provider,
    /// Year of the incident.
    pub year: u16,
    /// One-sentence root-cause summary.
    pub summary: &'static str,
    /// Involves continuously-running dynamic control (§2).
    pub dynamic_control: bool,
    /// Involves nontrivial interactions among components (§2).
    pub nontrivial_interactions: bool,
    /// Involves quantitative metrics like load or latency (§2).
    pub quantitative_metrics: bool,
    /// Spans multiple logical layers (§2).
    pub cross_layer: bool,
    /// True for entries reconstructed to match the published aggregates
    /// (false only for the incidents the paper documents individually).
    pub reconstructed: bool,
}

impl Incident {
    /// The interaction patterns this incident's root cause exhibits.
    ///
    /// The labels derive from the documented root-cause summary (the
    /// dataset's keying material — the reconstructed entries share the
    /// study's seventeen root-cause classes), so the scenario factory
    /// keys off a real API instead of re-deriving them from prose. An
    /// incident can exhibit several patterns: #19007 is a rollout *and*
    /// a partition *and* a cascade, which is the paper's point.
    pub fn patterns(&self) -> &'static [Pattern] {
        use Pattern::*;
        let s = self.summary;
        // The two documented incidents first (their summaries are
        // unique), then one arm per reconstructed root-cause class.
        if s.starts_with("Pub/Sub") {
            return &[RolloutLb, CascadingFailover, SplitBrain];
        }
        if s.starts_with("BigQuery") {
            return &[AutoscalerDescheduler, CascadingFailover];
        }
        if s.starts_with("software rollout restarted") {
            return &[RolloutLb, CascadingFailover];
        }
        if s.starts_with("provisioning automation") {
            return &[RolloutLb];
        }
        if s.starts_with("traffic-engineering shift") {
            return &[RolloutLb];
        }
        if s.starts_with("autoscaler scaled down") {
            return &[AutoscalerDescheduler];
        }
        if s.starts_with("load balancer weight oscillation") {
            return &[AutoscalerDescheduler];
        }
        if s.starts_with("maintenance drain") {
            return &[CascadingFailover];
        }
        if s.starts_with("capacity reduction") {
            return &[CascadingFailover];
        }
        if s.starts_with("failure detector timeout") {
            return &[CascadingFailover];
        }
        if s.starts_with("garbage-collection pressure") {
            return &[CascadingFailover];
        }
        if s.starts_with("replicated metadata store") {
            return &[CascadingFailover];
        }
        if s.starts_with("quota enforcement misconfigured") {
            return &[ConfigCanary, RolloutLb];
        }
        if s.starts_with("configuration push") {
            return &[ConfigCanary];
        }
        if s.starts_with("a rollback restored an old schema") {
            return &[ConfigCanary];
        }
        if s.starts_with("network partition") {
            return &[SplitBrain, CascadingFailover];
        }
        if s.starts_with("DNS/service-discovery change") {
            return &[SplitBrain, ConfigCanary];
        }
        if s.starts_with("leader re-election loop") {
            return &[SplitBrain];
        }
        &[]
    }
}

/// The incidents exhibiting `pattern`, in dataset order — the inverse
/// of [`Incident::patterns`]. The scenario factory uses this to stamp
/// each generated pattern's report with the real incident ids it
/// models.
pub fn by_pattern(pattern: Pattern) -> Vec<&'static Incident> {
    INCIDENTS
        .iter()
        .filter(|i| i.patterns().contains(&pattern))
        .collect()
}

/// One row of Table 1: a characteristic with per-provider counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table1Row {
    /// Characteristic name as printed in the paper.
    pub characteristic: &'static str,
    /// Count among the Google Cloud incidents.
    pub google: usize,
    /// Count among the AWS incidents.
    pub aws: usize,
    /// Count among all studied incidents.
    pub total: usize,
}

/// The aggregated study: Table 1 plus the population sizes.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// Number of Google Cloud incidents studied.
    pub google_studied: usize,
    /// Number of AWS incidents studied.
    pub aws_studied: usize,
    /// The four characteristic rows, in the paper's order.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Percentage (rounded to nearest) for a row's Google column.
    pub fn google_pct(&self, row: &Table1Row) -> u32 {
        pct(row.google, self.google_studied)
    }

    /// Percentage for a row's AWS column.
    pub fn aws_pct(&self, row: &Table1Row) -> u32 {
        pct(row.aws, self.aws_studied)
    }

    /// Percentage for a row's total column.
    pub fn total_pct(&self, row: &Table1Row) -> u32 {
        pct(row.total, self.google_studied + self.aws_studied)
    }
}

fn pct(part: usize, whole: usize) -> u32 {
    ((part as f64 / whole as f64) * 100.0).round() as u32
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<26} | {:^18} | {:^14} | {:^12}",
            "Characteristic", "Google Cloud", "Amazon AWS", "Total"
        )?;
        writeln!(f, "{:-<26}-+-{:-<18}-+-{:-<14}-+-{:-<12}", "", "", "", "")?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<26} | {:>8} ({:>3}%)   | {:>5} ({:>3}%)  | {:>4} ({:>3}%)",
                row.characteristic,
                row.google,
                self.google_pct(row),
                row.aws,
                self.aws_pct(row),
                row.total,
                self.total_pct(row),
            )?;
        }
        writeln!(
            f,
            "(studied: {} Google Cloud, {} AWS, {} total)",
            self.google_studied,
            self.aws_studied,
            self.google_studied + self.aws_studied
        )
    }
}

/// Aggregates the dataset into Table 1.
pub fn table1() -> Table1 {
    table1_of(INCIDENTS)
}

/// Aggregates an arbitrary incident slice (exposed for tests and for
/// studies over subsets, e.g. per-year slices).
pub fn table1_of(incidents: &[Incident]) -> Table1 {
    let google: Vec<&Incident> = incidents
        .iter()
        .filter(|i| i.provider == Provider::GoogleCloud)
        .collect();
    let aws: Vec<&Incident> = incidents
        .iter()
        .filter(|i| i.provider == Provider::Aws)
        .collect();
    let count = |xs: &[&Incident], f: fn(&Incident) -> bool| xs.iter().filter(|i| f(i)).count();
    type Characteristic = (&'static str, fn(&Incident) -> bool);
    let characteristics: [Characteristic; 4] = [
        ("Dynamic control", |i| i.dynamic_control),
        ("Nontrivial interactions", |i| i.nontrivial_interactions),
        ("Quantitative metrics", |i| i.quantitative_metrics),
        ("Cross-layer", |i| i.cross_layer),
    ];
    let rows = characteristics
        .into_iter()
        .map(|(name, f)| Table1Row {
            characteristic: name,
            google: count(&google, f),
            aws: count(&aws, f),
            total: count(&google, f) + count(&aws, f),
        })
        .collect();
    Table1 {
        google_studied: google.len(),
        aws_studied: aws.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_sizes_match_paper() {
        let t = table1();
        assert_eq!(t.google_studied, 42);
        assert_eq!(t.aws_studied, 11);
    }

    #[test]
    fn counts_match_table1_exactly() {
        let t = table1();
        let expect = [
            ("Dynamic control", 30, 8, 38),
            ("Nontrivial interactions", 12, 7, 19),
            ("Quantitative metrics", 20, 7, 27),
            ("Cross-layer", 21, 9, 30),
        ];
        for ((name, g, a, tot), row) in expect.into_iter().zip(&t.rows) {
            assert_eq!(row.characteristic, name);
            assert_eq!(row.google, g, "{name} google");
            assert_eq!(row.aws, a, "{name} aws");
            assert_eq!(row.total, tot, "{name} total");
        }
    }

    #[test]
    fn percentages_match_paper() {
        // Paper: 71/73/72, 29/64/36, 48/64/51, 50/82/56. All match under
        // round-to-nearest except the last total: 30/53 = 56.6% which
        // rounds to 57 — the paper prints 56 (floor). Documented in
        // EXPERIMENTS.md.
        let t = table1();
        let g: Vec<u32> = t.rows.iter().map(|r| t.google_pct(r)).collect();
        let a: Vec<u32> = t.rows.iter().map(|r| t.aws_pct(r)).collect();
        let tot: Vec<u32> = t.rows.iter().map(|r| t.total_pct(r)).collect();
        assert_eq!(g, vec![71, 29, 48, 50]);
        assert_eq!(a, vec![73, 64, 64, 82]);
        assert_eq!(tot, vec![72, 36, 51, 57]);
    }

    #[test]
    fn documented_incidents_are_not_reconstructed() {
        let real: Vec<&Incident> = INCIDENTS.iter().filter(|i| !i.reconstructed).collect();
        assert_eq!(real.len(), 2);
        let ids: Vec<&str> = real.iter().map(|i| i.id).collect();
        assert!(ids.contains(&"google-stackdriver-19007"));
        assert!(ids.contains(&"google-bigquery-18037"));
        // #19007 exhibits all four characteristics; #18037 all but
        // cross-layer — exactly as the paper describes.
        let i19007 = real.iter().find(|i| i.id.contains("19007")).unwrap();
        assert!(
            i19007.dynamic_control
                && i19007.nontrivial_interactions
                && i19007.quantitative_metrics
                && i19007.cross_layer
        );
        let i18037 = real.iter().find(|i| i.id.contains("18037")).unwrap();
        assert!(
            i18037.dynamic_control
                && i18037.nontrivial_interactions
                && i18037.quantitative_metrics
                && !i18037.cross_layer
        );
    }

    #[test]
    fn ids_unique_and_years_in_range() {
        let mut ids = std::collections::HashSet::new();
        for i in INCIDENTS {
            assert!(ids.insert(i.id), "duplicate id {}", i.id);
            match i.provider {
                Provider::GoogleCloud => {
                    assert!((2017..=2019).contains(&i.year), "{}", i.id)
                }
                Provider::Aws => assert!((2011..=2019).contains(&i.year), "{}", i.id),
            }
        }
    }

    #[test]
    fn aggregation_over_subsets() {
        let aws_only: Vec<Incident> = INCIDENTS
            .iter()
            .filter(|i| i.provider == Provider::Aws)
            .cloned()
            .collect();
        let t = table1_of(&aws_only);
        assert_eq!(t.google_studied, 0);
        assert_eq!(t.aws_studied, 11);
        assert_eq!(t.rows[0].total, 8);
    }

    #[test]
    fn every_incident_exhibits_a_pattern() {
        for i in INCIDENTS {
            assert!(
                !i.patterns().is_empty(),
                "incident {} ({}) has no pattern label",
                i.id,
                i.summary
            );
        }
    }

    #[test]
    fn every_pattern_has_incidents() {
        for p in Pattern::ALL {
            let hits = by_pattern(p);
            assert!(!hits.is_empty(), "pattern {p} maps to no incidents");
            // by_pattern inverts patterns().
            for i in &hits {
                assert!(i.patterns().contains(&p));
            }
        }
    }

    #[test]
    fn documented_incidents_carry_patterns() {
        // #19007: rollout + partition + retry-overload cascade, exactly
        // as the report reads.
        let i = INCIDENTS.iter().find(|i| i.id.contains("19007")).unwrap();
        for p in [
            Pattern::RolloutLb,
            Pattern::CascadingFailover,
            Pattern::SplitBrain,
        ] {
            assert!(i.patterns().contains(&p), "{p}");
        }
        // #18037: a limiter reacting to a misleading metric cut
        // capacity — the oscillation/cascade family.
        let i = INCIDENTS.iter().find(|i| i.id.contains("18037")).unwrap();
        assert!(i.patterns().contains(&Pattern::AutoscalerDescheduler));
    }

    #[test]
    fn pattern_tags_round_trip() {
        for p in Pattern::ALL {
            assert_eq!(Pattern::from_tag(p.tag()), Some(p));
            assert_eq!(p.to_string(), p.tag());
        }
        assert_eq!(Pattern::from_tag("nope"), None);
    }

    #[test]
    fn display_renders_all_rows() {
        let shown = table1().to_string();
        for name in [
            "Dynamic control",
            "Nontrivial interactions",
            "Quantitative metrics",
            "Cross-layer",
        ] {
            assert!(shown.contains(name), "{shown}");
        }
        assert!(shown.contains("42"), "{shown}");
    }
}
