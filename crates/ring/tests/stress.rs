//! Interleaving stress suite for the lock-free primitives.
//!
//! Gated behind `--features stress` (see check.sh's stress lane): these
//! tests run hundreds of thousands of operations under seeded
//! thread-shuffle perturbation — each thread draws its yield/spin
//! pattern from a `verdict_prng::Prng` seeded per test, so a failing
//! interleaving is reproducible by seed. Tier-1 `cargo test` skips them.
#![cfg(feature = "stress")]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use verdict_prng::Prng;
use verdict_ring::{ring, Doorbell, Published};

/// Seeded perturbation: sometimes spin, sometimes yield, sometimes run
/// straight through — shaking out orderings a bare loop never hits.
fn shuffle(rng: &mut Prng) {
    match rng.gen_index(8) {
        0 => std::thread::yield_now(),
        1 => {
            for _ in 0..rng.gen_index(64) {
                std::hint::spin_loop();
            }
        }
        2 => std::thread::sleep(Duration::from_micros(rng.gen_range_u64(0, 50))),
        _ => {}
    }
}

#[test]
fn spsc_handoff_preserves_every_item_in_order() {
    for seed in 0..4u64 {
        let (mut tx, mut rx) = ring::<u64>(8);
        let n: u64 = 30_000;
        let producer = std::thread::spawn(move || {
            let mut rng = Prng::seed_from_u64(seed);
            for i in 0..n {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => v = back,
                    }
                    std::thread::yield_now();
                }
                shuffle(&mut rng);
            }
        });
        let mut rng = Prng::seed_from_u64(seed ^ 0xdead_beef);
        let mut expect = 0u64;
        while expect < n {
            rx.drain(|v| {
                assert_eq!(v, expect, "out of order at seed {seed}");
                expect += 1;
            });
            shuffle(&mut rng);
        }
        producer.join().unwrap();
    }
}

#[test]
fn multi_producer_fan_in_loses_nothing() {
    // Fan-in is one ring per producer (that is the whole point of the
    // SPSC design); the consumer drains all rings round-robin.
    let producers = 4;
    let per_producer: u64 = 20_000;
    let mut txs = Vec::new();
    let mut rxs = Vec::new();
    for _ in 0..producers {
        let (tx, rx) = ring::<(usize, u64)>(16);
        txs.push(tx);
        rxs.push(rx);
    }
    let handles: Vec<_> = txs
        .into_iter()
        .enumerate()
        .map(|(id, mut tx)| {
            std::thread::spawn(move || {
                let mut rng = Prng::seed_from_u64(id as u64);
                for i in 0..per_producer {
                    let mut v = (id, i);
                    loop {
                        match tx.push(v) {
                            Ok(()) => break,
                            Err(back) => v = back,
                        }
                        std::thread::yield_now();
                    }
                    shuffle(&mut rng);
                }
            })
        })
        .collect();
    let mut next_expected = vec![0u64; producers];
    let mut total = 0u64;
    while total < producers as u64 * per_producer {
        let mut progressed = false;
        for rx in &mut rxs {
            let got = rx.drain(|(id, i)| {
                assert_eq!(i, next_expected[id], "per-producer FIFO broken");
                next_expected[id] += 1;
            });
            total += got as u64;
            progressed |= got > 0;
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(next_expected.iter().all(|&n| n == per_producer));
}

#[test]
fn full_and_empty_boundaries_under_contention() {
    // Capacity-2 ring: every push/pop brushes against a boundary.
    let (mut tx, mut rx) = ring::<u64>(2);
    let n: u64 = 60_000;
    let producer = std::thread::spawn(move || {
        let mut rng = Prng::seed_from_u64(7);
        let mut rejected = 0u64;
        for i in 0..n {
            let mut v = i;
            loop {
                match tx.push(v) {
                    Ok(()) => break,
                    Err(back) => {
                        v = back;
                        rejected += 1;
                        if rejected.is_multiple_of(1024) {
                            shuffle(&mut rng);
                        }
                    }
                }
            }
        }
        rejected
    });
    let mut expect = 0u64;
    while expect < n {
        if let Some(v) = rx.pop() {
            assert_eq!(v, expect);
            expect += 1;
        }
    }
    assert!(rx.pop().is_none(), "ring must end empty");
    let rejected = producer.join().unwrap();
    // The point of the test is that full-ring rejections actually
    // happened and nothing was lost or reordered across them.
    assert!(rejected > 0, "capacity-2 ring never filled?");
}

#[test]
fn reserve_commit_batches_are_atomic_under_interleaving() {
    // Producer publishes in variable-size reserve/commit batches; the
    // consumer must never observe a partial batch: items are tagged
    // (batch, index-in-batch) and every batch must arrive contiguously.
    for seed in 0..4u64 {
        let (mut tx, mut rx) = ring::<(u64, u64, u64)>(32); // (batch, idx, len)
        let batches: u64 = 8_000;
        let producer = std::thread::spawn(move || {
            let mut rng = Prng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
            for b in 0..batches {
                let want = 1 + rng.gen_index(8);
                loop {
                    let mut r = tx.reserve(want);
                    if r.capacity() < want {
                        drop(r); // zero written: publishes nothing
                        std::thread::yield_now();
                        continue;
                    }
                    for i in 0..want as u64 {
                        assert!(r.push((b, i, want as u64)));
                    }
                    r.commit();
                    break;
                }
                shuffle(&mut rng);
            }
        });
        let mut rng = Prng::seed_from_u64(seed ^ 0xabcd);
        let mut batch = 0u64;
        let mut idx = 0u64;
        while batch < batches {
            rx.drain(|(b, i, len)| {
                assert_eq!((b, i), (batch, idx), "partial/reordered batch");
                idx += 1;
                if idx == len {
                    batch += 1;
                    idx = 0;
                }
            });
            shuffle(&mut rng);
        }
        producer.join().unwrap();
    }
}

#[test]
fn doorbell_never_loses_the_last_wakeup() {
    // Producers publish a counter bump then ring; the consumer parks
    // between drains. If the parked/notified handshake had a lost-wakeup
    // window this deadlocks (the final bump arrives while the consumer
    // is deciding to park).
    let rounds = 2_000u64;
    let count = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let bell = Arc::new(Doorbell::new()); // consumer = this thread
    let mut workers = Vec::new();
    for w in 0..3u64 {
        let count = Arc::clone(&count);
        let bell = Arc::clone(&bell);
        workers.push(std::thread::spawn(move || {
            let mut rng = Prng::seed_from_u64(w);
            for _ in 0..rounds {
                count.fetch_add(1, Ordering::Release);
                bell.ring();
                shuffle(&mut rng);
            }
        }));
    }
    let target = 3 * rounds;
    while count.load(Ordering::Acquire) < target {
        // No timeout: a lost wakeup would hang here, not spin.
        bell.wait(Some(Duration::from_secs(30)), || {
            count.load(Ordering::Acquire) >= target
        });
    }
    done.store(true, Ordering::Release);
    for w in workers {
        w.join().unwrap();
    }
    let c = bell.counters();
    assert!(c.parks >= 1, "consumer never actually parked");
}

#[test]
fn published_snapshots_are_always_prefixes() {
    let store = Arc::new(Published::<u64>::new());
    let n = 10_000u64;
    let writer = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            let mut rng = Prng::seed_from_u64(42);
            for i in 0..n {
                store.publish(i);
                if rng.gen_index(16) == 0 {
                    std::thread::yield_now();
                }
            }
        })
    };
    let mut readers = Vec::new();
    for r in 0..3 {
        let store = Arc::clone(&store);
        readers.push(std::thread::spawn(move || {
            let mut reader = store.reader();
            let mut rng = Prng::seed_from_u64(r);
            let mut last_len = 0;
            loop {
                let snap = reader.read();
                assert!(snap.len() >= last_len, "snapshot went backwards");
                for (i, &v) in snap.iter().enumerate() {
                    assert_eq!(v, i as u64, "snapshot is not a prefix");
                }
                last_len = snap.len();
                if last_len == n as usize {
                    return reader.refreshes();
                }
                shuffle(&mut rng);
            }
        }));
    }
    writer.join().unwrap();
    for r in readers {
        let refreshes = r.join().unwrap();
        assert!(refreshes <= n, "more refreshes than publishes");
    }
}
