//! Per-worker heartbeat cells for supervision.
//!
//! A [`Heartbeat`] is a monotone counter a worker stamps from its hot
//! loop (budget polls, probe sites) and a watchdog samples from another
//! thread. Liveness is inferred from *change*: a supervisor snapshots
//! [`Heartbeat::count`] periodically and treats a counter that has not
//! moved for longer than its staleness window as a wedged worker. The
//! cell is cache-padded so a fleet of workers stamping their own cells
//! never false-share, and both sides use relaxed ordering — the
//! watchdog needs freshness on the order of milliseconds, not
//! synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::CachePadded;

/// A cache-padded monotone beat counter: one writer (the supervised
/// worker), any number of sampling readers (watchdogs, stats).
#[derive(Debug, Default)]
pub struct Heartbeat {
    beats: CachePadded<AtomicU64>,
}

impl Heartbeat {
    /// A fresh cell with zero beats.
    pub const fn new() -> Heartbeat {
        Heartbeat {
            beats: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Stamps one beat. Called from the worker's polling loop; a single
    /// relaxed `fetch_add`, safe to call millions of times per second.
    #[inline]
    pub fn beat(&self) {
        self.beats.fetch_add(1, Ordering::Relaxed);
    }

    /// Current beat count. Watchdogs compare successive snapshots; an
    /// unchanged count across a staleness window means the worker is not
    /// polling (hung solver, livelock, lost thread).
    #[inline]
    pub fn count(&self) -> u64 {
        self.beats.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_are_monotone() {
        let hb = Heartbeat::new();
        assert_eq!(hb.count(), 0);
        hb.beat();
        hb.beat();
        assert_eq!(hb.count(), 2);
    }

    #[test]
    fn cross_thread_visibility() {
        let hb = std::sync::Arc::new(Heartbeat::new());
        let h = {
            let hb = hb.clone();
            std::thread::spawn(move || {
                for _ in 0..1000 {
                    hb.beat();
                }
            })
        };
        h.join().unwrap();
        assert_eq!(hb.count(), 1000);
    }
}
