//! Park/unpark wakeup for a consumer draining many rings.
//!
//! The pre-PR-6 collectors slept in `recv_timeout(5ms)` loops — a 200 Hz
//! poll per collector whether or not anything happened. A [`Doorbell`]
//! inverts that: producers ring after publishing (a `swap` plus, at
//! most, one `unpark`), and the consumer parks until rung, with an
//! optional timeout only when it must also poll state that nobody rings
//! for (e.g. a caller-owned stop flag).
//!
//! The protocol is the standard three-state parking handshake:
//! the consumer publishes `PARKED`, *re-checks for work*, then parks;
//! a producer publishes its work, then swaps in `NOTIFIED` and unparks
//! if it displaced `PARKED`. The re-check after publishing `PARKED`
//! closes the lost-wakeup window, and a stale `NOTIFIED` token at worst
//! costs one spurious pass — which the doorbell counts, so the Stats
//! sink can prove the collector is not secretly spinning.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::thread::Thread;
use std::time::{Duration, Instant};

use crate::CachePadded;

const IDLE: usize = 0;
const PARKED: usize = 1;
const NOTIFIED: usize = 2;

/// Wakeup counters, read via [`Doorbell::counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DoorbellCounters {
    /// Times the consumer actually parked.
    pub parks: u64,
    /// Parks that ended because a producer rang.
    pub wakes: u64,
    /// Parks that ended with no ring and no work (OS-spurious returns
    /// and stale unpark tokens).
    pub spurious_wakeups: u64,
}

/// A single-consumer wakeup cell; any number of producers may ring it.
///
/// Construct it **on the consumer thread** ([`Doorbell::new`] captures
/// the current thread as the park target), share it via `Arc`, and only
/// ever call [`wait`](Doorbell::wait) from that thread.
#[derive(Debug)]
pub struct Doorbell {
    state: CachePadded<AtomicUsize>,
    owner: Thread,
    parks: AtomicU64,
    wakes: AtomicU64,
    spurious: AtomicU64,
}

impl Doorbell {
    /// Creates a doorbell whose `wait` parks the *calling* thread.
    pub fn new() -> Self {
        Doorbell {
            state: CachePadded::new(AtomicUsize::new(IDLE)),
            owner: std::thread::current(),
            parks: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
            spurious: AtomicU64::new(0),
        }
    }

    /// Rings the doorbell. Call *after* publishing work (the `Release`
    /// swap orders the publication before the consumer's wakeup).
    pub fn ring(&self) {
        if self.state.swap(NOTIFIED, Ordering::Release) == PARKED {
            self.owner.unpark();
        }
    }

    /// Parks until rung, `has_work()` turns true, or `timeout` expires.
    /// Returns `true` unless the timeout expired with no work; either
    /// way the caller should re-examine all its inputs.
    ///
    /// `has_work` is re-evaluated after the consumer advertises itself
    /// as parked, so a producer that published just before can never be
    /// missed.
    pub fn wait(&self, timeout: Option<Duration>, mut has_work: impl FnMut() -> bool) -> bool {
        debug_assert_eq!(
            std::thread::current().id(),
            self.owner.id(),
            "Doorbell::wait must run on the thread that built the doorbell"
        );
        if has_work() {
            // Consume any stale token so the next wait doesn't wake hot.
            self.state.store(IDLE, Ordering::Relaxed);
            return true;
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            self.state.store(PARKED, Ordering::Release);
            if has_work() {
                self.state.store(IDLE, Ordering::Relaxed);
                return true;
            }
            self.parks.fetch_add(1, Ordering::Relaxed);
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        self.state.store(IDLE, Ordering::Relaxed);
                        return has_work();
                    }
                    std::thread::park_timeout(d - now);
                }
                None => std::thread::park(),
            }
            let prev = self.state.swap(IDLE, Ordering::Acquire);
            if prev == NOTIFIED {
                self.wakes.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return has_work();
                }
            }
            // Woke with no ring and (checked next loop) maybe no work.
            self.spurious.fetch_add(1, Ordering::Relaxed);
            if has_work() {
                return true;
            }
        }
    }

    /// Snapshot of the wakeup counters.
    pub fn counters(&self) -> DoorbellCounters {
        DoorbellCounters {
            parks: self.parks.load(Ordering::Relaxed),
            wakes: self.wakes.load(Ordering::Relaxed),
            spurious_wakeups: self.spurious.load(Ordering::Relaxed),
        }
    }
}

impl Default for Doorbell {
    fn default() -> Self {
        Doorbell::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn ring_wakes_a_parked_waiter() {
        let bell = Arc::new(Doorbell::new());
        let flag = Arc::new(AtomicBool::new(false));
        let (b, f) = (Arc::clone(&bell), Arc::clone(&flag));
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            f.store(true, Ordering::Release);
            b.ring();
        });
        let woke = bell.wait(Some(Duration::from_secs(10)), || {
            flag.load(Ordering::Acquire)
        });
        assert!(woke);
        assert!(flag.load(Ordering::Acquire));
        producer.join().unwrap();
        assert!(bell.counters().parks >= 1);
    }

    #[test]
    fn ring_before_wait_is_not_lost() {
        let bell = Doorbell::new();
        bell.ring();
        // Work published before the wait: returns immediately.
        assert!(bell.wait(Some(Duration::from_secs(5)), || true));
        // Token from the pre-wait ring was consumed; a timed wait with
        // no work now actually times out.
        assert!(!bell.wait(Some(Duration::from_millis(10)), || false));
    }

    #[test]
    fn timeout_expires_without_ring() {
        let bell = Doorbell::new();
        let t0 = Instant::now();
        assert!(!bell.wait(Some(Duration::from_millis(25)), || false));
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }
}
