//! Bounded lock-free single-producer/single-consumer ring.
//!
//! The classic Lamport queue with two refinements from modern practice
//! (FastFlow / rigtorp-style):
//!
//! * **Cache-line discipline.** `head` (consumer-owned) and `tail`
//!   (producer-owned) live in separate 128-byte [`CachePadded`] cells,
//!   so a push never invalidates the consumer's line and vice versa.
//! * **Cached counters.** Each side keeps a local copy of the *other*
//!   side's counter and only re-reads the shared atomic when the cached
//!   value says the ring looks full/empty. In steady state a push is
//!   one write to the slot plus one `Release` store; a drain of `n`
//!   items is one `Acquire` load plus one `Release` store total.
//!
//! Counters are absolute (monotonically increasing) indices masked into
//! the power-of-two buffer; full is `tail - head == capacity`, empty is
//! `tail == head`, with no wasted slot and no wraparound ambiguity.
//!
//! This module is one of the two places the workspace's
//! `unsafe_code = "deny"` lint is overridden (the other is the CLI's
//! SIGINT handler). The unsafe core is small and local: slot cells are
//! `UnsafeCell<MaybeUninit<T>>`, written only by the producer between
//! `head` and publication, read only by the consumer after an `Acquire`
//! load of `tail` — each slot has exactly one owner at any moment, which
//! is exactly the invariant the safety comments argue.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::CachePadded;

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the ring hands out exactly one `Producer` and one `Consumer`;
// all slot access is mediated by the head/tail protocol below (a slot is
// touched by the producer only while `index >= head + capacity` is
// false and `index < tail`-to-be, and by the consumer only after an
// Acquire load of `tail` covers it), so `&Inner<T>` is safe to share
// across the two threads whenever `T` itself may move between threads.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for Inner<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access here (last Arc owner); drop the unread items.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        for i in head..tail {
            let slot = self.buf[i & self.mask].get();
            // SAFETY: slots in `head..tail` were initialized by the
            // producer and never read out by the consumer; `&mut self`
            // proves no other thread can touch them now.
            #[allow(unsafe_code)]
            unsafe {
                (*slot).assume_init_drop();
            }
        }
    }
}

/// Creates a bounded SPSC ring holding at least `capacity` items
/// (rounded up to a power of two, minimum 2). Returns the two endpoint
/// handles; each is `Send` but not `Clone` — exactly one thread owns
/// each side.
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        buf,
        mask: cap - 1,
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            tail: 0,
            cached_head: 0,
        },
        Consumer {
            inner,
            head: 0,
            cached_tail: 0,
        },
    )
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer")
            .field("capacity", &self.inner.buf.len())
            .field("tail", &self.tail)
            .finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("capacity", &self.inner.buf.len())
            .field("head", &self.head)
            .finish_non_exhaustive()
    }
}

/// The write side of a ring. Owned by exactly one thread at a time.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Local copy of the shared tail (this side is its only writer).
    tail: usize,
    /// Last observed consumer head; refreshed only when the ring looks
    /// full, so the common-case push never loads the consumer's line.
    cached_head: usize,
}

impl<T> Producer<T> {
    /// Total slots in the ring.
    pub fn capacity(&self) -> usize {
        self.inner.buf.len()
    }

    /// Slots currently free, from this side's (possibly stale) view.
    /// Refreshes the consumer counter first, so the answer is a lower
    /// bound that only another `push` can shrink.
    pub fn free(&mut self) -> usize {
        self.cached_head = self.inner.head.load(Ordering::Acquire);
        self.capacity() - (self.tail - self.cached_head)
    }

    /// Pushes one item; returns it back if the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        if self.tail - self.cached_head == self.capacity() {
            self.cached_head = self.inner.head.load(Ordering::Acquire);
            if self.tail - self.cached_head == self.capacity() {
                return Err(value);
            }
        }
        let slot = self.inner.buf[self.tail & self.inner.mask].get();
        // SAFETY: `tail - head < capacity`, so this slot is outside the
        // consumer's visible window (it reads only below the published
        // tail) and owned by the producer until the Release store below.
        #[allow(unsafe_code)]
        unsafe {
            (*slot).write(value);
        }
        self.tail += 1;
        self.inner.tail.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Reserves up to `want` slots for zero-copy batch publication:
    /// items are written directly into ring slots and become visible to
    /// the consumer all at once, with a single `Release` store, when the
    /// reservation is committed (or dropped). Returns a reservation of
    /// [`Reservation::capacity`] ≤ `want` slots (possibly 0).
    pub fn reserve(&mut self, want: usize) -> Reservation<'_, T> {
        let free = self.free();
        Reservation {
            len: want.min(free),
            written: 0,
            prod: self,
        }
    }
}

/// A block of reserved ring slots (see [`Producer::reserve`]). Write
/// with [`push`](Reservation::push); everything written becomes visible
/// atomically on [`commit`](Reservation::commit) or drop. Unused slots
/// are simply returned to the ring.
pub struct Reservation<'a, T> {
    prod: &'a mut Producer<T>,
    len: usize,
    written: usize,
}

impl<T> Reservation<'_, T> {
    /// Slots available in this reservation.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Writes the next item into its final slot (no staging copy).
    /// Returns `false`, dropping `value`, if the reservation is full.
    pub fn push(&mut self, value: T) -> bool {
        if self.written == self.len {
            return false;
        }
        let idx = self.prod.tail + self.written;
        let slot = self.prod.inner.buf[idx & self.prod.inner.mask].get();
        // SAFETY: `idx < tail + len ≤ head + capacity`, so the slot is
        // invisible to the consumer until the commit store and owned by
        // this reservation (producer is unique, reservation borrows it).
        #[allow(unsafe_code)]
        unsafe {
            (*slot).write(value);
        }
        self.written += 1;
        true
    }

    /// Publishes everything written so far. Equivalent to dropping the
    /// reservation; spelled out for call-site clarity.
    pub fn commit(self) {}
}

impl<T> Drop for Reservation<'_, T> {
    fn drop(&mut self) {
        if self.written > 0 {
            self.prod.tail += self.written;
            self.prod
                .inner
                .tail
                .store(self.prod.tail, Ordering::Release);
        }
    }
}

/// The read side of a ring. Owned by exactly one thread at a time.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Local copy of the shared head (this side is its only writer).
    head: usize,
    /// Last observed producer tail; refreshed when the ring looks empty.
    cached_tail: usize,
}

/// Publishes the consumer head on drop, so a panicking `drain` callback
/// cannot cause already-read items to be dropped twice by `Inner::drop`.
struct AdvanceGuard<'a, T> {
    cons: &'a mut Consumer<T>,
    head: usize,
}

impl<T> Drop for AdvanceGuard<'_, T> {
    fn drop(&mut self) {
        self.cons.head = self.head;
        self.cons.inner.head.store(self.head, Ordering::Release);
    }
}

impl<T> Consumer<T> {
    /// Pops one item, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.head == self.cached_tail {
            self.cached_tail = self.inner.tail.load(Ordering::Acquire);
            if self.head == self.cached_tail {
                return None;
            }
        }
        let slot = self.inner.buf[self.head & self.inner.mask].get();
        // SAFETY: `head < cached_tail` and the Acquire load of `tail`
        // synchronized with the producer's Release store, so the slot is
        // initialized and the producer will not touch it again until we
        // publish a head beyond it.
        #[allow(unsafe_code)]
        let value = unsafe { (*slot).assume_init_read() };
        self.head += 1;
        self.inner.head.store(self.head, Ordering::Release);
        Some(value)
    }

    /// Drains every item currently visible, calling `f` on each in FIFO
    /// order, with one `Acquire` load up front and one `Release` store
    /// at the end regardless of batch size. Returns the batch size.
    pub fn drain(&mut self, mut f: impl FnMut(T)) -> usize {
        self.cached_tail = self.inner.tail.load(Ordering::Acquire);
        let n = self.cached_tail - self.head;
        if n == 0 {
            return 0;
        }
        let mask = self.inner.mask;
        let inner = Arc::clone(&self.inner);
        let start = self.head;
        let mut guard = AdvanceGuard {
            cons: self,
            head: start,
        };
        for i in start..start + n {
            let slot = inner.buf[i & mask].get();
            // SAFETY: `i < cached_tail` per the Acquire load above; the
            // guard publishes `head` past this slot even if `f` panics,
            // so the item is read out exactly once.
            #[allow(unsafe_code)]
            let value = unsafe { (*slot).assume_init_read() };
            guard.head = i + 1;
            f(value);
        }
        drop(guard);
        n
    }

    /// True if no items are currently visible (refreshes the producer
    /// counter, so a `false` answer means `pop` will succeed).
    pub fn is_empty(&mut self) -> bool {
        if self.head != self.cached_tail {
            return false;
        }
        self.cached_tail = self.inner.tail.load(Ordering::Acquire);
        self.head == self.cached_tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_empty() {
        let (mut tx, mut rx) = ring::<u64>(4);
        assert!(rx.pop().is_none());
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "ring of 4 holds exactly 4");
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert!(rx.pop().is_none());
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut tx, mut rx) = ring::<usize>(2);
        for i in 0..1000 {
            tx.push(i).unwrap();
            assert_eq!(rx.pop(), Some(i));
        }
    }

    #[test]
    fn drain_is_batched_fifo() {
        let (mut tx, mut rx) = ring::<u32>(8);
        for i in 0..5 {
            tx.push(i).unwrap();
        }
        let mut got = Vec::new();
        assert_eq!(rx.drain(|v| got.push(v)), 5);
        assert_eq!(got, [0, 1, 2, 3, 4]);
        assert_eq!(rx.drain(|v| got.push(v)), 0);
    }

    #[test]
    fn reserve_commit_publishes_atomically() {
        let (mut tx, mut rx) = ring::<u32>(8);
        let mut r = tx.reserve(3);
        assert_eq!(r.capacity(), 3);
        assert!(r.push(10));
        assert!(r.push(11));
        // Not yet committed: consumer sees nothing.
        assert!(rx.pop().is_none());
        r.commit();
        assert_eq!(rx.pop(), Some(10));
        assert_eq!(rx.pop(), Some(11));
        assert!(rx.pop().is_none(), "unused reserved slot not published");
    }

    #[test]
    fn reserve_clamps_to_free_space() {
        let (mut tx, mut rx) = ring::<u32>(4);
        tx.push(0).unwrap();
        tx.push(1).unwrap();
        let mut r = tx.reserve(10);
        assert_eq!(r.capacity(), 2);
        assert!(r.push(2));
        assert!(r.push(3));
        assert!(!r.push(4), "over-reservation push refused");
        drop(r); // drop publishes, same as commit
        let mut got = Vec::new();
        rx.drain(|v| got.push(v));
        assert_eq!(got, [0, 1, 2, 3]);
    }

    #[test]
    fn unread_items_are_dropped_with_ring() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, mut rx) = ring::<D>(4);
        tx.push(D).unwrap();
        tx.push(D).unwrap();
        tx.push(D).unwrap();
        drop(rx.pop()); // one read out and dropped
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn two_thread_handoff() {
        let (mut tx, mut rx) = ring::<usize>(16);
        let n = 10_000;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expect = 0;
        while expect < n {
            rx.drain(|v| {
                assert_eq!(v, expect);
                expect += 1;
            });
            if expect < n {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }
}
