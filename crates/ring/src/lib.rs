//! Lock-free primitives for verdict's parallel runtime.
//!
//! Four building blocks, all allocation-free on their hot paths:
//!
//! * [`spsc`] — bounded single-producer/single-consumer rings with
//!   128-byte cache-aligned head/tail counters, batched consumption
//!   ([`spsc::Consumer::drain`]), and zero-copy batch publication
//!   ([`spsc::Producer::reserve`] / commit). Fan-in is built from one
//!   ring per producer, so no CAS loop ever runs: every counter has
//!   exactly one writer.
//! * [`doorbell`] — a park/unpark wakeup cell so a consumer draining
//!   several rings can sleep instead of polling `recv_timeout` in a
//!   loop, with counters for parks, wakes, and spurious wakeups.
//! * [`heartbeat`] — a cache-padded monotone beat counter a worker
//!   stamps from its polling loop and a watchdog samples to detect
//!   wedged threads by *absence of change*.
//! * [`published`] — an epoch-stamped append-only snapshot list: one
//!   atomic epoch read on the hot path, a lock taken only when a new
//!   version exists. Replaces `Mutex<Vec<T>>` stores that are read far
//!   more often than they are written.
//!
//! ```
//! let (mut tx, mut rx) = verdict_ring::spsc::ring::<u32>(8);
//! tx.push(1).unwrap();
//! tx.push(2).unwrap();
//! let mut got = Vec::new();
//! rx.drain(|v| got.push(v));
//! assert_eq!(got, [1, 2]);
//! ```

pub mod doorbell;
pub mod heartbeat;
pub mod published;
pub mod spsc;

pub use doorbell::{Doorbell, DoorbellCounters};
pub use heartbeat::Heartbeat;
pub use published::{Published, PublishedReader};
pub use spsc::{ring, Consumer, Producer};

/// Pads and aligns a value to 128 bytes — two 64-byte lines, covering
/// the adjacent-line prefetcher on x86 — so the producer- and
/// consumer-owned counters of a ring never share a cache line (no false
/// sharing between the two sides).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own pair of cache lines.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_two_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
    }
}
