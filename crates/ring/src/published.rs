//! Epoch-read snapshot list: append rarely, read constantly.
//!
//! The synthesis sweep's unsat-core pattern store was a
//! `Mutex<Vec<HoldsPattern>>` that every worker locked before *every*
//! check — a read-mostly structure paying a write-side price. A
//! [`Published<T>`] keeps the current version behind an `Arc` and stamps
//! every append with an epoch; a [`PublishedReader`] caches the `Arc`
//! and re-locks only when the epoch it last saw has moved on. The hot
//! read path is a single `Acquire` load.
//!
//! Readers may observe a snapshot a publish behind — callers use this
//! for caches (a missed pattern costs a redundant solver call, never a
//! wrong answer), which is why reads are allowed to be stale.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::CachePadded;

/// An append-only list whose readers see immutable snapshots.
#[derive(Debug)]
pub struct Published<T> {
    epoch: CachePadded<AtomicU64>,
    items: Mutex<Arc<Vec<T>>>,
}

impl<T> Published<T> {
    /// Creates an empty store.
    pub fn new() -> Self {
        Published {
            epoch: CachePadded::new(AtomicU64::new(0)),
            items: Mutex::new(Arc::new(Vec::new())),
        }
    }

    /// Appends `item`, making a new snapshot visible to readers.
    pub fn publish(&self, item: T)
    where
        T: Clone,
    {
        let mut guard = self.items.lock().unwrap_or_else(|e| e.into_inner());
        let mut next: Vec<T> = (**guard).clone();
        next.push(item);
        *guard = Arc::new(next);
        // Bump inside the lock so epochs and snapshots move together;
        // Release pairs with the reader's Acquire.
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The current snapshot (shared, immutable).
    pub fn snapshot(&self) -> Arc<Vec<T>> {
        Arc::clone(&self.items.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Items published so far.
    pub fn len(&self) -> usize {
        self.items.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True if nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A reader with its own snapshot cache.
    pub fn reader(self: &Arc<Self>) -> PublishedReader<T> {
        PublishedReader {
            src: Arc::clone(self),
            seen_epoch: 0,
            cached: Arc::new(Vec::new()),
            refreshes: 0,
        }
    }
}

impl<T> Default for Published<T> {
    fn default() -> Self {
        Published::new()
    }
}

/// Per-thread read handle for a [`Published`] store.
#[derive(Debug)]
pub struct PublishedReader<T> {
    src: Arc<Published<T>>,
    seen_epoch: u64,
    cached: Arc<Vec<T>>,
    refreshes: u64,
}

impl<T> PublishedReader<T> {
    /// The freshest snapshot this reader has seen. Locks only when the
    /// epoch advanced since the last call; otherwise a single atomic
    /// load.
    pub fn read(&mut self) -> &[T] {
        let epoch = self.src.epoch.load(Ordering::Acquire);
        if epoch != self.seen_epoch {
            self.cached = self.src.snapshot();
            self.seen_epoch = epoch;
            self.refreshes += 1;
        }
        &self.cached
    }

    /// Publishes through to the shared store.
    pub fn publish(&self, item: T)
    where
        T: Clone,
    {
        self.src.publish(item);
    }

    /// How many times `read` had to take the lock — a proxy for how
    /// cold the epoch cache is.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_cached_until_publish() {
        let store = Arc::new(Published::new());
        let mut reader = store.reader();
        assert!(reader.read().is_empty());
        assert_eq!(reader.refreshes(), 0, "empty epoch needs no refresh");
        store.publish(1u32);
        store.publish(2u32);
        assert_eq!(reader.read(), [1, 2]);
        assert_eq!(reader.refreshes(), 1, "two publishes, one refresh");
        assert_eq!(reader.read(), [1, 2]);
        assert_eq!(reader.refreshes(), 1, "no new epoch, no lock");
    }

    #[test]
    fn concurrent_publish_and_read() {
        let store = Arc::new(Published::<usize>::new());
        let writer_store = Arc::clone(&store);
        let writer = std::thread::spawn(move || {
            for i in 0..100 {
                writer_store.publish(i);
            }
        });
        let mut reader = store.reader();
        loop {
            let snap = reader.read();
            // Prefix property: snapshots are always 0..n in order.
            for (i, &v) in snap.iter().enumerate() {
                assert_eq!(v, i);
            }
            if snap.len() == 100 {
                break;
            }
            std::thread::yield_now();
        }
        writer.join().unwrap();
    }
}
