//! Differential testing of the DPLL(T)+simplex stack against an
//! independent Fourier–Motzkin elimination oracle on random conjunctions
//! of linear atoms, plus model soundness on arbitrary Boolean structure.

use verdict_logic::{Formula, Rational};
use verdict_prng::Prng;
use verdict_smt::{LinExpr, Rel, SmtResult, SmtSolver, TheoryVar};

/// A constraint `Σ coeffs·x ⋈ rhs` in dense form for the oracle.
#[derive(Clone, Debug)]
struct Constraint {
    coeffs: Vec<Rational>,
    rel: Rel,
    rhs: Rational,
}

/// Fourier–Motzkin satisfiability for conjunctions of {≤,<,≥,>} atoms.
fn fm_sat(mut cs: Vec<Constraint>, nvars: usize) -> bool {
    // Normalize everything to `expr ≤ rhs` or `expr < rhs`.
    for c in &mut cs {
        match c.rel {
            Rel::Le | Rel::Lt => {}
            Rel::Ge => {
                for k in &mut c.coeffs {
                    *k = -*k;
                }
                c.rhs = -c.rhs;
                c.rel = Rel::Le;
            }
            Rel::Gt => {
                for k in &mut c.coeffs {
                    *k = -*k;
                }
                c.rhs = -c.rhs;
                c.rel = Rel::Lt;
            }
        }
    }
    for v in 0..nvars {
        let (with_pos, mut rest): (Vec<_>, Vec<_>) =
            cs.into_iter().partition(|c| c.coeffs[v].is_positive());
        let (with_neg, others): (Vec<_>, Vec<_>) =
            rest.drain(..).partition(|c| c.coeffs[v].is_negative());
        let mut next = others;
        // Combine every (upper on v) with every (lower on v).
        for up in &with_pos {
            for lo in &with_neg {
                let a = up.coeffs[v];
                let b = -lo.coeffs[v];
                // up: a·v + e1 ≤/< r1  =>  v ≤/< (r1 - e1)/a
                // lo: -b·v + e2 ≤/< r2  =>  v ≥/> (e2 - r2)/b
                // combine: b·e1 + a·e2 ≤/< b·r1 + a·r2
                let mut coeffs = vec![Rational::ZERO; nvars];
                for (i, k) in coeffs.iter_mut().enumerate() {
                    *k = up.coeffs[i] * b + lo.coeffs[i] * a;
                }
                coeffs[v] = Rational::ZERO;
                let rhs = up.rhs * b + lo.rhs * a;
                let rel = if up.rel == Rel::Lt || lo.rel == Rel::Lt {
                    Rel::Lt
                } else {
                    Rel::Le
                };
                next.push(Constraint { coeffs, rel, rhs });
            }
        }
        cs = next;
    }
    // All variables eliminated: every constraint is ground `0 ⋈ rhs`.
    cs.iter().all(|c| {
        debug_assert!(c.coeffs.iter().all(|k| k.is_zero()));
        c.rel.eval(Rational::ZERO, c.rhs)
    })
}

fn random_constraint(rng: &mut Prng, nvars: usize) -> Constraint {
    let rel = match rng.gen_index(4) {
        0 => Rel::Le,
        1 => Rel::Lt,
        2 => Rel::Ge,
        _ => Rel::Gt,
    };
    let coeffs: Vec<Rational> = (0..nvars)
        .map(|_| Rational::integer(rng.gen_range_i64(-3, 3) as i128))
        .collect();
    Constraint {
        coeffs,
        rel,
        rhs: Rational::new(
            rng.gen_range_i64(-12, 12) as i128,
            rng.gen_range_i64(1, 3) as i128,
        ),
    }
}

#[test]
fn conjunctions_match_fourier_motzkin() {
    for seed in 0..250u64 {
        let mut rng = Prng::seed_from_u64(seed);
        let nvars = 1 + rng.gen_index(3);
        let natoms = 1 + rng.gen_index(8);
        let constraints: Vec<Constraint> = (0..natoms)
            .map(|_| random_constraint(&mut rng, nvars))
            .collect();

        let expected = fm_sat(constraints.clone(), nvars);

        let mut smt = SmtSolver::new();
        let vars: Vec<TheoryVar> = (0..nvars).map(|i| smt.real_var(&format!("x{i}"))).collect();
        let mut formulas = Vec::new();
        for c in &constraints {
            let mut e = LinExpr::zero();
            for (i, &k) in c.coeffs.iter().enumerate() {
                e = e + LinExpr::term(k, vars[i]);
            }
            formulas.push(smt.atom(e, c.rel, c.rhs));
        }
        smt.assert_formula(Formula::and_all(formulas));
        match smt.solve() {
            SmtResult::Sat(m) => {
                assert!(expected, "seed {seed}: SMT sat, FM unsat");
                // Model must actually satisfy every constraint.
                for (ci, c) in constraints.iter().enumerate() {
                    let lhs: Rational = c
                        .coeffs
                        .iter()
                        .enumerate()
                        .map(|(i, &k)| k * m.real_value(vars[i]))
                        .fold(Rational::ZERO, |a, b| a + b);
                    assert!(
                        c.rel.eval(lhs, c.rhs),
                        "seed {seed}: constraint {ci} violated: {lhs} {:?} {}",
                        c.rel,
                        c.rhs
                    );
                }
            }
            SmtResult::Unsat => assert!(!expected, "seed {seed}: SMT unsat, FM sat"),
            SmtResult::Unknown => panic!("seed {seed}: unexpected Unknown"),
        }
    }
}

#[test]
fn disjunctive_structure_soundness() {
    // Random CNF-ish structure over atoms: whenever SAT, the model must
    // satisfy the formula with atoms evaluated over the real model.
    for seed in 0..120u64 {
        let mut rng = Prng::seed_from_u64(seed.wrapping_mul(31));
        let nvars = 2usize;
        let mut smt = SmtSolver::new();
        let vars: Vec<TheoryVar> = (0..nvars).map(|i| smt.real_var(&format!("x{i}"))).collect();
        let mut clause_data = Vec::new();
        let nclauses = 1 + rng.gen_index(5);
        let mut clauses = Vec::new();
        for _ in 0..nclauses {
            let width = 1 + rng.gen_index(3);
            let mut lits = Vec::new();
            let mut data = Vec::new();
            for _ in 0..width {
                let c = random_constraint(&mut rng, nvars);
                let negate = rng.gen_percent(30);
                let mut e = LinExpr::zero();
                for (i, &k) in c.coeffs.iter().enumerate() {
                    e = e + LinExpr::term(k, vars[i]);
                }
                let atom = smt.atom(e, c.rel, c.rhs);
                lits.push(if negate { atom.not() } else { atom });
                data.push((c, negate));
            }
            clauses.push(Formula::or_all(lits));
            clause_data.push(data);
        }
        smt.assert_formula(Formula::and_all(clauses));
        if let SmtResult::Sat(m) = smt.solve() {
            for (ci, clause) in clause_data.iter().enumerate() {
                let ok = clause.iter().any(|(c, negate)| {
                    let lhs: Rational = c
                        .coeffs
                        .iter()
                        .enumerate()
                        .map(|(i, &k)| k * m.real_value(vars[i]))
                        .fold(Rational::ZERO, |a, b| a + b);
                    c.rel.eval(lhs, c.rhs) != *negate
                });
                assert!(ok, "seed {seed}: clause {ci} falsified by model");
            }
        }
    }
}
