//! Lazy SMT solving for quantifier-free linear real arithmetic (QF_LRA).
//!
//! The paper's second case study (load balancer + ECMP, §4.2) models input
//! traffic, link/server latency coefficients, and external traffic as
//! symbolic *real-valued parameters*, and checks a liveness property whose
//! counterexample is a lasso through real-valued states. Reproducing it
//! needs a solver for Boolean structure mixed with linear arithmetic over
//! the rationals — this crate.
//!
//! Architecture (classic lazy DPLL(T), Dutertre & de Moura, CAV'06):
//!
//! * [`LinExpr`] — linear expressions over [`TheoryVar`]s with exact
//!   [`verdict_logic::Rational`] coefficients.
//! * [`delta::DeltaRational`] — rationals extended with an infinitesimal
//!   `δ`, so strict bounds (`<`, `>`) reduce to weak bounds.
//! * [`simplex::Simplex`] — the general simplex with per-variable bounds,
//!   Bland-rule pivoting, and minimal conflict explanations.
//! * [`SmtSolver`] — maps linear atoms to SAT variables, Tseitin-encodes
//!   asserted formulas into the CDCL core from `verdict-sat`, and runs the
//!   simplex as a [`verdict_sat::TheoryHook`] final check; theory conflicts
//!   come back as blocking lemmas built from simplex explanations.
//!
//! ```
//! use verdict_logic::{Formula, Rational};
//! use verdict_smt::{LinExpr, Rel, SmtResult, SmtSolver};
//!
//! let mut smt = SmtSolver::new();
//! let x = smt.real_var("x");
//! let y = smt.real_var("y");
//! // x + y <= 2  and  x - y >= 1  and  y > 1/4  is unsatisfiable.
//! let a1 = smt.atom(LinExpr::var(x) + LinExpr::var(y), Rel::Le, Rational::integer(2));
//! let a2 = smt.atom(LinExpr::var(x) - LinExpr::var(y), Rel::Ge, Rational::integer(1));
//! let a3 = smt.atom(LinExpr::var(y), Rel::Gt, Rational::new(1, 4));
//! smt.assert_formula(Formula::and_all([a1.clone(), a2.clone(), a3.clone()]));
//! assert!(matches!(smt.solve(), SmtResult::Sat(_)));
//! // Tighten: y > 1/2 forces x >= 3/2 and x <= 3/2... add x + y >= 3 to break it.
//! let a4 = smt.atom(
//!     LinExpr::var(x) + LinExpr::var(y),
//!     Rel::Ge,
//!     Rational::integer(3),
//! );
//! smt.assert_formula(a4);
//! assert!(matches!(smt.solve(), SmtResult::Unsat));
//! ```

pub mod delta;
pub mod linexpr;
pub mod simplex;
pub mod solver;

pub use delta::DeltaRational;
pub use linexpr::{LinExpr, TheoryVar};
pub use simplex::{BoundKind, Simplex, SimplexResult};
pub use solver::{Rel, SmtModel, SmtResult, SmtSolver};
