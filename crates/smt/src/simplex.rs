//! The general simplex with bounds (Dutertre & de Moura, CAV'06).
//!
//! The solver maintains a tableau `basic = Σ coeff · nonbasic` plus
//! per-variable lower/upper bounds in Q(δ) ([`DeltaRational`]), and a
//! current valuation that always satisfies the tableau equations and all
//! *nonbasic* bounds. `check` restores basic-variable bounds by Bland-rule
//! pivoting or reports a minimal conflict.
//!
//! Every asserted bound carries a reason [`Lit`] (the SAT literal of the
//! atom it came from); conflicts are explained as sets of those literals,
//! which the DPLL(T) driver negates into blocking lemmas.

use std::collections::BTreeMap;
use std::fmt;

use verdict_logic::{Lit, Rational};

use crate::delta::DeltaRational;

/// Which side a bound constrains.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BoundKind {
    /// `var ≥ bound`.
    Lower,
    /// `var ≤ bound`.
    Upper,
}

/// Result of a [`Simplex::check`] call.
#[derive(Clone, Debug)]
pub enum SimplexResult {
    /// All bounds satisfiable; the internal valuation is a witness.
    Sat,
    /// Unsatisfiable. The payload lists the reason literals of a minimal
    /// inconsistent set of asserted bounds.
    Conflict(Vec<Lit>),
    /// An `i128` overflow occurred in tableau arithmetic. The valuation is
    /// no longer trustworthy; the caller must degrade to an unknown
    /// verdict ([`Simplex::overflowed`] stays raised).
    Overflow,
}

impl SimplexResult {
    /// True iff satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SimplexResult::Sat)
    }
}

#[derive(Clone)]
struct Bound {
    value: DeltaRational,
    reason: Lit,
}

/// A tableau row: `basic = Σ coeffs[v] · v` over nonbasic variables.
#[derive(Clone, Debug)]
struct Row {
    basic: usize,
    coeffs: BTreeMap<usize, Rational>,
}

/// The simplex state. Variables are dense `usize` indices; the caller
/// decides which are original theory variables and which are slacks
/// introduced via [`Simplex::add_slack`].
pub struct Simplex {
    num_vars: usize,
    rows: Vec<Row>,
    /// `row_of[v] = Some(i)` iff `v` is basic, defined by `rows[i]`.
    row_of: Vec<Option<usize>>,
    val: Vec<DeltaRational>,
    lower: Vec<Option<Bound>>,
    upper: Vec<Option<Bound>>,
    /// Pivot counter (diagnostics).
    pivots: u64,
    /// Nonbasic-variable bound flips (diagnostics).
    bound_flips: u64,
    /// Times tableau arithmetic overflowed and poisoned the valuation.
    poisonings: u64,
    /// Raised when tableau arithmetic overflowed `i128`; the valuation is
    /// then unreliable and `check` reports [`SimplexResult::Overflow`].
    poisoned: bool,
}

impl Default for Simplex {
    fn default() -> Self {
        Simplex::new()
    }
}

impl Simplex {
    /// An empty tableau.
    pub fn new() -> Simplex {
        Simplex {
            num_vars: 0,
            rows: Vec::new(),
            row_of: Vec::new(),
            val: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            pivots: 0,
            bound_flips: 0,
            poisonings: 0,
            poisoned: false,
        }
    }

    /// True once tableau arithmetic has overflowed `i128`. Results after
    /// that point are meaningless; callers degrade to an unknown verdict.
    pub fn overflowed(&self) -> bool {
        self.poisoned
    }

    /// Number of variables (original + slack).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Pivot operations performed so far.
    pub fn pivots(&self) -> u64 {
        self.pivots
    }

    /// Nonbasic-variable bound flips performed so far.
    pub fn bound_flips(&self) -> u64 {
        self.bound_flips
    }

    /// Times tableau arithmetic overflowed and poisoned the valuation.
    pub fn poisonings(&self) -> u64 {
        self.poisonings
    }

    /// Records an arithmetic overflow: raises the poison flag and counts it.
    fn poison(&mut self) {
        self.poisoned = true;
        self.poisonings += 1;
    }

    /// Adds a fresh unconstrained variable and returns its index.
    pub fn add_var(&mut self) -> usize {
        let v = self.num_vars;
        self.num_vars += 1;
        self.row_of.push(None);
        self.val.push(DeltaRational::ZERO);
        self.lower.push(None);
        self.upper.push(None);
        v
    }

    /// Adds a slack variable defined as `Σ coeff · var` and returns it.
    ///
    /// Definition variables may themselves be basic; their rows are
    /// substituted so the new row mentions only nonbasic variables.
    pub fn add_slack(&mut self, definition: &[(usize, Rational)]) -> usize {
        let s = self.add_var();
        let mut coeffs: BTreeMap<usize, Rational> = BTreeMap::new();
        let mut value = DeltaRational::ZERO;
        for &(v, c) in definition {
            assert!(v < s, "slack definition uses unknown variable");
            if c.is_zero() {
                continue;
            }
            match self.val[v].try_scale(c).and_then(|t| value.try_add(t)) {
                Some(next) => value = next,
                None => {
                    self.poison();
                    return s;
                }
            }
            if let Some(ri) = self.row_of[v] {
                // Substitute the basic variable's defining row.
                let row = self.rows[ri].coeffs.clone();
                for (&u, &cu) in &row {
                    let ok = c
                        .try_mul(cu)
                        .is_some_and(|ccu| add_coeff(&mut coeffs, u, ccu));
                    if !ok {
                        self.poison();
                        return s;
                    }
                }
            } else if !add_coeff(&mut coeffs, v, c) {
                self.poison();
                return s;
            }
        }
        self.val[s] = value;
        let row_index = self.rows.len();
        self.rows.push(Row { basic: s, coeffs });
        self.row_of[s] = Some(row_index);
        s
    }

    /// Clears every bound (tableau and valuation are kept). Used by the
    /// lazy DPLL(T) driver before re-asserting the atoms of a new Boolean
    /// model.
    pub fn reset_bounds(&mut self) {
        for b in &mut self.lower {
            *b = None;
        }
        for b in &mut self.upper {
            *b = None;
        }
    }

    /// Current valuation of a variable (in Q(δ)).
    pub fn value(&self, v: usize) -> DeltaRational {
        self.val[v]
    }

    /// Asserts `v ≥ bound` (kind = Lower) or `v ≤ bound` (kind = Upper).
    ///
    /// Returns a conflict explanation if the new bound contradicts the
    /// opposite bound already asserted.
    pub fn assert_bound(
        &mut self,
        v: usize,
        kind: BoundKind,
        bound: DeltaRational,
        reason: Lit,
    ) -> Result<(), Vec<Lit>> {
        match kind {
            BoundKind::Lower => {
                if let Some(u) = &self.upper[v] {
                    if bound > u.value {
                        return Err(vec![reason, u.reason]);
                    }
                }
                let stronger = match &self.lower[v] {
                    Some(l) => bound > l.value,
                    None => true,
                };
                if stronger {
                    self.lower[v] = Some(Bound {
                        value: bound,
                        reason,
                    });
                    if self.row_of[v].is_none() && self.val[v] < bound {
                        self.update_nonbasic(v, bound);
                    }
                }
            }
            BoundKind::Upper => {
                if let Some(l) = &self.lower[v] {
                    if bound < l.value {
                        return Err(vec![reason, l.reason]);
                    }
                }
                let stronger = match &self.upper[v] {
                    Some(u) => bound < u.value,
                    None => true,
                };
                if stronger {
                    self.upper[v] = Some(Bound {
                        value: bound,
                        reason,
                    });
                    if self.row_of[v].is_none() && self.val[v] > bound {
                        self.update_nonbasic(v, bound);
                    }
                }
            }
        }
        Ok(())
    }

    /// Sets a nonbasic variable's value, propagating to basic variables.
    /// On `i128` overflow the tableau is poisoned and the update aborted.
    fn update_nonbasic(&mut self, v: usize, to: DeltaRational) {
        self.bound_flips += 1;
        let Some(d) = to.try_sub(self.val[v]) else {
            self.poison();
            return;
        };
        for i in 0..self.rows.len() {
            if let Some(&c) = self.rows[i].coeffs.get(&v) {
                let basic = self.rows[i].basic;
                match d.try_scale(c).and_then(|t| self.val[basic].try_add(t)) {
                    Some(next) => self.val[basic] = next,
                    None => {
                        self.poison();
                        return;
                    }
                }
            }
        }
        self.val[v] = to;
    }

    /// Restores feasibility or reports a minimal conflict.
    pub fn check(&mut self) -> SimplexResult {
        // Fault-injection probe at site `smt.pivot`: `Overflow` poisons
        // the tableau exactly as a real i128 overflow would, `Panic`
        // kills the check. Free when no fault plan is armed.
        {
            use verdict_journal::fault;
            match fault::probe("smt.pivot") {
                Some(fault::FaultKind::Panic) => panic!("{} at smt.pivot", fault::PANIC_TAG),
                Some(fault::FaultKind::Overflow) => self.poison(),
                _ => {}
            }
        }
        loop {
            if self.poisoned {
                return SimplexResult::Overflow;
            }
            // Bland's rule: smallest violating basic variable.
            let violated = (0..self.num_vars).find(|&v| {
                self.row_of[v].is_some() && (self.below_lower(v) || self.above_upper(v))
            });
            let Some(xi) = violated else {
                return SimplexResult::Sat;
            };
            let ri = self.row_of[xi].expect("violated var is basic");
            if self.below_lower(xi) {
                let target = self.lower[xi].as_ref().expect("checked").value;
                // Need to increase xi: find nonbasic xj that can move it up.
                let coeffs = self.rows[ri].coeffs.clone();
                let candidate = coeffs.iter().find(|&(&xj, &a)| {
                    (a.is_positive() && self.can_increase(xj))
                        || (a.is_negative() && self.can_decrease(xj))
                });
                match candidate {
                    Some((&xj, _)) => self.pivot_and_update(ri, xi, xj, target),
                    None => {
                        // Conflict: xi stuck below its lower bound.
                        let mut expl = vec![self.lower[xi].as_ref().expect("checked").reason];
                        for (&xj, &a) in &coeffs {
                            if a.is_positive() {
                                expl.push(self.upper[xj].as_ref().expect("blocked").reason);
                            } else {
                                expl.push(self.lower[xj].as_ref().expect("blocked").reason);
                            }
                        }
                        dedup_lits(&mut expl);
                        return SimplexResult::Conflict(expl);
                    }
                }
            } else {
                let target = self.upper[xi].as_ref().expect("checked").value;
                // Need to decrease xi.
                let coeffs = self.rows[ri].coeffs.clone();
                let candidate = coeffs.iter().find(|&(&xj, &a)| {
                    (a.is_positive() && self.can_decrease(xj))
                        || (a.is_negative() && self.can_increase(xj))
                });
                match candidate {
                    Some((&xj, _)) => self.pivot_and_update(ri, xi, xj, target),
                    None => {
                        let mut expl = vec![self.upper[xi].as_ref().expect("checked").reason];
                        for (&xj, &a) in &coeffs {
                            if a.is_positive() {
                                expl.push(self.lower[xj].as_ref().expect("blocked").reason);
                            } else {
                                expl.push(self.upper[xj].as_ref().expect("blocked").reason);
                            }
                        }
                        dedup_lits(&mut expl);
                        return SimplexResult::Conflict(expl);
                    }
                }
            }
        }
    }

    fn below_lower(&self, v: usize) -> bool {
        matches!(&self.lower[v], Some(l) if self.val[v] < l.value)
    }

    fn above_upper(&self, v: usize) -> bool {
        matches!(&self.upper[v], Some(u) if self.val[v] > u.value)
    }

    fn can_increase(&self, v: usize) -> bool {
        match &self.upper[v] {
            Some(u) => self.val[v] < u.value,
            None => true,
        }
    }

    fn can_decrease(&self, v: usize) -> bool {
        match &self.lower[v] {
            Some(l) => self.val[v] > l.value,
            None => true,
        }
    }

    /// Pivots `xi` (basic, row `ri`) with `xj` (nonbasic) and sets
    /// `val[xi] = target`. On `i128` overflow the tableau is poisoned and
    /// the pivot aborted; `check` then reports [`SimplexResult::Overflow`].
    fn pivot_and_update(&mut self, ri: usize, xi: usize, xj: usize, target: DeltaRational) {
        self.pivots += 1;
        let a_ij = *self.rows[ri].coeffs.get(&xj).expect("pivot column in row");
        debug_assert!(!a_ij.is_zero());
        // Adjust values: xi jumps to target; xj absorbs the change.
        let theta = match target
            .try_sub(self.val[xi])
            .and_then(|d| d.try_scale(a_ij.recip()))
        {
            Some(t) => t,
            None => {
                self.poison();
                return;
            }
        };
        self.val[xi] = target;
        match self.val[xj].try_add(theta) {
            Some(next) => self.val[xj] = next,
            None => {
                self.poison();
                return;
            }
        }
        // Other basic variables move with xj.
        for k in 0..self.rows.len() {
            if k == ri {
                continue;
            }
            if let Some(&c) = self.rows[k].coeffs.get(&xj) {
                let basic = self.rows[k].basic;
                match theta.try_scale(c).and_then(|t| self.val[basic].try_add(t)) {
                    Some(next) => self.val[basic] = next,
                    None => {
                        self.poison();
                        return;
                    }
                }
            }
        }

        // Rewrite row ri to define xj:
        //   xi = Σ a_ik x_k  =>  xj = (1/a_ij)·xi - Σ_{k≠j} (a_ik/a_ij)·x_k
        let old = std::mem::take(&mut self.rows[ri].coeffs);
        let inv = a_ij.recip();
        let mut new_coeffs: BTreeMap<usize, Rational> = BTreeMap::new();
        new_coeffs.insert(xi, inv);
        for (&k, &a) in &old {
            if k != xj {
                match a.try_mul(inv) {
                    Some(ai) => {
                        new_coeffs.insert(k, -ai);
                    }
                    None => {
                        self.poison();
                        return;
                    }
                }
            }
        }
        self.rows[ri].basic = xj;
        self.rows[ri].coeffs = new_coeffs.clone();
        self.row_of[xi] = None;
        self.row_of[xj] = Some(ri);

        // Substitute xj out of every other row.
        for k in 0..self.rows.len() {
            if k == ri {
                continue;
            }
            if let Some(c) = self.rows[k].coeffs.remove(&xj) {
                for (&u, &cu) in &new_coeffs {
                    let ok = c
                        .try_mul(cu)
                        .is_some_and(|ccu| add_coeff(&mut self.rows[k].coeffs, u, ccu));
                    if !ok {
                        self.poison();
                        return;
                    }
                }
            }
        }
    }

    /// A concrete positive δ small enough that substituting it into the
    /// current valuation satisfies every asserted bound over the plain
    /// rationals. Only meaningful right after a `Sat` check.
    pub fn concrete_delta(&self) -> Rational {
        let mut best = Rational::ONE;
        let mut consider = |val: DeltaRational, bound: DeltaRational, is_lower: bool| {
            // lower: need val.real + val.delta·d ≥ bound.real + bound.delta·d
            let (dreal, ddelta) = if is_lower {
                (val.real - bound.real, val.delta - bound.delta)
            } else {
                (bound.real - val.real, bound.delta - val.delta)
            };
            if ddelta.is_negative() {
                // need d ≤ dreal / (-ddelta); dreal > 0 since bound holds.
                debug_assert!(dreal.is_positive());
                let limit = dreal / -ddelta;
                if limit < best {
                    best = limit;
                }
            }
        };
        for v in 0..self.num_vars {
            if let Some(l) = &self.lower[v] {
                consider(self.val[v], l.value, true);
            }
            if let Some(u) = &self.upper[v] {
                consider(self.val[v], u.value, false);
            }
        }
        // Stay strictly inside the feasible region.
        best * Rational::new(1, 2)
    }
}

/// Adds `c` to the coefficient of `v`. Returns `false` on `i128` overflow
/// (the map is left unchanged in that case).
fn add_coeff(map: &mut BTreeMap<usize, Rational>, v: usize, c: Rational) -> bool {
    if c.is_zero() {
        return true;
    }
    let entry = map.entry(v).or_insert(Rational::ZERO);
    match entry.try_add(c) {
        Some(sum) => {
            *entry = sum;
            if entry.is_zero() {
                map.remove(&v);
            }
            true
        }
        None => false,
    }
}

fn dedup_lits(lits: &mut Vec<Lit>) {
    lits.sort_unstable();
    lits.dedup();
}

impl fmt::Debug for Simplex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Simplex ({} vars, {} rows):",
            self.num_vars,
            self.rows.len()
        )?;
        for row in &self.rows {
            write!(f, "  x{} =", row.basic)?;
            for (&v, &c) in &row.coeffs {
                write!(f, " {c}·x{v}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_logic::Var;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn dr(n: i128, d: i128) -> DeltaRational {
        DeltaRational::from_rational(r(n, d))
    }

    fn lit(i: u32) -> Lit {
        Var(i).positive()
    }

    #[test]
    fn single_var_bounds() {
        let mut s = Simplex::new();
        let x = s.add_var();
        s.assert_bound(x, BoundKind::Lower, dr(1, 1), lit(0))
            .unwrap();
        s.assert_bound(x, BoundKind::Upper, dr(3, 1), lit(1))
            .unwrap();
        assert!(s.check().is_sat());
        let v = s.value(x);
        assert!(v >= dr(1, 1) && v <= dr(3, 1));
        // Contradictory upper bound reported eagerly with both reasons.
        let err = s
            .assert_bound(x, BoundKind::Upper, dr(0, 1), lit(2))
            .unwrap_err();
        assert!(err.contains(&lit(0)) && err.contains(&lit(2)));
    }

    #[test]
    fn two_var_system_sat() {
        // x + y <= 2, x - y >= 1  =>  satisfiable (e.g. x=3/2, y=1/4).
        let mut s = Simplex::new();
        let x = s.add_var();
        let y = s.add_var();
        let s1 = s.add_slack(&[(x, r(1, 1)), (y, r(1, 1))]);
        let s2 = s.add_slack(&[(x, r(1, 1)), (y, r(-1, 1))]);
        s.assert_bound(s1, BoundKind::Upper, dr(2, 1), lit(0))
            .unwrap();
        s.assert_bound(s2, BoundKind::Lower, dr(1, 1), lit(1))
            .unwrap();
        assert!(s.check().is_sat());
        let (vx, vy) = (s.value(x), s.value(y));
        assert!(vx + vy <= dr(2, 1));
        assert!(vx - vy >= dr(1, 1));
    }

    #[test]
    fn two_var_system_unsat_with_explanation() {
        // x + y <= 2  and  x + y >= 3 via two slacks on the same form.
        let mut s = Simplex::new();
        let x = s.add_var();
        let y = s.add_var();
        let sum = s.add_slack(&[(x, r(1, 1)), (y, r(1, 1))]);
        s.assert_bound(sum, BoundKind::Upper, dr(2, 1), lit(0))
            .unwrap();
        let err = s
            .assert_bound(sum, BoundKind::Lower, dr(3, 1), lit(1))
            .unwrap_err();
        assert_eq!(err.len(), 2);
    }

    #[test]
    fn chained_conflict_through_rows() {
        // x <= 1, y <= 1, x + y >= 3  is unsat, discovered by check().
        let mut s = Simplex::new();
        let x = s.add_var();
        let y = s.add_var();
        let sum = s.add_slack(&[(x, r(1, 1)), (y, r(1, 1))]);
        s.assert_bound(x, BoundKind::Upper, dr(1, 1), lit(0))
            .unwrap();
        s.assert_bound(y, BoundKind::Upper, dr(1, 1), lit(1))
            .unwrap();
        s.assert_bound(sum, BoundKind::Lower, dr(3, 1), lit(2))
            .unwrap();
        match s.check() {
            SimplexResult::Conflict(expl) => {
                assert_eq!(expl.len(), 3, "explanation: {expl:?}");
            }
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn strict_bounds_via_delta() {
        // x < 1 and x > 1 is unsat; x < 1 and x > 0 is sat.
        let mut s = Simplex::new();
        let x = s.add_var();
        s.assert_bound(
            x,
            BoundKind::Upper,
            DeltaRational::just_below(r(1, 1)),
            lit(0),
        )
        .unwrap();
        let err = s.assert_bound(
            x,
            BoundKind::Lower,
            DeltaRational::just_above(r(1, 1)),
            lit(1),
        );
        assert!(err.is_err());

        let mut s = Simplex::new();
        let x = s.add_var();
        s.assert_bound(
            x,
            BoundKind::Upper,
            DeltaRational::just_below(r(1, 1)),
            lit(0),
        )
        .unwrap();
        s.assert_bound(
            x,
            BoundKind::Lower,
            DeltaRational::just_above(r(0, 1)),
            lit(1),
        )
        .unwrap();
        assert!(s.check().is_sat());
        let d = s.concrete_delta();
        assert!(d.is_positive());
        let concrete = s.value(x).at(d);
        assert!(concrete > r(0, 1) && concrete < r(1, 1));
    }

    #[test]
    fn equality_via_two_bounds() {
        // x + 2y = 4  and  x = 2  =>  y = 1.
        let mut s = Simplex::new();
        let x = s.add_var();
        let y = s.add_var();
        let form = s.add_slack(&[(x, r(1, 1)), (y, r(2, 1))]);
        s.assert_bound(form, BoundKind::Lower, dr(4, 1), lit(0))
            .unwrap();
        s.assert_bound(form, BoundKind::Upper, dr(4, 1), lit(1))
            .unwrap();
        s.assert_bound(x, BoundKind::Lower, dr(2, 1), lit(2))
            .unwrap();
        s.assert_bound(x, BoundKind::Upper, dr(2, 1), lit(3))
            .unwrap();
        assert!(s.check().is_sat());
        assert_eq!(s.value(y), dr(1, 1));
    }

    #[test]
    fn reset_bounds_allows_reuse() {
        let mut s = Simplex::new();
        let x = s.add_var();
        s.assert_bound(x, BoundKind::Lower, dr(5, 1), lit(0))
            .unwrap();
        s.assert_bound(x, BoundKind::Upper, dr(5, 1), lit(1))
            .unwrap();
        assert!(s.check().is_sat());
        s.reset_bounds();
        s.assert_bound(x, BoundKind::Upper, dr(0, 1), lit(2))
            .unwrap();
        assert!(s.check().is_sat());
        assert!(s.value(x) <= dr(0, 1));
    }

    #[test]
    fn slack_over_basic_definition() {
        // Create s1 = x + y, make it basic-feasible, then define s2 = s1 - y
        // (definition referencing a basic var) and constrain s2 = x.
        let mut s = Simplex::new();
        let x = s.add_var();
        let y = s.add_var();
        let s1 = s.add_slack(&[(x, r(1, 1)), (y, r(1, 1))]);
        let s2 = s.add_slack(&[(s1, r(1, 1)), (y, r(-1, 1))]);
        // s2 == x structurally: constrain x=7 and s2=7 must be consistent.
        s.assert_bound(x, BoundKind::Lower, dr(7, 1), lit(0))
            .unwrap();
        s.assert_bound(x, BoundKind::Upper, dr(7, 1), lit(1))
            .unwrap();
        s.assert_bound(s2, BoundKind::Lower, dr(7, 1), lit(2))
            .unwrap();
        s.assert_bound(s2, BoundKind::Upper, dr(7, 1), lit(3))
            .unwrap();
        assert!(s.check().is_sat());
        // And s2 = 8 must conflict.
        s.reset_bounds();
        s.assert_bound(x, BoundKind::Lower, dr(7, 1), lit(0))
            .unwrap();
        s.assert_bound(x, BoundKind::Upper, dr(7, 1), lit(1))
            .unwrap();
        s.assert_bound(s2, BoundKind::Lower, dr(8, 1), lit(2))
            .unwrap();
        assert!(!s.check().is_sat());
    }

    #[test]
    fn overflow_poisons_instead_of_panicking() {
        let mut s = Simplex::new();
        let x = s.add_var();
        let big = Rational::integer(i128::MAX / 2);
        let _slack = s.add_slack(&[(x, big)]);
        // Raising x to 3 would set the slack to 3·(i128::MAX/2): overflow.
        s.assert_bound(x, BoundKind::Lower, dr(3, 1), lit(0))
            .unwrap();
        assert!(s.overflowed());
        assert!(matches!(s.check(), SimplexResult::Overflow));
    }

    #[test]
    fn degenerate_zero_coefficient_definition() {
        let mut s = Simplex::new();
        let x = s.add_var();
        let z = s.add_slack(&[(x, r(0, 1))]);
        // z is identically zero.
        s.assert_bound(z, BoundKind::Lower, dr(1, 1), lit(0))
            .unwrap();
        assert!(!s.check().is_sat());
    }
}
