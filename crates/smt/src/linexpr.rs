//! Linear expressions over theory variables.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use verdict_logic::Rational;

/// A real-valued theory variable, identified by a dense index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TheoryVar(pub u32);

impl TheoryVar {
    /// The variable's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TheoryVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A linear expression `Σ cᵢ·xᵢ + constant` with exact coefficients.
///
/// Stored sparsely; zero coefficients are never kept. Construction via
/// operators keeps encoders readable:
///
/// ```
/// use verdict_logic::Rational;
/// use verdict_smt::{LinExpr, TheoryVar};
/// let x = TheoryVar(0);
/// let y = TheoryVar(1);
/// let e = LinExpr::var(x) * Rational::integer(2) + LinExpr::var(y)
///     - LinExpr::constant(Rational::ONE);
/// assert_eq!(e.coeff(x), Rational::integer(2));
/// assert_eq!(e.constant_term(), Rational::integer(-1));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    terms: BTreeMap<TheoryVar, Rational>,
    constant: Rational,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A single variable with coefficient 1.
    pub fn var(v: TheoryVar) -> LinExpr {
        let mut terms = BTreeMap::new();
        terms.insert(v, Rational::ONE);
        LinExpr {
            terms,
            constant: Rational::ZERO,
        }
    }

    /// A constant expression.
    pub fn constant(c: Rational) -> LinExpr {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// `coeff · v`.
    pub fn term(coeff: Rational, v: TheoryVar) -> LinExpr {
        LinExpr::var(v) * coeff
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: TheoryVar) -> Rational {
        self.terms.get(&v).copied().unwrap_or(Rational::ZERO)
    }

    /// The constant term.
    pub fn constant_term(&self) -> Rational {
        self.constant
    }

    /// Iterates `(variable, coefficient)` pairs in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (TheoryVar, Rational)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// True iff there are no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of variable terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Evaluates under an assignment.
    pub fn eval(&self, assignment: &dyn Fn(TheoryVar) -> Rational) -> Rational {
        let mut acc = self.constant;
        for (&v, &c) in &self.terms {
            acc += c * assignment(v);
        }
        acc
    }

    /// Adds `coeff · v` in place.
    pub fn add_term(&mut self, coeff: Rational, v: TheoryVar) {
        if coeff.is_zero() {
            return;
        }
        let entry = self.terms.entry(v).or_insert(Rational::ZERO);
        *entry += coeff;
        if entry.is_zero() {
            self.terms.remove(&v);
        }
    }

    /// Sum of a sequence of expressions.
    pub fn sum<I: IntoIterator<Item = LinExpr>>(items: I) -> LinExpr {
        let mut acc = LinExpr::zero();
        for e in items {
            acc = acc + e;
        }
        acc
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            self.add_term(c, v);
        }
        self.constant += rhs.constant;
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<Rational> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: Rational) -> LinExpr {
        if k.is_zero() {
            return LinExpr::zero();
        }
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self.constant *= k;
        self
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (&v, &c) in &self.terms {
            if first {
                if c == Rational::ONE {
                    write!(f, "{v:?}")?;
                } else {
                    write!(f, "{c}·{v:?}")?;
                }
                first = false;
            } else if c.is_negative() {
                write!(f, " - {}·{v:?}", -c)?;
            } else {
                write!(f, " + {c}·{v:?}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if !self.constant.is_zero() {
            if self.constant.is_negative() {
                write!(f, " - {}", -self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rational {
        Rational::integer(n)
    }

    #[test]
    fn builders_and_accessors() {
        let x = TheoryVar(0);
        let y = TheoryVar(1);
        let e = LinExpr::term(r(3), x) + LinExpr::term(r(-1), y) + LinExpr::constant(r(5));
        assert_eq!(e.coeff(x), r(3));
        assert_eq!(e.coeff(y), r(-1));
        assert_eq!(e.coeff(TheoryVar(7)), r(0));
        assert_eq!(e.constant_term(), r(5));
        assert_eq!(e.num_terms(), 2);
    }

    #[test]
    fn cancellation_removes_terms() {
        let x = TheoryVar(0);
        let e = LinExpr::var(x) - LinExpr::var(x);
        assert!(e.is_constant());
        assert_eq!(e, LinExpr::zero());
    }

    #[test]
    fn eval() {
        let x = TheoryVar(0);
        let y = TheoryVar(1);
        let e = LinExpr::term(r(2), x) + LinExpr::var(y) + LinExpr::constant(r(1));
        let val = e.eval(&|v| if v == x { r(3) } else { r(10) });
        assert_eq!(val, r(17));
    }

    #[test]
    fn scaling_by_zero() {
        let x = TheoryVar(0);
        let e = LinExpr::var(x) * Rational::ZERO;
        assert_eq!(e, LinExpr::zero());
    }

    #[test]
    fn display() {
        let x = TheoryVar(0);
        let y = TheoryVar(1);
        let e = LinExpr::term(r(2), x) - LinExpr::var(y) + LinExpr::constant(r(-3));
        assert_eq!(e.to_string(), "2·r0 - 1·r1 - 3");
        assert_eq!(LinExpr::constant(r(4)).to_string(), "4");
    }
}
