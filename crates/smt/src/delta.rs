//! Rationals extended with an infinitesimal: `r + k·δ`.
//!
//! Strict inequalities over the rationals have no weakest satisfying value,
//! so the simplex works in the ordered field Q(δ) where `x < c` becomes
//! `x ≤ c - δ`. At the end, any found solution can be mapped back to plain
//! rationals by substituting a small enough concrete positive δ
//! ([`crate::simplex::Simplex::concrete_delta`] picks one by search).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use verdict_logic::Rational;

/// A value `real + delta_coeff · δ` where δ is a positive infinitesimal.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaRational {
    /// The standard (real) part.
    pub real: Rational,
    /// The coefficient of δ.
    pub delta: Rational,
}

impl DeltaRational {
    /// Zero.
    pub const ZERO: DeltaRational = DeltaRational {
        real: Rational::ZERO,
        delta: Rational::ZERO,
    };

    /// A plain rational (no infinitesimal part).
    pub fn from_rational(r: Rational) -> DeltaRational {
        DeltaRational {
            real: r,
            delta: Rational::ZERO,
        }
    }

    /// `r + k·δ`.
    pub fn new(real: Rational, delta: Rational) -> DeltaRational {
        DeltaRational { real, delta }
    }

    /// `r - δ`: the value just below `r` (upper bound for `x < r`).
    pub fn just_below(r: Rational) -> DeltaRational {
        DeltaRational {
            real: r,
            delta: -Rational::ONE,
        }
    }

    /// `r + δ`: the value just above `r` (lower bound for `x > r`).
    pub fn just_above(r: Rational) -> DeltaRational {
        DeltaRational {
            real: r,
            delta: Rational::ONE,
        }
    }

    /// Evaluates at a concrete positive value of δ.
    pub fn at(self, delta_value: Rational) -> Rational {
        self.real + self.delta * delta_value
    }

    /// Scales by a rational.
    pub fn scale(self, k: Rational) -> DeltaRational {
        DeltaRational {
            real: self.real * k,
            delta: self.delta * k,
        }
    }

    /// Fallible addition: `None` on `i128` overflow in either component.
    pub fn try_add(self, rhs: DeltaRational) -> Option<DeltaRational> {
        Some(DeltaRational {
            real: self.real.try_add(rhs.real)?,
            delta: self.delta.try_add(rhs.delta)?,
        })
    }

    /// Fallible subtraction: `None` on `i128` overflow.
    pub fn try_sub(self, rhs: DeltaRational) -> Option<DeltaRational> {
        self.try_add(-rhs)
    }

    /// Fallible scaling: `None` on `i128` overflow.
    pub fn try_scale(self, k: Rational) -> Option<DeltaRational> {
        Some(DeltaRational {
            real: self.real.try_mul(k)?,
            delta: self.delta.try_mul(k)?,
        })
    }
}

impl Add for DeltaRational {
    type Output = DeltaRational;
    fn add(self, rhs: DeltaRational) -> DeltaRational {
        DeltaRational {
            real: self.real + rhs.real,
            delta: self.delta + rhs.delta,
        }
    }
}

impl Sub for DeltaRational {
    type Output = DeltaRational;
    fn sub(self, rhs: DeltaRational) -> DeltaRational {
        DeltaRational {
            real: self.real - rhs.real,
            delta: self.delta - rhs.delta,
        }
    }
}

impl Neg for DeltaRational {
    type Output = DeltaRational;
    fn neg(self) -> DeltaRational {
        DeltaRational {
            real: -self.real,
            delta: -self.delta,
        }
    }
}

impl AddAssign for DeltaRational {
    fn add_assign(&mut self, rhs: DeltaRational) {
        *self = *self + rhs;
    }
}

impl SubAssign for DeltaRational {
    fn sub_assign(&mut self, rhs: DeltaRational) {
        *self = *self - rhs;
    }
}

impl Mul<Rational> for DeltaRational {
    type Output = DeltaRational;
    fn mul(self, rhs: Rational) -> DeltaRational {
        self.scale(rhs)
    }
}

impl PartialOrd for DeltaRational {
    fn partial_cmp(&self, other: &DeltaRational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DeltaRational {
    fn cmp(&self, other: &DeltaRational) -> Ordering {
        // Lexicographic: δ is infinitesimally small but positive.
        self.real
            .cmp(&other.real)
            .then_with(|| self.delta.cmp(&other.delta))
    }
}

impl fmt::Debug for DeltaRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for DeltaRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.delta.is_zero() {
            write!(f, "{}", self.real)
        } else if self.delta.is_positive() {
            write!(f, "{}+{}δ", self.real, self.delta)
        } else {
            write!(f, "{}-{}δ", self.real, -self.delta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn ordering_is_lexicographic() {
        let below = DeltaRational::just_below(r(1, 1));
        let exact = DeltaRational::from_rational(r(1, 1));
        let above = DeltaRational::just_above(r(1, 1));
        assert!(below < exact);
        assert!(exact < above);
        assert!(below < above);
        // Any real gap dominates any delta amount.
        let big_delta = DeltaRational::new(r(0, 1), r(1000000, 1));
        assert!(big_delta < DeltaRational::from_rational(r(1, 1000000)));
    }

    #[test]
    fn arithmetic() {
        let a = DeltaRational::new(r(1, 2), r(1, 1));
        let b = DeltaRational::new(r(1, 4), r(-2, 1));
        assert_eq!(a + b, DeltaRational::new(r(3, 4), r(-1, 1)));
        assert_eq!(a - b, DeltaRational::new(r(1, 4), r(3, 1)));
        assert_eq!(-a, DeltaRational::new(r(-1, 2), r(-1, 1)));
        assert_eq!(a.scale(r(2, 1)), DeltaRational::new(r(1, 1), r(2, 1)));
    }

    #[test]
    fn concretization() {
        let x = DeltaRational::just_above(r(3, 1));
        assert_eq!(x.at(r(1, 100)), r(301, 100));
        let y = DeltaRational::just_below(r(3, 1));
        assert!(y.at(r(1, 100)) < r(3, 1));
    }

    #[test]
    fn display() {
        assert_eq!(DeltaRational::from_rational(r(3, 2)).to_string(), "3/2");
        assert_eq!(DeltaRational::just_above(r(1, 1)).to_string(), "1+1δ");
        assert_eq!(DeltaRational::just_below(r(1, 1)).to_string(), "1-1δ");
    }
}
