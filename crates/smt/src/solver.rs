//! The lazy DPLL(T) driver tying the CDCL core to the simplex.
//!
//! Linear atoms are interned: each distinct normalized atom
//! `form ⋈ bound` gets one SAT variable and one simplex slack variable for
//! its linear form (forms are deduplicated up to positive scaling).
//! Formulas over atoms and plain Boolean variables are Tseitin-encoded into
//! the CDCL solver; whenever the SAT core completes a Boolean model, the
//! [`verdict_sat::TheoryHook`] final check asserts each atom's bound with
//! the polarity the model chose and runs the simplex. Conflicts become
//! blocking lemmas (negated explanations), exactly the classic lazy loop.

use std::collections::HashMap;

use verdict_logic::{Formula, Lit, Rational, Tseitin, Var};
use verdict_sat::{Limits, Model, SolveResult, Solver, TheoryHook, TheoryVerdict};

use crate::delta::DeltaRational;
use crate::linexpr::{LinExpr, TheoryVar};
use crate::simplex::{BoundKind, Simplex, SimplexResult};

/// Relational operator of a linear atom. Equality is deliberately absent:
/// encode `e = c` as `e ≤ c ∧ e ≥ c` (see [`SmtSolver::eq_atom`]) so every
/// atom maps to a single simplex bound in both polarities.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Rel {
    /// `≤`
    Le,
    /// `<`
    Lt,
    /// `≥`
    Ge,
    /// `>`
    Gt,
}

impl Rel {
    fn flip(self) -> Rel {
        match self {
            Rel::Le => Rel::Ge,
            Rel::Lt => Rel::Gt,
            Rel::Ge => Rel::Le,
            Rel::Gt => Rel::Lt,
        }
    }

    /// Evaluates `lhs ⋈ rhs` over plain rationals.
    pub fn eval(self, lhs: Rational, rhs: Rational) -> bool {
        match self {
            Rel::Le => lhs <= rhs,
            Rel::Lt => lhs < rhs,
            Rel::Ge => lhs >= rhs,
            Rel::Gt => lhs > rhs,
        }
    }
}

/// The bound a registered atom imposes when true / when false.
#[derive(Clone, Debug)]
struct AtomData {
    sat_var: Var,
    simplex_var: usize,
    rel: Rel,
    bound: Rational,
}

impl AtomData {
    /// The simplex bound asserted when the atom has the given polarity.
    fn bound_for(&self, polarity: bool) -> (BoundKind, DeltaRational) {
        let rel = if polarity {
            self.rel
        } else {
            // ¬(e ≤ b) = e > b, ¬(e < b) = e ≥ b, etc.
            match self.rel {
                Rel::Le => Rel::Gt,
                Rel::Lt => Rel::Ge,
                Rel::Ge => Rel::Lt,
                Rel::Gt => Rel::Le,
            }
        };
        match rel {
            Rel::Le => (BoundKind::Upper, DeltaRational::from_rational(self.bound)),
            Rel::Lt => (BoundKind::Upper, DeltaRational::just_below(self.bound)),
            Rel::Ge => (BoundKind::Lower, DeltaRational::from_rational(self.bound)),
            Rel::Gt => (BoundKind::Lower, DeltaRational::just_above(self.bound)),
        }
    }
}

/// A satisfying assignment: Boolean values plus exact rational values for
/// every theory variable.
#[derive(Clone, Debug)]
pub struct SmtModel {
    bools: Model,
    reals: Vec<Rational>,
}

impl SmtModel {
    /// Truth value of a Boolean (or atom) variable.
    pub fn bool_value(&self, v: Var) -> bool {
        self.bools.value(v)
    }

    /// Value of a real-valued theory variable.
    pub fn real_value(&self, v: TheoryVar) -> Rational {
        self.reals[v.index()]
    }

    /// Evaluates a linear expression under the model.
    pub fn eval(&self, e: &LinExpr) -> Rational {
        e.eval(&|v| self.real_value(v))
    }
}

/// Outcome of an [`SmtSolver::solve`] call.
#[derive(Clone, Debug)]
pub enum SmtResult {
    /// Satisfiable with a model.
    Sat(SmtModel),
    /// Unsatisfiable.
    Unsat,
    /// Resource limit hit.
    Unknown,
}

impl SmtResult {
    /// True iff satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SmtResult::Sat(_))
    }

    /// Extracts the model if satisfiable.
    pub fn model(self) -> Option<SmtModel> {
        match self {
            SmtResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Normalized-form key: strictly sorted `(theory var, coefficient)` pairs
/// with the leading coefficient scaled to 1.
type FormKey = Vec<(TheoryVar, Rational)>;

/// The SMT solver. See the [crate docs](crate) for an end-to-end example.
pub struct SmtSolver {
    sat: Solver,
    simplex: Simplex,
    next_var: u32,
    atoms: Vec<AtomData>,
    /// Dedup: (simplex var, rel, bound) -> existing atom index.
    atom_index: HashMap<(usize, Rel, Rational), usize>,
    /// Dedup: normalized linear form -> simplex (slack or original) var.
    form_slack: HashMap<FormKey, usize>,
    /// Theory var -> simplex var.
    tvar_to_svar: Vec<usize>,
    names: Vec<String>,
    /// Raised when rational arithmetic overflowed during a solve; the
    /// corresponding result was degraded to [`SmtResult::Unknown`].
    overflowed: bool,
}

impl Default for SmtSolver {
    fn default() -> Self {
        SmtSolver::new()
    }
}

impl SmtSolver {
    /// An empty solver.
    pub fn new() -> SmtSolver {
        SmtSolver {
            sat: Solver::new(),
            simplex: Simplex::new(),
            next_var: 0,
            atoms: Vec::new(),
            atom_index: HashMap::new(),
            form_slack: HashMap::new(),
            tvar_to_svar: Vec::new(),
            names: Vec::new(),
            overflowed: false,
        }
    }

    /// True once a solve degraded to `Unknown` because exact rational
    /// arithmetic overflowed `i128` (resource exhaustion, not a timeout).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Declares a fresh real-valued variable.
    pub fn real_var(&mut self, name: &str) -> TheoryVar {
        let tv = TheoryVar(self.tvar_to_svar.len() as u32);
        let sv = self.simplex.add_var();
        self.tvar_to_svar.push(sv);
        self.names.push(name.to_string());
        // Register the singleton form so `atom` maps x ⋈ c onto sv directly.
        self.form_slack.insert(vec![(tv, Rational::ONE)], sv);
        tv
    }

    /// The name a real variable was declared with.
    pub fn var_name(&self, v: TheoryVar) -> &str {
        &self.names[v.index()]
    }

    /// Number of declared real variables.
    pub fn num_real_vars(&self) -> usize {
        self.tvar_to_svar.len()
    }

    /// Declares a fresh Boolean variable (for non-arithmetic state bits).
    pub fn bool_var(&mut self) -> Var {
        let v = Var(self.next_var);
        self.next_var += 1;
        self.sat.reserve_vars(self.next_var);
        v
    }

    /// Registers the linear atom `expr ⋈ rhs` and returns it as a formula
    /// (a single literal, or a constant when the atom is ground).
    pub fn atom(&mut self, expr: LinExpr, rel: Rel, rhs: Rational) -> Formula {
        // Move the constant to the right-hand side.
        let constant = expr.constant_term();
        let bound = rhs - constant;
        let form = expr - LinExpr::constant(constant);
        if form.is_constant() {
            return Formula::constant(rel.eval(Rational::ZERO, bound));
        }
        // Normalize: scale so the leading coefficient is 1.
        let lead = form
            .terms()
            .next()
            .map(|(_, c)| c)
            .expect("non-constant form");
        let scaled = form * lead.recip();
        let bound = bound / lead;
        let rel = if lead.is_negative() { rel.flip() } else { rel };

        let key: FormKey = scaled.terms().collect();
        let svar = match self.form_slack.get(&key) {
            Some(&sv) => sv,
            None => {
                let definition: Vec<(usize, Rational)> = key
                    .iter()
                    .map(|&(tv, c)| (self.tvar_to_svar[tv.index()], c))
                    .collect();
                let sv = self.simplex.add_slack(&definition);
                self.form_slack.insert(key, sv);
                sv
            }
        };
        if let Some(&idx) = self.atom_index.get(&(svar, rel, bound)) {
            return Formula::var(self.atoms[idx].sat_var);
        }
        let sat_var = self.bool_var();
        self.atom_index.insert((svar, rel, bound), self.atoms.len());
        self.atoms.push(AtomData {
            sat_var,
            simplex_var: svar,
            rel,
            bound,
        });
        Formula::var(sat_var)
    }

    /// `expr = rhs` as the conjunction of two inequalities.
    pub fn eq_atom(&mut self, expr: LinExpr, rhs: Rational) -> Formula {
        let le = self.atom(expr.clone(), Rel::Le, rhs);
        let ge = self.atom(expr, Rel::Ge, rhs);
        le.and(ge)
    }

    /// Tseitin-defines a formula and returns a literal equivalent to it
    /// (constants are materialized through a constrained fresh variable),
    /// suitable as an assumption literal for [`SmtSolver::solve_limited`].
    pub fn define_literal(&mut self, f: &Formula) -> Lit {
        let mut enc = Tseitin::new();
        enc.reserve_inputs(self.next_var);
        let encoded = enc.define(f);
        let lit = match encoded {
            verdict_logic::cnf::EncodedLit::Lit(l) => l,
            verdict_logic::cnf::EncodedLit::True => {
                let v = enc.cnf_mut().fresh_var();
                enc.cnf_mut().add_unit(v.positive());
                v.positive()
            }
            verdict_logic::cnf::EncodedLit::False => {
                let v = enc.cnf_mut().fresh_var();
                enc.cnf_mut().add_unit(v.negative());
                v.positive()
            }
        };
        let cnf = enc.into_cnf();
        self.next_var = self.next_var.max(cnf.num_vars());
        for clause in cnf.clauses() {
            self.sat.add_clause(clause.iter().copied());
        }
        lit
    }

    /// Asserts a formula over atom and Boolean variables.
    pub fn assert_formula(&mut self, f: Formula) {
        let mut enc = Tseitin::new();
        enc.reserve_inputs(self.next_var);
        enc.assert(&f);
        let cnf = enc.into_cnf();
        self.next_var = self.next_var.max(cnf.num_vars());
        for clause in cnf.clauses() {
            self.sat.add_clause(clause.iter().copied());
        }
    }

    /// Solves the asserted formulas. See [`SmtSolver::solve_limited`].
    pub fn solve(&mut self) -> SmtResult {
        self.solve_limited(&[], Limits::NONE)
    }

    /// Solves under assumption literals and resource limits.
    ///
    /// An `i128` overflow in the simplex (poisoned tableau, or a panic from
    /// a checked rational operation) degrades the answer to
    /// [`SmtResult::Unknown`] with [`SmtSolver::overflowed`] raised — the
    /// process survives resource exhaustion in exact arithmetic.
    pub fn solve_limited(&mut self, assumptions: &[Lit], limits: Limits) -> SmtResult {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut hook = LraHook {
                atoms: &self.atoms,
                simplex: &mut self.simplex,
            };
            match self.sat.solve_with_theory(assumptions, &mut hook, limits) {
                SolveResult::Sat(bools) => {
                    if self.simplex.overflowed() {
                        // The theory hook had to wave the model through to
                        // stop the search; the valuation is garbage.
                        return SmtResult::Unknown;
                    }
                    // The simplex still holds the bounds of the accepted
                    // model; concretize δ and read off real values.
                    let delta = self.simplex.concrete_delta();
                    let reals = self
                        .tvar_to_svar
                        .iter()
                        .map(|&sv| self.simplex.value(sv).at(delta))
                        .collect();
                    SmtResult::Sat(SmtModel { bools, reals })
                }
                SolveResult::Unsat => SmtResult::Unsat,
                SolveResult::Unknown => SmtResult::Unknown,
            }
        }));
        match outcome {
            Ok(res) => {
                if self.simplex.overflowed() {
                    self.overflowed = true;
                }
                res
            }
            Err(payload) => {
                // Only swallow overflow panics from checked rational
                // arithmetic; anything else is a genuine bug.
                let msg = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
                if msg.is_some_and(|m| m.contains("rational overflow")) {
                    self.overflowed = true;
                    SmtResult::Unknown
                } else {
                    std::panic::resume_unwind(payload)
                }
            }
        }
    }

    /// Cumulative statistics from the underlying SAT core.
    pub fn sat_stats(&self) -> verdict_sat::Stats {
        self.sat.stats()
    }

    /// Clause-arena size of the underlying SAT core (for resource-ceiling
    /// diagnostics; see [`verdict_sat::Limits::max_clauses`]).
    pub fn num_clauses(&self) -> usize {
        self.sat.num_clauses()
    }

    /// Pivot count from the simplex core.
    pub fn simplex_pivots(&self) -> u64 {
        self.simplex.pivots()
    }

    /// Nonbasic bound-flip count from the simplex core.
    pub fn simplex_bound_flips(&self) -> u64 {
        self.simplex.bound_flips()
    }

    /// Times the simplex core overflowed `i128` and poisoned its valuation.
    pub fn simplex_poisonings(&self) -> u64 {
        self.simplex.poisonings()
    }
}

/// The theory hook: asserts atom bounds per the Boolean model's polarity
/// and checks with simplex.
struct LraHook<'a> {
    atoms: &'a [AtomData],
    simplex: &'a mut Simplex,
}

impl TheoryHook for LraHook<'_> {
    fn final_check(&mut self, model: &Model) -> TheoryVerdict {
        self.simplex.reset_bounds();
        for atom in self.atoms {
            let polarity = model.value(atom.sat_var);
            let (kind, bound) = atom.bound_for(polarity);
            // The literal that is true in the current Boolean model.
            let reason = atom.sat_var.lit(polarity);
            if let Err(expl) = self
                .simplex
                .assert_bound(atom.simplex_var, kind, bound, reason)
            {
                return TheoryVerdict::Lemma(negate_all(&expl));
            }
        }
        match self.simplex.check() {
            SimplexResult::Sat => TheoryVerdict::Consistent,
            SimplexResult::Conflict(expl) => TheoryVerdict::Lemma(negate_all(&expl)),
            // There is no "abort" verdict; accept the Boolean model so the
            // search ends, and let the driver notice the poisoned tableau
            // and degrade to Unknown.
            SimplexResult::Overflow => TheoryVerdict::Consistent,
        }
    }
}

fn negate_all(lits: &[Lit]) -> Vec<Lit> {
    lits.iter().map(|&l| !l).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn pure_boolean_still_works() {
        let mut smt = SmtSolver::new();
        let a = smt.bool_var();
        let b = smt.bool_var();
        smt.assert_formula(Formula::var(a).or(Formula::var(b)));
        smt.assert_formula(Formula::var(a).not());
        let m = smt.solve().model().unwrap();
        assert!(!m.bool_value(a) && m.bool_value(b));
    }

    #[test]
    fn simple_arithmetic_sat() {
        let mut smt = SmtSolver::new();
        let x = smt.real_var("x");
        let a = smt.atom(LinExpr::var(x), Rel::Ge, r(2, 1));
        let b = smt.atom(LinExpr::var(x), Rel::Le, r(3, 1));
        smt.assert_formula(a.and(b));
        let m = smt.solve().model().unwrap();
        let v = m.real_value(x);
        assert!(v >= r(2, 1) && v <= r(3, 1), "x = {v}");
    }

    #[test]
    fn simple_arithmetic_unsat() {
        let mut smt = SmtSolver::new();
        let x = smt.real_var("x");
        let a = smt.atom(LinExpr::var(x), Rel::Gt, r(3, 1));
        let b = smt.atom(LinExpr::var(x), Rel::Lt, r(3, 1));
        smt.assert_formula(a.and(b));
        assert!(matches!(smt.solve(), SmtResult::Unsat));
    }

    #[test]
    fn strict_boundary_excluded() {
        let mut smt = SmtSolver::new();
        let x = smt.real_var("x");
        let a = smt.atom(LinExpr::var(x), Rel::Gt, r(3, 1));
        let b = smt.atom(LinExpr::var(x), Rel::Le, r(3, 1));
        smt.assert_formula(a.and(b));
        assert!(matches!(smt.solve(), SmtResult::Unsat));
    }

    #[test]
    fn boolean_structure_over_atoms() {
        // (x >= 5 or x <= 1) and x >= 2  =>  x >= 5 branch must be taken.
        let mut smt = SmtSolver::new();
        let x = smt.real_var("x");
        let hi = smt.atom(LinExpr::var(x), Rel::Ge, r(5, 1));
        let lo = smt.atom(LinExpr::var(x), Rel::Le, r(1, 1));
        let mid = smt.atom(LinExpr::var(x), Rel::Ge, r(2, 1));
        smt.assert_formula(hi.or(lo).and(mid));
        let m = smt.solve().model().unwrap();
        assert!(m.real_value(x) >= r(5, 1));
    }

    #[test]
    fn multi_var_system() {
        // x + y = 10, x - y >= 4, y > 1  =>  1 < y <= 3.
        let mut smt = SmtSolver::new();
        let x = smt.real_var("x");
        let y = smt.real_var("y");
        let sum = smt.eq_atom(LinExpr::var(x) + LinExpr::var(y), r(10, 1));
        let diff = smt.atom(LinExpr::var(x) - LinExpr::var(y), Rel::Ge, r(4, 1));
        let ypos = smt.atom(LinExpr::var(y), Rel::Gt, r(1, 1));
        smt.assert_formula(Formula::and_all([sum, diff, ypos]));
        let m = smt.solve().model().unwrap();
        let (vx, vy) = (m.real_value(x), m.real_value(y));
        assert_eq!(vx + vy, r(10, 1));
        assert!(vx - vy >= r(4, 1));
        assert!(vy > r(1, 1) && vy <= r(3, 1), "y = {vy}");
    }

    #[test]
    fn negated_atoms_in_formula() {
        // not (x <= 0) and x < 1  =>  0 < x < 1.
        let mut smt = SmtSolver::new();
        let x = smt.real_var("x");
        let nonpos = smt.atom(LinExpr::var(x), Rel::Le, r(0, 1));
        let lt1 = smt.atom(LinExpr::var(x), Rel::Lt, r(1, 1));
        smt.assert_formula(nonpos.not().and(lt1));
        let m = smt.solve().model().unwrap();
        let v = m.real_value(x);
        assert!(v > r(0, 1) && v < r(1, 1), "x = {v}");
    }

    #[test]
    fn atom_deduplication() {
        let mut smt = SmtSolver::new();
        let x = smt.real_var("x");
        // 2x <= 4 and x <= 2 normalize to the same atom.
        let a = smt.atom(LinExpr::term(r(2, 1), x), Rel::Le, r(4, 1));
        let b = smt.atom(LinExpr::var(x), Rel::Le, r(2, 1));
        assert_eq!(a, b);
        // -x >= -2 is also the same constraint.
        let c = smt.atom(LinExpr::term(r(-1, 1), x), Rel::Ge, r(-2, 1));
        assert_eq!(a, c);
    }

    #[test]
    fn ground_atoms_fold() {
        let mut smt = SmtSolver::new();
        let t = smt.atom(LinExpr::constant(r(1, 1)), Rel::Le, r(2, 1));
        assert_eq!(t, Formula::tt());
        let f = smt.atom(LinExpr::constant(r(3, 1)), Rel::Le, r(2, 1));
        assert_eq!(f, Formula::ff());
    }

    #[test]
    fn constants_inside_expressions() {
        // (x + 1) <= 3  ==  x <= 2.
        let mut smt = SmtSolver::new();
        let x = smt.real_var("x");
        let a = smt.atom(
            LinExpr::var(x) + LinExpr::constant(r(1, 1)),
            Rel::Le,
            r(3, 1),
        );
        let b = smt.atom(LinExpr::var(x), Rel::Le, r(2, 1));
        assert_eq!(a, b);
    }

    #[test]
    fn incremental_assertions() {
        let mut smt = SmtSolver::new();
        let x = smt.real_var("x");
        let ge = smt.atom(LinExpr::var(x), Rel::Ge, r(0, 1));
        smt.assert_formula(ge);
        assert!(smt.solve().is_sat());
        let le = smt.atom(LinExpr::var(x), Rel::Lt, r(0, 1));
        smt.assert_formula(le);
        assert!(matches!(smt.solve(), SmtResult::Unsat));
    }

    #[test]
    fn rational_overflow_degrades_to_unknown() {
        let mut smt = SmtSolver::new();
        let x = smt.real_var("x");
        let big = Rational::integer(i128::MAX / 2);
        let a = smt.atom(LinExpr::var(x), Rel::Ge, big);
        let b = smt.atom(LinExpr::var(x), Rel::Le, r(1, 3));
        smt.assert_formula(a.and(b));
        // Comparing the two bounds multiplies i128::MAX/2 by 3 — overflow.
        // The solver must degrade gracefully, not abort the process.
        let result = smt.solve();
        assert!(matches!(result, SmtResult::Unknown), "{result:?}");
        assert!(smt.overflowed());
    }

    #[test]
    fn model_evaluates_expressions() {
        let mut smt = SmtSolver::new();
        let x = smt.real_var("x");
        let y = smt.real_var("y");
        let c1 = smt.eq_atom(LinExpr::var(x), r(3, 2));
        let c2 = smt.eq_atom(LinExpr::var(y) - LinExpr::term(r(2, 1), x), r(0, 1));
        smt.assert_formula(c1.and(c2));
        let m = smt.solve().model().unwrap();
        assert_eq!(m.real_value(x), r(3, 2));
        assert_eq!(m.real_value(y), r(3, 1));
        let e = LinExpr::var(x) + LinExpr::var(y);
        assert_eq!(m.eval(&e), r(9, 2));
    }
}
