//! # verdict — verified self-driving infrastructure
//!
//! `verdict` is a symbolic model-checking framework for *dynamic service
//! infrastructure control*: the schedulers, load balancers, autoscalers,
//! deschedulers, rollout controllers and traffic engineering loops that
//! run modern "self-driving" infrastructure. It is a complete
//! from-scratch Rust reproduction of the HotNets '20 paper *Towards
//! Verified Self-Driving Infrastructure* (Liu, Kheradmand, Caesar,
//! Godfrey), including the solvers the paper outsourced to NuXMV.
//!
//! Model control components and their environment as a **parametric
//! transition system** ([`ts`]), state safety and liveness properties in
//! **LTL/CTL**, and let the engines ([`mc`]) verify, falsify with
//! counterexample traces (finite or lasso-shaped), or **synthesize safe
//! configuration parameters**:
//!
//! ```
//! use verdict::prelude::*;
//!
//! // A rollout controller on the paper's 5-node "test" topology.
//! let model = RolloutModel::build(&RolloutSpec::paper(Topology::test_topology())).expect("valid topology");
//! // The paper's Fig. 5 setting: p = m = 1, k = 2 — violated.
//! let system = model.pinned(1, 2, 1);
//! let verifier = Verifier::new(&system).options(CheckOptions::with_depth(8));
//! let result = verifier.check_invariant(&model.property).unwrap();
//! assert!(result.violated());
//! println!("{result}"); // the counterexample of Fig. 5
//! ```
//!
//! The workspace layers, bottom-up:
//!
//! | crate | contents |
//! |---|---|
//! | [`logic`] | exact rationals, formulas, CNF/Tseitin |
//! | [`sat`] | CDCL SAT solver |
//! | [`bdd`] | hash-consed ROBDDs |
//! | [`smt`] | lazy DPLL(T) with simplex (QF_LRA) |
//! | [`ts`] | the transition-system IR, encoders, traces |
//! | [`mc`] | BMC, k-induction, BDD fixpoints, SMT-BMC, parameter synthesis |
//! | [`models`] | the controller/environment model library |
//! | [`dsl`] | the `.vd` modeling language |
//! | [`ksim`] | a deterministic Kubernetes-cluster simulator |
//! | [`incidents`] | the Table 1 incident study |

/// Exact rationals, propositional formulas, CNF (re-export of
/// `verdict-logic`).
pub use verdict_logic as logic;

/// CDCL SAT solver (re-export of `verdict-sat`).
pub use verdict_sat as sat;

/// Binary decision diagrams (re-export of `verdict-bdd`).
pub use verdict_bdd as bdd;

/// SMT solving for linear real arithmetic (re-export of `verdict-smt`).
pub use verdict_smt as smt;

/// Transition-system IR (re-export of `verdict-ts`).
pub use verdict_ts as ts;

/// Model-checking engines (re-export of `verdict-mc`).
pub use verdict_mc as mc;

/// Controller and environment models (re-export of `verdict-models`).
pub use verdict_models as models;

/// The `.vd` modeling language (re-export of `verdict-dsl`).
pub use verdict_dsl as dsl;

/// Kubernetes cluster simulator (re-export of `verdict-ksim`).
pub use verdict_ksim as ksim;

/// The incident study (re-export of `verdict-incidents`).
pub use verdict_incidents as incidents;

/// The items most programs need.
pub mod prelude {
    pub use verdict_logic::Rational;
    pub use verdict_mc::params::Property;
    pub use verdict_mc::{
        engine, CheckOptions, CheckResult, Engine, EngineKind, Stats, UnknownReason, Verifier,
    };
    pub use verdict_models::lb_ecmp::{LbModel, LbSpec};
    pub use verdict_models::{RolloutModel, RolloutSpec, Topology};
    pub use verdict_ts::{Ctl, Expr, Ltl, Sort, System, Trace, Value, VarKind};
}
