//! Journal torture: a journaled sweep interrupted at arbitrary points —
//! including truncation mid-record, the on-disk image of a crash between
//! `write` and `fsync` — must resume to exactly the uninterrupted run's
//! verdict map, re-solving only what was never decided.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use verdict_journal::fault;
use verdict_mc::params::{synthesize, synthesize_durable, Property, SynthesisEngine};
use verdict_mc::{CheckOptions, CheckResult, Durability};
use verdict_prng::Prng;
use verdict_ts::{Expr, System, VarId};

/// 16-assignment sweep with a mix of safe and unsafe verdicts (traces
/// must survive the journal round-trip too).
fn sweep_model() -> (System, Vec<VarId>) {
    let mut sys = System::new("torture");
    let n = sys.int_var("n", 0, 40);
    let a = sys.int_param("a", 1, 4);
    let b = sys.int_param("b", 1, 4);
    sys.add_init(Expr::var(n).eq(Expr::int(0)));
    sys.add_trans(Expr::next(n).eq(Expr::ite(
        Expr::var(n).le(Expr::int(30)),
        Expr::var(n).add(Expr::var(a)).add(Expr::var(b)),
        Expr::var(n),
    )));
    (sys, vec![a, b])
}

fn sweep_property(sys: &System) -> Property {
    let n = sys.var_by_name("n").expect("n exists");
    Property::Invariant(Expr::var(n).ne(Expr::int(12)))
}

fn opts() -> CheckOptions {
    CheckOptions::with_depth(24).with_jobs(1)
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "verdict-torture-{}-{tag}.jsonl",
        std::process::id()
    ))
}

/// Runs the journaled sweep, resuming from whatever is at `path`.
fn run_journaled(path: &Path, resume: bool) -> verdict_mc::params::SynthesisResult {
    let (sys, params) = sweep_model();
    let prop = sweep_property(&sys);
    let opts = opts();
    let (recorder, state) = verdict_mc::durable::start_sweep_journal(
        path,
        resume,
        &sys,
        &params,
        &prop,
        SynthesisEngine::KInduction,
        &opts,
    )
    .expect("journal opens");
    let durability = Durability {
        recorder: Some(&recorder),
        resume: Some(&state),
    };
    synthesize_durable(
        &sys,
        &params,
        &prop,
        SynthesisEngine::KInduction,
        &opts,
        &durability,
    )
    .expect("sweep runs")
}

fn reference() -> verdict_mc::params::SynthesisResult {
    let (sys, params) = sweep_model();
    let prop = sweep_property(&sys);
    synthesize(&sys, &params, &prop, SynthesisEngine::KInduction, &opts()).expect("reference")
}

/// Resumed verdict maps must match the uninterrupted run exactly —
/// values, verdicts, and counterexample traces.
fn assert_identical(
    reference: &verdict_mc::params::SynthesisResult,
    got: &verdict_mc::params::SynthesisResult,
    ctx: &str,
) {
    assert_eq!(reference.param_names, got.param_names, "{ctx}");
    assert_eq!(reference.verdicts.len(), got.verdicts.len(), "{ctx}");
    for (r, g) in reference.verdicts.iter().zip(&got.verdicts) {
        assert_eq!(r.values, g.values, "{ctx}: order");
        assert_eq!(r.result, g.result, "{ctx}: verdict at {:?}", g.values);
    }
}

/// Truncate a complete journal at every seeded byte offset — torn header,
/// torn record, clean cut — and resume. Every decided prefix must be
/// reused; the verdict map always converges to the reference.
#[test]
fn truncation_sweep_resumes_to_reference() {
    let _guard = fault::test_lock();
    fault::clear();
    let reference = reference();

    let full = temp_path("full");
    let _ = std::fs::remove_file(&full);
    let complete = run_journaled(&full, false);
    assert_identical(&reference, &complete, "uninterrupted journaled run");
    let bytes = std::fs::read(&full).expect("journal bytes");
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .expect("header line present")
        + 1;

    let mut rng = Prng::seed_from_u64(0x70c7);
    let cut_path = temp_path("cut");
    for trial in 0..24 {
        // Bias cuts into the tail so mid-record tears are common.
        let cut = header_end + (rng.next_u64() as usize) % (bytes.len() - header_end + 1);
        std::fs::write(&cut_path, &bytes[..cut]).expect("truncated copy");
        let resumed = run_journaled(&cut_path, true);
        assert_identical(
            &reference,
            &resumed,
            &format!("trial {trial}, cut at {cut}"),
        );
    }

    // A cut inside the header is unrecoverable by design: resuming must
    // fail loudly rather than silently start a mismatched journal.
    std::fs::write(&cut_path, &bytes[..header_end / 2]).expect("torn header");
    let (sys, params) = sweep_model();
    let prop = sweep_property(&sys);
    let err = verdict_mc::durable::start_sweep_journal(
        &cut_path,
        true,
        &sys,
        &params,
        &prop,
        SynthesisEngine::KInduction,
        &opts(),
    );
    assert!(err.is_err(), "torn header must not resume");

    let _ = std::fs::remove_file(&full);
    let _ = std::fs::remove_file(&cut_path);
}

/// A corrupt byte in the middle of the journal (not just the tail) must
/// truncate from the first bad record and still resume correctly.
#[test]
fn mid_file_corruption_truncates_and_resumes() {
    let _guard = fault::test_lock();
    fault::clear();
    let reference = reference();
    let full = temp_path("corrupt-src");
    let _ = std::fs::remove_file(&full);
    run_journaled(&full, false);
    let bytes = std::fs::read(&full).expect("journal bytes");
    let header_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;

    let mut rng = Prng::seed_from_u64(0xbadc0de);
    let path = temp_path("corrupt");
    for trial in 0..12 {
        let mut copy = bytes.clone();
        let at = header_end + (rng.next_u64() as usize) % (copy.len() - header_end);
        copy[at] ^= 0x20;
        std::fs::write(&path, &copy).expect("corrupt copy");
        let resumed = run_journaled(&path, true);
        assert_identical(
            &reference,
            &resumed,
            &format!("trial {trial}, flip at {at}"),
        );
    }
    let _ = std::fs::remove_file(&full);
    let _ = std::fs::remove_file(&path);
}

/// The cooperative-interrupt path: a stop flag raised mid-sweep leaves
/// undecided assignments as unjournaled `Cancelled`; resuming finishes
/// exactly the undecided remainder.
#[test]
fn stop_flag_interrupt_then_resume() {
    let _guard = fault::test_lock();
    fault::clear();
    let reference = reference();
    let path = temp_path("stop");

    for delay_us in [0u64, 200, 800, 3000] {
        let _ = std::fs::remove_file(&path);
        let (sys, params) = sweep_model();
        let prop = sweep_property(&sys);
        let stop = Arc::new(AtomicBool::new(false));
        let interrupted_opts = opts().with_stop(stop.clone());
        let killer = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
                stop.store(true, Ordering::Relaxed);
            })
        };
        let (recorder, state) = verdict_mc::durable::start_sweep_journal(
            &path,
            false,
            &sys,
            &params,
            &prop,
            SynthesisEngine::KInduction,
            &interrupted_opts,
        )
        .expect("journal opens");
        let durability = Durability {
            recorder: Some(&recorder),
            resume: Some(&state),
        };
        let partial = synthesize_durable(
            &sys,
            &params,
            &prop,
            SynthesisEngine::KInduction,
            &interrupted_opts,
            &durability,
        )
        .expect("interrupted sweep returns");
        killer.join().expect("killer thread");
        drop(recorder);
        // Whatever was decided before the flag went up was journaled;
        // everything else is Cancelled and unjournaled.
        for v in &partial.verdicts {
            if let CheckResult::Unknown(r) = &v.result {
                assert_eq!(
                    *r,
                    verdict_mc::UnknownReason::Cancelled,
                    "interrupt produces only Cancelled unknowns"
                );
            }
        }
        let resumed = run_journaled(&path, true);
        assert_identical(&reference, &resumed, &format!("delay {delay_us}us"));
    }
    let _ = std::fs::remove_file(&path);
}
