//! End-to-end tests of the parallel verification layer on case study 1
//! (the paper's rollout + network partition model): parameter-synthesis
//! sharding must not change verdicts or their order, and the portfolio
//! engine must agree with every sequential engine.

use verdict_mc::params::{synthesize, synthesize_first_safe, Property, SynthesisEngine};
use verdict_mc::prelude::*;
use verdict_mc::Stats;
use verdict_models::{RolloutModel, RolloutSpec, Topology};

/// The case-study-1 model with a 16-assignment (p, k, m) cross product:
/// p ∈ 0..=3, k ∈ 0..=1, m ∈ 0..=1.
fn sweep_model() -> RolloutModel {
    let spec = RolloutSpec {
        k_max: 1,
        m_max: 1,
        ..RolloutSpec::paper(Topology::test_topology())
    };
    RolloutModel::build(&spec).expect("valid topology")
}

#[test]
fn synthesis_verdict_order_is_job_count_invariant() {
    let model = sweep_model();
    let prop = Property::Invariant(model.property.clone());
    let params = [model.p, model.k, model.m];
    let baseline = synthesize(
        &model.system,
        &params,
        &prop,
        SynthesisEngine::KInduction,
        &CheckOptions::with_depth(10).with_jobs(1),
    )
    .unwrap();
    assert_eq!(baseline.verdicts.len(), 16, "4 × 2 × 2 assignments");
    for jobs in 2..=4 {
        let r = synthesize(
            &model.system,
            &params,
            &prop,
            SynthesisEngine::KInduction,
            &CheckOptions::with_depth(10).with_jobs(jobs),
        )
        .unwrap();
        assert_eq!(r.param_names, baseline.param_names);
        assert_eq!(r.verdicts.len(), baseline.verdicts.len(), "jobs={jobs}");
        for (i, (a, b)) in baseline.verdicts.iter().zip(&r.verdicts).enumerate() {
            assert_eq!(a.values, b.values, "jobs={jobs} index {i}");
            assert_eq!(
                a.result.holds(),
                b.result.holds(),
                "jobs={jobs} index {i} values {:?}",
                a.values
            );
            assert_eq!(
                a.result.violated(),
                b.result.violated(),
                "jobs={jobs} index {i} values {:?}",
                a.values
            );
        }
    }
}

#[test]
fn first_safe_sweep_reports_a_genuinely_safe_assignment() {
    let model = sweep_model();
    let prop = Property::Invariant(model.property.clone());
    let params = [model.p, model.k, model.m];
    let r = synthesize_first_safe(
        &model.system,
        &params,
        &prop,
        SynthesisEngine::KInduction,
        &CheckOptions::with_depth(10).with_jobs(4),
    )
    .unwrap();
    let safe = r.safe();
    assert!(!safe.is_empty(), "{r}");
    // Every value reported SAFE must also be SAFE in the full sweep.
    let full = synthesize(
        &model.system,
        &params,
        &prop,
        SynthesisEngine::KInduction,
        &CheckOptions::with_depth(10).with_jobs(1),
    )
    .unwrap();
    for values in safe {
        let matching = full
            .verdicts
            .iter()
            .find(|v| v.values == values)
            .expect("assignment exists in full sweep");
        assert!(matching.result.holds(), "{values:?}");
    }
}

#[test]
fn portfolio_agrees_with_sequential_engines_on_case_study_1() {
    let model = RolloutModel::build(&RolloutSpec::paper(Topology::test_topology()))
        .expect("valid topology");
    // (p, k, m, expected violated) — the paper's Fig. 5 configuration and
    // a safe one.
    for (p, k, m, expect_violated) in [(1, 2, 1, true), (0, 0, 1, false)] {
        let sys = model.pinned(p, k, m);
        let opts = CheckOptions::with_depth(12);
        let report = Verifier::new(&sys)
            .engine(EngineKind::Portfolio)
            .options(opts.clone())
            .check_invariant_report(&model.property)
            .unwrap();
        assert_eq!(
            report.result.violated(),
            expect_violated,
            "portfolio on (p={p},k={k},m={m}): {}",
            report.result
        );
        let b = engine(EngineKind::Bdd)
            .check_invariant(&sys, &model.property, &opts, &mut Stats::default())
            .unwrap();
        let ki = engine(EngineKind::KInduction)
            .check_invariant(&sys, &model.property, &opts, &mut Stats::default())
            .unwrap();
        assert_eq!(report.result.violated(), b.violated(), "vs bdd");
        assert_eq!(report.result.holds(), b.holds(), "vs bdd");
        assert_eq!(report.result.violated(), ki.violated(), "vs kind");
        assert_eq!(report.result.holds(), ki.holds(), "vs kind");
        if expect_violated {
            let mres = engine(EngineKind::Bmc)
                .check_invariant(&sys, &model.property, &opts, &mut Stats::default())
                .unwrap();
            assert!(mres.violated(), "vs bmc");
        }
    }
}
