//! Acceptance tests for the incremental (assumption-pinned) synthesis
//! sweep: on both case studies it must be verdict-for-verdict identical
//! to the clone-per-assignment path, across job counts, and its verdicts
//! must survive independent certification (`--certify` re-proves every
//! incremental verdict — core-pruned inherited ones included — with
//! fresh proof-logged solvers).

use verdict::prelude::*;
use verdict_mc::params::{synthesize, Property, SynthesisEngine, SynthesisResult};

/// The case-study-1 model with a 16-assignment (p, k, m) cross product.
fn sweep_model() -> RolloutModel {
    let spec = RolloutSpec {
        k_max: 1,
        m_max: 1,
        ..RolloutSpec::paper(Topology::test_topology())
    };
    RolloutModel::build(&spec).expect("valid topology")
}

fn assert_same_verdicts(a: &SynthesisResult, b: &SynthesisResult, what: &str) {
    assert_eq!(a.verdicts.len(), b.verdicts.len(), "{what}");
    for (x, y) in a.verdicts.iter().zip(&b.verdicts) {
        assert_eq!(x.values, y.values, "{what}: order changed");
        assert_eq!(
            x.result.holds(),
            y.result.holds(),
            "{what}: verdict mismatch at {:?}",
            x.values
        );
        assert_eq!(
            x.result.violated(),
            y.result.violated(),
            "{what}: verdict mismatch at {:?}",
            x.values
        );
    }
}

#[test]
fn rollout_incremental_matches_clone_path() {
    let model = sweep_model();
    let prop = Property::Invariant(model.property.clone());
    let params = [model.p, model.k, model.m];
    let clone = synthesize(
        &model.system,
        &params,
        &prop,
        SynthesisEngine::KInduction,
        &CheckOptions::with_depth(10)
            .with_jobs(1)
            .with_incremental(false),
    )
    .unwrap();
    assert_eq!(clone.verdicts.len(), 16, "4 × 2 × 2 assignments");
    assert!(!clone.safe().is_empty() && !clone.unsafe_values().is_empty());
    for jobs in [1, 2, 4] {
        let inc = synthesize(
            &model.system,
            &params,
            &prop,
            SynthesisEngine::KInduction,
            &CheckOptions::with_depth(10)
                .with_jobs(jobs)
                .with_incremental(true),
        )
        .unwrap();
        assert_same_verdicts(&clone, &inc, &format!("rollout jobs={jobs}"));
    }
}

#[test]
fn rollout_incremental_verdicts_survive_certification() {
    let model = sweep_model();
    let prop = Property::Invariant(model.property.clone());
    let params = [model.p, model.k, model.m];
    let clone = synthesize(
        &model.system,
        &params,
        &prop,
        SynthesisEngine::KInduction,
        &CheckOptions::with_depth(10)
            .with_jobs(1)
            .with_incremental(false),
    )
    .unwrap();
    let certified = synthesize(
        &model.system,
        &params,
        &prop,
        SynthesisEngine::KInduction,
        &CheckOptions::with_depth(10)
            .with_jobs(2)
            .with_incremental(true)
            .with_certify(),
    )
    .unwrap();
    // Certification must not reject anything (no verdict demoted to
    // UNKNOWN) and the partition must still equal the clone path's.
    assert!(!certified.has_unknown(), "{certified}");
    assert_same_verdicts(&clone, &certified, "rollout certified");
}

#[test]
fn step_counter_dsl_incremental_matches_clone_path() {
    let source = include_str!("../examples/models/step_counter.vd");
    let model = verdict_dsl::parse(source).expect("step_counter.vd parses");
    let step = model.system.var_by_name("step").expect("`step` param");
    let (_, verdict_dsl::CompiledProperty::Invariant(p)) = &model.properties[0] else {
        panic!("step_counter.vd's first property is an invariant");
    };
    let prop = Property::Invariant(p.clone());
    let clone = synthesize(
        &model.system,
        &[step],
        &prop,
        SynthesisEngine::KInduction,
        &CheckOptions::default().with_jobs(1).with_incremental(false),
    )
    .unwrap();
    assert_eq!(clone.verdicts.len(), 3);
    for jobs in [1, 3] {
        for certify in [false, true] {
            let mut opts = CheckOptions::default()
                .with_jobs(jobs)
                .with_incremental(true);
            if certify {
                opts = opts.with_certify();
            }
            let inc = synthesize(
                &model.system,
                &[step],
                &prop,
                SynthesisEngine::KInduction,
                &opts,
            )
            .unwrap();
            assert_same_verdicts(
                &clone,
                &inc,
                &format!("step_counter jobs={jobs} certify={certify}"),
            );
            assert!(!inc.has_unknown(), "{inc}");
        }
    }
}
