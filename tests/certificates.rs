//! Certified verdicts on the paper's two case studies.
//!
//! Every counterexample any engine produces on the case-study models must
//! survive the independent reference replayer (`--certify` keeps the
//! verdict); a deliberately corrupted trace must be demoted to
//! `Unknown(CertificateRejected)`; and `Holds` verdicts from k-induction
//! must survive the fresh proof-logged re-check.

use verdict::mc::{certify, UnknownReason};
use verdict::prelude::*;

/// Trait dispatch with a scratch stats sink.
fn inv(kind: EngineKind, sys: &System, p: &Expr, opts: &CheckOptions) -> CheckResult {
    engine(kind)
        .check_invariant(sys, p, opts, &mut Stats::default())
        .unwrap()
}

fn fig5_model() -> (RolloutModel, System) {
    let model = RolloutModel::build(&RolloutSpec::paper(Topology::test_topology()))
        .expect("valid topology");
    let sys = model.pinned(1, 2, 1);
    (model, sys)
}

/// Case study 1 (Fig. 5 configuration): the violation found by each SAT
/// engine replays under the reference semantics, so `--certify` keeps the
/// `Violated` verdict instead of demoting it.
#[test]
fn case_study_1_counterexamples_certify_across_engines() {
    let (model, sys) = fig5_model();
    let opts = CheckOptions::with_depth(8).with_certify();

    let r = inv(EngineKind::Bmc, &sys, &model.property, &opts);
    let t = r.trace().expect("BMC violation must survive replay");
    certify::validate_invariant_cex(&sys, &model.property, t).expect("replay");

    // k-induction's embedded base case finds the same violation.
    let r = inv(EngineKind::KInduction, &sys, &model.property, &opts);
    let t = r
        .trace()
        .expect("k-induction violation must survive replay");
    certify::validate_invariant_cex(&sys, &model.property, t).expect("replay");
}

/// Case study 1, safe configuration: the k-induction proof of
/// `p = 0, k = 0, m = 1` survives the independent re-check (fresh
/// unrollers, fresh solvers, DRUP-checked UNSAT answers).
#[test]
fn case_study_1_safe_verdict_certifies() {
    let (model, _) = fig5_model();
    let sys = model.pinned(0, 0, 1);
    let opts = CheckOptions::with_depth(12).with_certify();
    let r = inv(EngineKind::KInduction, &sys, &model.property, &opts);
    assert!(r.holds(), "proof must survive certification: {r}");
}

/// Case study 2: the SMT engine's lasso counterexamples (real-valued
/// states, exact rational loop-back) replay through the reference LTL
/// interpreter for both liveness properties.
#[test]
fn case_study_2_lasso_counterexamples_certify() {
    let model = LbModel::build(&LbSpec::default());
    for (phi, depth) in [(&model.liveness, 10), (&model.conditional_liveness, 12)] {
        let opts = CheckOptions::with_depth(depth).with_certify();
        let r = engine(EngineKind::SmtBmc)
            .check_ltl(&model.system, phi, &opts, &mut Stats::default())
            .unwrap();
        let t = r.trace().expect("violation must survive replay");
        assert!(t.loop_back.is_some(), "liveness evidence is a lasso:\n{t}");
        certify::validate_ltl_cex(&model.system, phi, t).expect("replay");
    }
}

/// Mutation test: corrupting one step of a genuine case-study trace makes
/// the replayer reject it, and the gate demotes the verdict to
/// `Unknown(CertificateRejected)`.
#[test]
fn corrupted_case_study_trace_is_rejected() {
    let (model, sys) = fig5_model();
    let r = inv(
        EngineKind::Bmc,
        &sys,
        &model.property,
        &CheckOptions::with_depth(8),
    );
    let CheckResult::Violated(mut trace) = r else {
        panic!("Fig. 5 configuration must be violated")
    };
    // Pristine trace passes.
    certify::validate_invariant_cex(&sys, &model.property, &trace).expect("replay");
    // Flip one link-failure flag in the initial state: INIT requires all
    // links up, so the corrupted trace is no longer a legal execution.
    let failed0 = model.failed[0].index();
    trace.states[0][failed0] = Value::Bool(true);
    let gated = certify::gate_invariant_cex(&sys, &model.property, trace);
    assert!(
        matches!(
            gated,
            CheckResult::Unknown(UnknownReason::CertificateRejected)
        ),
        "corrupted trace must be demoted, got {gated}"
    );
}
