//! End-to-end reproduction tests: every headline claim of the paper,
//! checked through the public `verdict` API.

use verdict::incidents;
use verdict::ksim::ClusterSpec;
use verdict::models::k8s;
use verdict::prelude::*;

/// Trait dispatch with a scratch stats sink.
fn inv(kind: EngineKind, sys: &System, p: &Expr, opts: &CheckOptions) -> CheckResult {
    engine(kind)
        .check_invariant(sys, p, opts, &mut Stats::default())
        .unwrap()
}

/// Trait dispatch for LTL with a scratch stats sink.
fn ltl(kind: EngineKind, sys: &System, phi: &Ltl, opts: &CheckOptions) -> CheckResult {
    engine(kind)
        .check_ltl(sys, phi, opts, &mut Stats::default())
        .unwrap()
}

/// Table 1: the aggregation over the embedded study matches the paper.
#[test]
fn table1_counts() {
    let t = incidents::table1();
    assert_eq!(t.google_studied, 42);
    assert_eq!(t.aws_studied, 11);
    let totals: Vec<usize> = t.rows.iter().map(|r| r.total).collect();
    assert_eq!(totals, vec![38, 19, 27, 30]);
}

/// Figure 2: the simulated cluster oscillates at the paper's thresholds
/// and stabilizes when the threshold clears the request.
#[test]
fn figure2_oscillation() {
    let metrics = ClusterSpec::figure2().run(30 * 60);
    assert!(metrics.placement_changes("app-").len() >= 10);
    let mut fixed = ClusterSpec::figure2();
    fixed.descheduler_policies = vec![verdict::ksim::DeschedulerPolicy::LowNodeUtilization {
        evict_above_permille: 550,
    }];
    assert_eq!(fixed.run(30 * 60).placement_changes("app-").len(), 1);
}

/// Case study 1 / Figure 5: `p = m = 1, k = 2` violates on the test
/// topology; `k ≤ 1` is safe; synthesis suggests `p ∈ {1, 2}`.
#[test]
fn case_study_1() {
    let model = RolloutModel::build(&RolloutSpec::paper(Topology::test_topology()))
        .expect("valid topology");

    // Fig. 5 falsification.
    let r = inv(
        EngineKind::Bmc,
        &model.pinned(1, 2, 1),
        &model.property,
        &CheckOptions::with_depth(8),
    );
    assert!(r.violated());

    // Verification at k = 1.
    let r = inv(
        EngineKind::KInduction,
        &model.pinned(1, 1, 1),
        &model.property,
        &CheckOptions::with_depth(24),
    );
    assert!(r.holds(), "{r}");

    // Synthesis: safe non-zero p ∈ {1, 2}.
    let mut pinned = model.system.clone();
    pinned.add_invar(Expr::var(model.k).eq(Expr::int(1)));
    pinned.add_invar(Expr::var(model.m).eq(Expr::int(1)));
    let synth = Verifier::new(&pinned)
        .options(CheckOptions::with_depth(16))
        .synthesize_params(&[model.p], &Property::Invariant(model.property.clone()))
        .unwrap();
    let safe_nonzero: Vec<i64> = synth
        .safe()
        .iter()
        .filter_map(|v| match v[0] {
            Value::Int(n) if n > 0 => Some(n),
            _ => None,
        })
        .collect();
    assert_eq!(safe_nonzero, vec![1, 2]);
}

/// Case study 2: both liveness properties fail with lasso counterexamples
/// over synthesized real-valued parameters.
#[test]
fn case_study_2() {
    let model = LbModel::build(&LbSpec::default());
    let r = ltl(
        EngineKind::SmtBmc,
        &model.system,
        &model.liveness,
        &CheckOptions::with_depth(10),
    );
    assert!(r.trace().is_some_and(|t| t.loop_back.is_some()));
    let r = ltl(
        EngineKind::SmtBmc,
        &model.system,
        &model.conditional_liveness,
        &CheckOptions::with_depth(12),
    );
    let t = r.trace().expect("violated");
    // The external event fires somewhere before the loop completes.
    let ext_fired =
        (0..t.len()).any(|s| t.value(s, "external_traffic") == Some(&Value::Bool(true)));
    assert!(ext_fired, "{t}");
}

/// §3.2 issues: both Kubernetes bugs manifest in the models.
#[test]
fn kubernetes_issue_models() {
    let m = k8s::taint_loop();
    let k8s::K8sProperty::Ltl(phi) = &m.property else {
        panic!()
    };
    assert!(ltl(
        EngineKind::Bmc,
        &m.system,
        phi,
        &CheckOptions::with_depth(10)
    )
    .violated());

    let m = k8s::hpa_ruc(1, 5);
    let k8s::K8sProperty::Invariant(p) = &m.property else {
        panic!()
    };
    assert!(inv(EngineKind::Bmc, &m.system, p, &CheckOptions::with_depth(16)).violated());
}

/// Figure 6's qualitative shape on the smallest instances: falsification
/// succeeds quickly, verification succeeds for k ≤ 1 and fails for k = 2
/// on test and fattree4 (the paper's footnote 6).
#[test]
fn figure6_shape_smallest() {
    for topo in [Topology::test_topology(), Topology::fat_tree(4)] {
        let name = topo.name.clone();
        let model = RolloutModel::build(&RolloutSpec::paper(topo)).expect("valid topology");
        for (k, expect_holds) in [(0i64, true), (1, true), (2, false)] {
            let r = inv(
                EngineKind::KInduction,
                &model.pinned(1, k, 1),
                &model.property,
                &CheckOptions::with_depth(24),
            );
            assert_eq!(r.holds(), expect_holds, "{name} k={k}: {r:.0}");
        }
    }
}

/// The DSL round-trips a paper-style model through the whole stack.
#[test]
fn dsl_to_engines() {
    let m = verdict::dsl::parse(
        "system flip {
            var x : bool;
            init x;
            trans next(x) = !x;
            ltl fg: F (G x);
        }",
    )
    .unwrap();
    let verdict::dsl::CompiledProperty::Ltl(phi) = m.property("fg").unwrap() else {
        panic!()
    };
    let r = ltl(EngineKind::Bdd, &m.system, phi, &CheckOptions::default());
    assert!(r.violated());
}
