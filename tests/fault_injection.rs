//! Fault-injection matrix: inject every supported fault kind at every
//! probe site across the bmc, k-induction, bdd, smt-bmc, portfolio, and
//! incremental-synthesis paths, and assert the three robustness
//! invariants of the harness:
//!
//! 1. no injected fault escapes its isolation boundary (the test process
//!    never dies),
//! 2. a faulted run never *disagrees* with the fault-free reference on a
//!    definitive Safe/Unsafe verdict — faults only ever degrade to
//!    `Unknown`, and
//! 3. the degraded verdict carries the `UnknownReason` the fault models
//!    (panic → engine-failure, exhaust/overflow → resource-exhausted),
//!    and a retry policy then restores full agreement.
//!
//! The fault registry is process-global, so every test here serializes
//! on `fault::test_lock()`.

use std::time::Duration;

use verdict_journal::fault::{self, FaultKind, FaultPlan};
use verdict_mc::params::{synthesize, Property, SynthesisEngine, SynthesisResult};
use verdict_mc::{CheckOptions, CheckResult, EngineKind, RetryPolicy, UnknownReason, Verifier};
use verdict_ts::{Expr, System, VarId};

/// Case-study-style sweep model: which step sizes avoid hitting 5?
fn step_system() -> (System, VarId) {
    let mut sys = System::new("step");
    let n = sys.int_var("n", 0, 10);
    let p = sys.int_param("p", 1, 3);
    sys.add_init(Expr::var(n).eq(Expr::int(0)));
    sys.add_trans(Expr::next(n).eq(Expr::ite(
        Expr::var(n).le(Expr::int(7)),
        Expr::var(n).add(Expr::var(p)),
        Expr::var(n),
    )));
    (sys, p)
}

fn step_property(sys: &System) -> Property {
    let n = sys.var_by_name("n").expect("n exists");
    Property::Invariant(Expr::var(n).ne(Expr::int(5)))
}

/// Parameterless counter for solo-engine checks.
fn counter() -> (System, Expr) {
    let mut sys = System::new("counter");
    let n = sys.int_var("n", 0, 7);
    sys.add_init(Expr::var(n).eq(Expr::int(0)));
    sys.add_trans(Expr::next(n).eq(Expr::ite(
        Expr::var(n).lt(Expr::int(7)),
        Expr::var(n).add(Expr::int(1)),
        Expr::var(n),
    )));
    let prop = Expr::var(n).le(Expr::int(7));
    (sys, prop)
}

/// Real-valued ramp: drives the simplex (site `smt.pivot`).
fn real_ramp() -> (System, Expr) {
    let mut sys = System::new("ramp");
    let x = sys.real_var("x");
    sys.add_init(Expr::var(x).eq(Expr::real(verdict_logic::Rational::ZERO)));
    sys.add_trans(Expr::next(x).eq(Expr::var(x).add(Expr::real(verdict_logic::Rational::ONE))));
    let prop = Expr::var(x).lt(Expr::real(verdict_logic::Rational::integer(3)));
    (sys, prop)
}

fn reason_of(r: &CheckResult) -> Option<UnknownReason> {
    match r {
        CheckResult::Unknown(u) => Some(*u),
        _ => None,
    }
}

/// Definitive verdicts must never flip under fault injection.
fn assert_no_disagreement(reference: &SynthesisResult, got: &SynthesisResult, ctx: &str) {
    assert_eq!(reference.verdicts.len(), got.verdicts.len(), "{ctx}: space");
    for (r, g) in reference.verdicts.iter().zip(&got.verdicts) {
        assert_eq!(r.values, g.values, "{ctx}: order changed");
        if g.result.holds() || g.result.violated() {
            assert_eq!(
                r.result.holds(),
                g.result.holds(),
                "{ctx}: flipped at {:?}",
                g.values
            );
            assert_eq!(
                r.result.violated(),
                g.result.violated(),
                "{ctx}: flipped at {:?}",
                g.values
            );
        }
    }
}

fn retry_fast() -> RetryPolicy {
    RetryPolicy::with_retries(2).with_backoff(Duration::ZERO)
}

/// Sweep workload. `jobs(1)` keeps the probe hit order deterministic.
fn run_sweep(opts: &CheckOptions) -> SynthesisResult {
    let (sys, p) = step_system();
    let prop = step_property(&sys);
    synthesize(&sys, &[p], &prop, SynthesisEngine::KInduction, opts).expect("sweep runs")
}

fn sweep_opts() -> CheckOptions {
    CheckOptions::with_depth(16).with_jobs(1)
}

/// Fault matrix over the synthesis sweep (incremental k-induction by
/// default): both worker-boundary and engine-internal sites.
#[test]
fn sweep_faults_degrade_then_retry_restores() {
    let _guard = fault::test_lock();
    fault::clear();
    let reference = run_sweep(&sweep_opts());
    assert!(reference
        .verdicts
        .iter()
        .all(|v| !matches!(v.result, CheckResult::Unknown(_))));

    // (site, kind, opts, expected reason of the degraded verdict)
    let cases: &[(&str, FaultKind, CheckOptions, UnknownReason)] = &[
        (
            "sat.solve",
            FaultKind::Panic,
            sweep_opts(),
            UnknownReason::EngineFailure,
        ),
        (
            "sat.solve",
            FaultKind::Exhaust,
            sweep_opts(),
            UnknownReason::ResourceExhausted,
        ),
        (
            "sat.solve",
            FaultKind::Panic,
            sweep_opts().with_incremental(false),
            UnknownReason::EngineFailure,
        ),
        (
            "mc.budget",
            FaultKind::Exhaust,
            sweep_opts(),
            UnknownReason::ResourceExhausted,
        ),
        (
            "mc.synth.worker",
            FaultKind::Panic,
            sweep_opts(),
            UnknownReason::EngineFailure,
        ),
        (
            "mc.synth.worker",
            FaultKind::Panic,
            sweep_opts().with_incremental(false),
            UnknownReason::EngineFailure,
        ),
        (
            "mc.certify",
            FaultKind::Panic,
            sweep_opts().with_certify(),
            UnknownReason::EngineFailure,
        ),
    ];

    for (site, kind, opts, expected) in cases {
        let ctx = format!("{site}:{}", kind.tag());
        // Without retries: the fault fires once, one verdict degrades to
        // the matching Unknown reason, nothing flips.
        fault::install(&FaultPlan::single(site, *kind, 1));
        let got = run_sweep(opts);
        fault::clear();
        assert_no_disagreement(&reference, &got, &ctx);
        let reasons: Vec<_> = got
            .verdicts
            .iter()
            .filter_map(|v| reason_of(&v.result))
            .collect();
        assert!(
            reasons.iter().all(|r| r == expected),
            "{ctx}: wrong reason {reasons:?}"
        );
        assert!(
            !reasons.is_empty(),
            "{ctx}: fault did not surface (probe never hit?)"
        );

        // With retries: the one-shot fault is absorbed and the sweep
        // agrees with the reference verdict-for-verdict.
        fault::install(&FaultPlan::single(site, *kind, 1));
        let retried = run_sweep(&opts.clone().with_retry(retry_fast()));
        fault::clear();
        assert_no_disagreement(&reference, &retried, &format!("{ctx}+retry"));
        for (r, g) in reference.verdicts.iter().zip(&retried.verdicts) {
            assert_eq!(
                reason_of(&r.result),
                reason_of(&g.result),
                "{ctx}+retry: residual unknown at {:?}",
                g.values
            );
        }
        let max_attempts = retried.verdicts.iter().map(|v| v.attempts).max().unwrap();
        assert!(
            max_attempts >= 2,
            "{ctx}+retry: no attempt was recorded as a retry"
        );
    }
}

/// Solo engines (bmc, k-induction, bdd, smt-bmc): a fault inside the
/// engine is contained at the `Verifier` boundary and degrades the
/// check, never the process.
#[test]
fn solo_engine_faults_are_contained() {
    let _guard = fault::test_lock();
    fault::clear();

    let (fin_sys, fin_prop) = counter();
    let (real_sys, real_prop) = real_ramp();
    let opts = CheckOptions::with_depth(10);

    // (site, kind, engine, expected reason); each runs the engine that
    // actually reaches the site.
    let cases: &[(&str, FaultKind, EngineKind, UnknownReason)] = &[
        (
            "sat.solve",
            FaultKind::Panic,
            EngineKind::Bmc,
            UnknownReason::EngineFailure,
        ),
        (
            "sat.solve",
            FaultKind::Exhaust,
            EngineKind::KInduction,
            UnknownReason::ResourceExhausted,
        ),
        (
            "bdd.ite",
            FaultKind::Panic,
            EngineKind::Bdd,
            UnknownReason::EngineFailure,
        ),
        (
            "smt.pivot",
            FaultKind::Panic,
            EngineKind::SmtBmc,
            UnknownReason::EngineFailure,
        ),
        (
            "smt.pivot",
            FaultKind::Overflow,
            EngineKind::SmtBmc,
            UnknownReason::ResourceExhausted,
        ),
        (
            "mc.portfolio.worker",
            FaultKind::Panic,
            EngineKind::Portfolio,
            UnknownReason::EngineFailure,
        ),
    ];

    for (site, kind, engine, expected) in cases {
        let ctx = format!("{site}:{} under {engine}", kind.tag());
        let (sys, prop) = if *engine == EngineKind::SmtBmc {
            (&real_sys, &real_prop)
        } else {
            (&fin_sys, &fin_prop)
        };
        fault::install(&FaultPlan::single(site, *kind, 1));
        let got = Verifier::new(sys)
            .engine(*engine)
            .options(opts.clone())
            .check_invariant(prop)
            .expect("contained fault is not an error");
        fault::clear();
        match *engine {
            // The portfolio races several contenders; killing one lets
            // another win, so a definitive verdict is acceptable — it
            // must only agree with the fault-free run.
            EngineKind::Portfolio => {
                let clean = Verifier::new(sys)
                    .engine(*engine)
                    .options(opts.clone())
                    .check_invariant(prop)
                    .expect("clean run");
                if got.holds() || got.violated() {
                    assert_eq!(got.holds(), clean.holds(), "{ctx}: flipped");
                } else {
                    assert_eq!(reason_of(&got), Some(*expected), "{ctx}");
                }
            }
            _ => assert_eq!(reason_of(&got), Some(*expected), "{ctx}: got {got}"),
        }
    }
}

/// A journal whose backing file starts failing mid-sweep must disable
/// itself (losing resumability, not correctness): the sweep still
/// completes with the reference verdicts.
#[test]
fn journal_append_fault_degrades_to_unjournaled() {
    let _guard = fault::test_lock();
    fault::clear();
    let reference = run_sweep(&sweep_opts());

    let (sys, p) = step_system();
    let prop = step_property(&sys);
    let opts = sweep_opts();
    let dir = std::env::temp_dir().join(format!("verdict-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("append-fault.jsonl");
    let _ = std::fs::remove_file(&path);

    let (recorder, resume) = verdict_mc::durable::start_sweep_journal(
        &path,
        false,
        &sys,
        &[p],
        &prop,
        SynthesisEngine::KInduction,
        &opts,
    )
    .expect("journal opens");
    fault::install(&FaultPlan::single("journal.append", FaultKind::Exhaust, 1));
    let durability = verdict_mc::Durability {
        recorder: Some(&recorder),
        resume: Some(&resume),
    };
    let got = verdict_mc::params::synthesize_durable(
        &sys,
        &[p],
        &prop,
        SynthesisEngine::KInduction,
        &opts,
        &durability,
    )
    .expect("sweep survives journal failure");
    fault::clear();
    assert_no_disagreement(&reference, &got, "journal.append:exhaust");
    assert!(
        got.verdicts
            .iter()
            .all(|v| !matches!(v.result, CheckResult::Unknown(_))),
        "journal failure must not degrade verdicts"
    );
    let _ = std::fs::remove_file(&path);
}

/// Unsupported kinds at a site are a no-op: the probe consumes the spec
/// without firing anything.
#[test]
fn unsupported_kind_is_noop() {
    let _guard = fault::test_lock();
    fault::clear();
    let reference = run_sweep(&sweep_opts());
    // bdd.ite only supports panics; an exhaust spec there must change
    // nothing on a k-induction sweep (site never probed) …
    fault::install(&FaultPlan::single("bdd.ite", FaultKind::Exhaust, 1));
    let got = run_sweep(&sweep_opts());
    fault::clear();
    assert_no_disagreement(&reference, &got, "bdd.ite:exhaust");
    // … and an overflow spec on sat.solve fires as a no-op: counted,
    // but sat has no overflow to poison.
    fault::install(&FaultPlan::single("sat.solve", FaultKind::Overflow, 1));
    let got = run_sweep(&sweep_opts());
    fault::clear();
    assert_no_disagreement(&reference, &got, "sat.solve:overflow");
    assert!(got
        .verdicts
        .iter()
        .all(|v| !matches!(v.result, CheckResult::Unknown(_))));
}
