//! Case study 1 of the paper (§4.2): update rollout + network partition.
//!
//! Run with: `cargo run --release --example rollout_partition`
//!
//! Builds the paper's 5-node "test" topology with a rollout controller
//! (≤ `p` nodes down simultaneously), up to `k` nondeterministic link
//! failures, and the reachability-recomputation loop; then
//!
//! 1. reproduces the Fig. 5 counterexample for `p = m = 1, k = 2`,
//! 2. proves safety for a conservative configuration,
//! 3. reproduces the parameter synthesis result: for `k = 1, m = 1` the
//!    safe non-zero rollout widths are exactly `p ∈ {1, 2}`.

use verdict::prelude::*;

fn main() {
    let model = RolloutModel::build(&RolloutSpec::paper(Topology::test_topology()))
        .expect("valid topology");
    println!(
        "model: {} ({} state vars, {} links, {} service nodes)",
        model.system.name(),
        model.system.num_vars(),
        model.failed.len(),
        model.down.len(),
    );
    println!("property: G(converged -> available >= m)\n");

    // ---- 1. falsification (Fig. 5) ------------------------------------
    let unsafe_sys = model.pinned(1, 2, 1);
    let verifier = Verifier::new(&unsafe_sys)
        .engine(EngineKind::Bmc)
        .options(CheckOptions::with_depth(10));
    let result = verifier.check_invariant(&model.property).unwrap();
    println!("p = 1, k = 2, m = 1 (the paper's Fig. 5 setting):");
    match result.trace() {
        Some(trace) => {
            // Print only the rows that move — the full table is wide.
            println!("VIOLATED; counterexample ({} steps):", trace.len());
            let interesting = trace.changing_vars();
            for &row in &interesting {
                let name = &trace.var_names[row];
                let values: Vec<String> = trace.states.iter().map(|s| s[row].to_string()).collect();
                println!("  {:<14} {}", name, values.join(" -> "));
            }
        }
        None => println!("unexpectedly safe: {result}"),
    }

    // ---- 2. verification ----------------------------------------------
    let safe_sys = model.pinned(1, 0, 1);
    let verifier = Verifier::new(&safe_sys).options(CheckOptions::with_depth(24));
    let result = verifier.check_invariant(&model.property).unwrap();
    println!("\np = 1, k = 0, m = 1: {result}");

    // ---- blast radius (§5 risk assessment) -----------------------------
    // Worst-case true availability after any single link failure, with a
    // rollout of width 1 in flight (k = 1 failure budget).
    let sys = model.pinned(1, 1, 0);
    let any_failure = Expr::or_all(model.failed.iter().map(|&f| Expr::var(f)));
    let blast = verdict::mc::blast::worst_case_after(
        &sys,
        &any_failure,
        &model.true_available,
        &CheckOptions::with_depth(6),
    )
    .unwrap()
    .expect("failures are reachable");
    println!(
        "\nblast radius of one link failure (p = 1): worst availability {} of {}",
        blast.worst, blast.range.1
    );

    // ---- 3. parameter synthesis (p ∈ {1, 2}) ---------------------------
    let mut pinned_km = model.system.clone();
    pinned_km.add_invar(Expr::var(model.k).eq(Expr::int(1)));
    pinned_km.add_invar(Expr::var(model.m).eq(Expr::int(1)));
    let verifier = Verifier::new(&pinned_km).options(CheckOptions::with_depth(16));
    let synth = verifier
        .synthesize_params(&[model.p], &Property::Invariant(model.property.clone()))
        .unwrap();
    println!("\nsynthesis for k = 1, m = 1 (paper: safe non-zero p ∈ {{1, 2}}):");
    print!("{synth}");
}
