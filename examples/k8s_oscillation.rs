//! The paper's §3.3 cluster experiment (Fig. 2), twice:
//!
//! 1. **empirically**, on the deterministic Kubernetes-cluster simulator
//!    (`verdict-ksim`): a pod requesting 50% CPU under a descheduler
//!    evicting above 45%, sampled for 30 minutes;
//! 2. **formally**, on the abstract scheduler × descheduler model
//!    (`verdict-models::k8s`): the model checker proves the oscillation
//!    is not an artifact of timing but inherent to the configuration —
//!    and that raising the threshold above the request fixes it.
//!
//! Run with: `cargo run --release --example k8s_oscillation`

use verdict::ksim::ClusterSpec;
use verdict::mc::prelude::*;
use verdict::mc::Stats;
use verdict::models::k8s::{descheduler_oscillation, K8sProperty};

fn main() {
    // ---- 1. simulate (Fig. 2) ----------------------------------------
    let spec = ClusterSpec::figure2();
    let metrics = spec.run(30 * 60);
    println!("simulated 30 minutes of the Fig. 2 cluster:");
    println!("  (descheduler every 120 s; request 50%, evict above 45%)\n");
    println!("  time   pod placement");
    for (t, node) in metrics.placement_changes("app-") {
        println!("  {:>4} s  {node}", t);
    }
    let moves = metrics.placement_changes("app-").len();
    println!("\n  -> {moves} placements in 30 min: the pod never settles\n");

    // ---- 2. model check the abstract twin ------------------------------
    println!("model checking the abstract scheduler × descheduler system:");
    let model = descheduler_oscillation(50, 45);
    let K8sProperty::Ltl(phi) = &model.property else {
        unreachable!()
    };
    let result = engine(EngineKind::Bmc)
        .check_ltl(
            &model.system,
            phi,
            &CheckOptions::with_depth(12),
            &mut Stats::default(),
        )
        .unwrap();
    match result.trace() {
        Some(t) => println!(
            "  F(G settled) VIOLATED — lasso of {} states (loop at {}):\n{t}",
            t.len(),
            t.loop_back.unwrap()
        ),
        None => println!("  unexpected: {result}"),
    }

    // The fix: threshold above the request.
    let fixed = descheduler_oscillation(50, 60);
    let K8sProperty::Ltl(phi) = &fixed.property else {
        unreachable!()
    };
    let result = engine(EngineKind::Bdd)
        .check_ltl(
            &fixed.system,
            phi,
            &CheckOptions::default(),
            &mut Stats::default(),
        )
        .unwrap();
    println!("  with threshold 60% > request 50%: {result}");
}
