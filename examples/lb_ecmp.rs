//! Case study 2 of the paper (§4.2): load balancer + ECMP liveness.
//!
//! Run with: `cargo run --release --example lb_ecmp`
//!
//! The Fig. 3 scenario: a latency-based load balancer over hard-coded
//! ECMP paths, with real-valued latency coefficients left symbolic. The
//! SMT engine both *synthesizes parameter values* and finds a
//! *lasso-shaped execution* on which the weights oscillate forever —
//! the paper's `F G stable` and `stable → F G stable` violations.

use verdict::mc::Stats;
use verdict::prelude::*;

fn main() {
    let model = LbModel::build(&LbSpec::default());
    println!(
        "model: {} ({} vars, real-valued)\n",
        model.system.name(),
        model.system.num_vars()
    );

    // ---- F G stable -----------------------------------------------------
    println!("checking F G stable (the paper: fails even before the event):");
    let opts = CheckOptions::with_depth(10);
    let result = engine(EngineKind::SmtBmc)
        .check_ltl(&model.system, &model.liveness, &opts, &mut Stats::default())
        .unwrap();
    report(&result);

    // ---- equilibrium -> F G stable ---------------------------------------
    println!("\nchecking equilibrium -> F G stable (the refined property):");
    let opts = CheckOptions::with_depth(12);
    let result = engine(EngineKind::SmtBmc)
        .check_ltl(
            &model.system,
            &model.conditional_liveness,
            &opts,
            &mut Stats::default(),
        )
        .unwrap();
    report(&result);
}

fn report(result: &CheckResult) {
    let Some(trace) = result.trace() else {
        println!("  {result}");
        return;
    };
    let loop_back = trace
        .loop_back
        .expect("liveness counterexamples are lassos");
    println!(
        "  VIOLATED: lasso of {} states, loop back to step {loop_back}",
        trace.len()
    );
    // The synthesized latency parameters (constant along the trace).
    println!("  synthesized parameters:");
    for name in ["m_a", "m_b", "m_link", "l_a", "l_b", "l_link"] {
        println!("    {name:<7} = {}", trace.value(0, name).unwrap());
    }
    // The oscillation: weight assignments around the loop.
    println!("  weights (wa: app a -> p1?, wb: app b -> p3?) per step:");
    for step in 0..trace.len() {
        let marker = if step == loop_back { "↺" } else { " " };
        println!(
            "   {marker} step {step}: wa={} wb={} ext={}",
            trace.value(step, "wa_p1").unwrap(),
            trace.value(step, "wb_p3").unwrap(),
            trace.value(step, "external_traffic").unwrap(),
        );
    }
}
