//! Quickstart: model a tiny autoscaler control loop, verify a safety
//! property, read a counterexample, and synthesize a safe configuration.
//!
//! Run with: `cargo run --example quickstart`
//!
//! The system: a service with `replicas ∈ 1..=8`, a load level the
//! environment moves nondeterministically, and an autoscaler that adds a
//! replica under high load and removes one under low load — but never
//! below its configured `min_replicas`. The operator question: which
//! values of `min_replicas` guarantee the serving floor of 2 replicas?

use verdict::prelude::*;

fn main() {
    // ---- model -------------------------------------------------------
    let mut sys = System::new("autoscaler");
    let replicas = sys.int_var("replicas", 1, 8);
    // Environment: load is low (0), normal (1), or high (2); free-moving.
    let load = sys.int_var("load", 0, 2);
    // The configuration parameter under study.
    let min_replicas = sys.int_param("min_replicas", 1, 3);

    sys.add_init(Expr::var(replicas).eq(Expr::int(4)));

    // The autoscaler's law:
    //   load = 2 -> add a replica (up to 8)
    //   load = 0 -> remove one (down to min_replicas)
    //   otherwise hold.
    let up = Expr::ite(
        Expr::var(replicas).lt(Expr::int(8)),
        Expr::var(replicas).add(Expr::int(1)),
        Expr::var(replicas),
    );
    let down = Expr::ite(
        Expr::var(replicas).gt(Expr::var(min_replicas)),
        Expr::var(replicas).sub(Expr::int(1)),
        Expr::var(replicas),
    );
    sys.add_trans(Expr::next(replicas).eq(Expr::ite(
        Expr::var(load).eq(Expr::int(2)),
        up,
        Expr::ite(Expr::var(load).eq(Expr::int(0)), down, Expr::var(replicas)),
    )));

    // ---- verify ------------------------------------------------------
    // Safety: the deployment never drops below the serving floor.
    let property = Expr::var(replicas).ge(Expr::int(2));

    let verifier = Verifier::new(&sys).options(CheckOptions::with_depth(16));
    let result = verifier.check_invariant(&property).unwrap();
    println!("G(replicas >= 2):\n{result}");
    // The checker picks min_replicas = 1 and a run of low-load steps:
    // the scaler itself erodes the floor.

    // ---- synthesize --------------------------------------------------
    // Which configurations are safe? Exactly min_replicas ∈ {2, 3}.
    let synth = verifier
        .synthesize_params(&[min_replicas], &Property::Invariant(property))
        .unwrap();
    println!("{synth}");
}
