//! A tour of the `.vd` modeling language: author a controller-interaction
//! model as text, compile it, and check its properties with every engine.
//!
//! Run with: `cargo run --example dsl_tour`

use verdict::dsl::{parse, CompiledProperty};
use verdict::prelude::*;

const SOURCE: &str = r#"
// The HPA × rolling-update feedback loop of Kubernetes issue #90461,
// written in the verdict modeling language.
system hpa_ruc {
    var expected : 1..8;          // the deployment's desired replicas
    var current  : 1..8;          // live replicas
    var rolling  : bool;          // a rolling update is in progress

    init expected = 1 & current = 1;

    // Rolling-update controller with maxSurge = 1: while rolling, the
    // live count may surge one above expected.
    trans rolling ->
        (next(current) = (if expected < 8 then expected + 1 else 8)
         | next(current) = expected);
    trans !rolling -> next(current) = expected;

    // The buggy HPA: reads the surged current count back as demand.
    trans next(expected) = current;

    invariant bounded: current <= 4;
    ctl can_run_away: EF (current >= 8);
}
"#;

fn main() {
    let model = parse(SOURCE).expect("the tour model parses");
    println!("compiled `{}`:\n{}", model.system.name(), model.system);

    let verifier = Verifier::new(&model.system).options(CheckOptions::with_depth(24));
    for (name, property) in &model.properties {
        let result = match property {
            CompiledProperty::Invariant(p) => verifier.check_invariant(p),
            CompiledProperty::Ltl(f) => verifier.check_ltl(f),
            CompiledProperty::Ctl(f) => verifier.check_ctl(f),
        }
        .unwrap();
        println!("property `{name}`: {result}");
    }
}
